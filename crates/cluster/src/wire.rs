//! Length-prefixed binary wire protocol between cluster clients and node
//! daemons.
//!
//! Every message travels as one *frame*: a fixed 12-byte header (magic,
//! protocol version, message kind, payload length) followed by the
//! payload. Decoding is strict and total — every read is bounds-checked,
//! every tag validated, and anything outside the protocol is rejected
//! with a structured [`WireError`]; the decoder never panics and never
//! allocates more than the declared (and capped) payload length.
//!
//! The payload encoding is fixed-width little-endian. Compactness matters
//! less than auditability here: requests are tiny compared to the
//! millisecond-scale simulator work they trigger, and the one bulky
//! payload — a metrics snapshot — reuses the varint codec from
//! `apim_serve::metrics`.

use apim::{App, PrecisionMode};
use apim_serve::metrics::{CodecError, MetricsSnapshot};
use apim_serve::{JobKind, Request, ServeError, TenantId};
use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Leading bytes of every frame.
pub const MAGIC: [u8; 4] = *b"APCL";

/// Protocol version this build speaks.
///
/// Version 2 made every message correlatable for multiplexing: the
/// metrics pull/response pair gained a `seq`, and a structured
/// [`Message::ProtocolError`] (kind 7) was added so a node can tell a
/// peer *why* its connection is being closed instead of just dropping it.
pub const WIRE_VERSION: u8 = 2;

/// Fixed frame header length: magic (4), version (1), kind (1),
/// reserved (2), payload length (4).
pub const HEADER_LEN: usize = 12;

/// Hard cap on a frame payload; a declared length beyond this is rejected
/// before any allocation.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Cap on an encoded string (compile programs, error reasons).
const MAX_STRING: u32 = 1 << 16;

/// Cap on a MAC pair list.
const MAX_MAC_PAIRS: u32 = 1 << 12;

/// Cap on a pixel tap list (the widest built-in kernel has 6 taps; the
/// cap leaves headroom without letting a frame claim an absurd length).
const MAX_PIXEL_TAPS: u32 = 64;

/// Why the decoder rejected a frame. Every variant is a protocol error,
/// not a crash: malformed input can only ever produce one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the header or the declared payload requires.
    Truncated,
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte is not one this build understands.
    UnsupportedVersion(u8),
    /// The kind byte names no known message.
    UnknownKind(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    FrameTooLarge(u32),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A tag or enum code is out of range for its field.
    InvalidValue {
        /// Which field was malformed.
        what: &'static str,
        /// The offending raw value.
        value: u64,
    },
    /// Bytes remained in the payload after a complete message.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// An embedded metrics snapshot failed to decode.
    Snapshot(CodecError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::FrameTooLarge(n) => write!(f, "declared payload {n} B exceeds cap"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::InvalidValue { what, value } => {
                write!(f, "invalid {what} value {value}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after message")
            }
            WireError::Snapshot(e) => write!(f, "embedded metrics snapshot: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Snapshot(e)
    }
}

/// A successfully served request, reduced to what the cluster tier needs:
/// a digest of the exact result bits (for checksums and bit-identity
/// assertions) plus a human-readable summary line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireOutput {
    /// `apim_serve::loadgen::output_digest` of the node-side [`JobOutput`]
    /// (`apim_serve::JobOutput`) — equal iff the results are bit-identical.
    pub digest: u64,
    /// One-line rendering of the result.
    pub summary: String,
}

/// The answer to one [`Message::Submit`].
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Tenant the node accounted the request to.
    pub tenant: TenantId,
    /// Node-side execution attempts (0 when rejected at admission).
    pub attempts: u32,
    /// Node-side latency in µs (submission to response on the node).
    pub latency_us: u64,
    /// Result digest + summary, or the node's structured error.
    pub result: Result<WireOutput, ServeError>,
}

/// Every message the protocol can carry. `Submit`/`Reply` do the serving
/// work, `Ping`/`Pong` back the router's health checks, and
/// `MetricsPull`/`Metrics` feed the fleet aggregator.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A client request; `seq` correlates the eventual [`Message::Reply`].
    Submit {
        /// Client-chosen correlation id, echoed in the reply.
        seq: u64,
        /// The work.
        request: Request,
    },
    /// The node's answer to the `Submit` with the same `seq`.
    Reply {
        /// Correlation id of the originating submit.
        seq: u64,
        /// The outcome.
        reply: Reply,
    },
    /// Health probe.
    Ping {
        /// Echoed opaque value.
        nonce: u64,
    },
    /// Health answer with a thumbnail of the node's state.
    Pong {
        /// The probe's nonce.
        nonce: u64,
        /// Worker threads in the node's pool.
        workers: u32,
        /// Jobs currently queued on the node.
        queue_depth: u64,
    },
    /// Ask the node for its metrics snapshot.
    MetricsPull {
        /// Correlation id echoed by the [`Message::Metrics`] answer, so
        /// pulls can share a multiplexed connection with serving traffic.
        seq: u64,
    },
    /// The node's metrics snapshot.
    Metrics {
        /// Correlation id of the originating pull.
        seq: u64,
        /// The snapshot, merged fleet-wide by the aggregator.
        snapshot: MetricsSnapshot,
    },
    /// The peer violated the protocol; sent as a last frame before the
    /// connection is closed so the failure is diagnosable on both ends.
    ProtocolError {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Submit { .. } => 1,
            Message::Reply { .. } => 2,
            Message::Ping { .. } => 3,
            Message::Pong { .. } => 4,
            Message::MetricsPull { .. } => 5,
            Message::Metrics { .. } => 6,
            Message::ProtocolError { .. } => 7,
        }
    }

    /// The correlation id a response message answers, when it is one.
    /// This is the demultiplexing key: a client running many logical
    /// streams over one socket routes each inbound response by this id.
    pub fn correlation_id(&self) -> Option<u64> {
        match self {
            Message::Reply { seq, .. } | Message::Metrics { seq, .. } => Some(*seq),
            Message::Pong { nonce, .. } => Some(*nonce),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Payload writer/reader primitives
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = &s.as_bytes()[..s.len().min(MAX_STRING as usize)];
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Bounds-checked cursor over a frame payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()?;
        if len > MAX_STRING {
            return Err(WireError::InvalidValue {
                what: "string length",
                value: u64::from(len),
            });
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.bytes.len() - self.pos,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Domain field codecs
// ---------------------------------------------------------------------------

fn app_code(app: App) -> u8 {
    match app {
        App::Sobel => 0,
        App::Robert => 1,
        App::Fft => 2,
        App::DwtHaar1d => 3,
        App::Sharpen => 4,
        App::QuasiRandom => 5,
    }
}

fn app_from(code: u8) -> Result<App, WireError> {
    Ok(match code {
        0 => App::Sobel,
        1 => App::Robert,
        2 => App::Fft,
        3 => App::DwtHaar1d,
        4 => App::Sharpen,
        5 => App::QuasiRandom,
        other => {
            return Err(WireError::InvalidValue {
                what: "app",
                value: u64::from(other),
            })
        }
    })
}

fn put_mode(out: &mut Vec<u8>, mode: PrecisionMode) {
    match mode {
        PrecisionMode::Exact => {
            out.push(0);
            out.push(0);
        }
        PrecisionMode::FirstStage { masked_bits } => {
            out.push(1);
            out.push(masked_bits);
        }
        PrecisionMode::LastStage { relax_bits } => {
            out.push(2);
            out.push(relax_bits);
        }
    }
}

fn take_mode(r: &mut Reader<'_>) -> Result<PrecisionMode, WireError> {
    let tag = r.u8()?;
    let bits = r.u8()?;
    Ok(match tag {
        0 => PrecisionMode::Exact,
        1 => PrecisionMode::FirstStage { masked_bits: bits },
        2 => PrecisionMode::LastStage { relax_bits: bits },
        other => {
            return Err(WireError::InvalidValue {
                what: "precision mode",
                value: u64::from(other),
            })
        }
    })
}

fn put_request(out: &mut Vec<u8>, request: &Request) {
    put_u16(out, request.tenant.0);
    put_mode(out, request.mode);
    match request.deadline {
        None => out.push(0),
        Some(d) => {
            out.push(1);
            put_u64(out, u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
        }
    }
    match &request.kind {
        JobKind::Run { app, dataset_bytes } => {
            out.push(0);
            out.push(app_code(*app));
            put_u64(out, *dataset_bytes);
        }
        JobKind::Multiply { a, b } => {
            out.push(1);
            put_u64(out, *a);
            put_u64(out, *b);
        }
        JobKind::Mac { pairs } => {
            out.push(2);
            put_u32(out, pairs.len().min(MAX_MAC_PAIRS as usize) as u32);
            for &(a, b) in pairs.iter().take(MAX_MAC_PAIRS as usize) {
                put_u64(out, a);
                put_u64(out, b);
            }
        }
        JobKind::Compile { source } => {
            out.push(3);
            put_str(out, source);
        }
        JobKind::Echo { payload } => {
            out.push(4);
            put_u64(out, *payload);
        }
        JobKind::Pixel { app, taps } => {
            out.push(5);
            out.push(app_code(*app));
            put_u32(out, taps.len().min(MAX_PIXEL_TAPS as usize) as u32);
            for &tap in taps.iter().take(MAX_PIXEL_TAPS as usize) {
                put_u64(out, tap);
            }
        }
    }
}

fn take_request(r: &mut Reader<'_>) -> Result<Request, WireError> {
    let tenant = TenantId(r.u16()?);
    let mode = take_mode(r)?;
    let deadline = match r.u8()? {
        0 => None,
        1 => Some(Duration::from_micros(r.u64()?)),
        other => {
            return Err(WireError::InvalidValue {
                what: "deadline tag",
                value: u64::from(other),
            })
        }
    };
    let kind = match r.u8()? {
        0 => JobKind::Run {
            app: app_from(r.u8()?)?,
            dataset_bytes: r.u64()?,
        },
        1 => JobKind::Multiply {
            a: r.u64()?,
            b: r.u64()?,
        },
        2 => {
            let n = r.u32()?;
            if n > MAX_MAC_PAIRS {
                return Err(WireError::InvalidValue {
                    what: "mac pair count",
                    value: u64::from(n),
                });
            }
            let mut pairs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                pairs.push((r.u64()?, r.u64()?));
            }
            JobKind::Mac { pairs }
        }
        3 => JobKind::Compile {
            source: r.string()?,
        },
        4 => JobKind::Echo { payload: r.u64()? },
        5 => {
            let app = app_from(r.u8()?)?;
            let n = r.u32()?;
            if n > MAX_PIXEL_TAPS {
                return Err(WireError::InvalidValue {
                    what: "pixel tap count",
                    value: u64::from(n),
                });
            }
            let mut taps = Vec::with_capacity(n as usize);
            for _ in 0..n {
                taps.push(r.u64()?);
            }
            JobKind::Pixel { app, taps }
        }
        other => {
            return Err(WireError::InvalidValue {
                what: "job kind",
                value: u64::from(other),
            })
        }
    };
    let mut request = Request::new(kind).tenant(tenant).mode(mode);
    request.deadline = deadline;
    Ok(request)
}

fn put_serve_error(out: &mut Vec<u8>, error: &ServeError) {
    match error {
        ServeError::Overloaded { depth } => {
            out.push(0);
            put_u64(out, *depth as u64);
        }
        ServeError::QuotaExceeded { tenant } => {
            out.push(1);
            put_u16(out, tenant.0);
        }
        ServeError::ShuttingDown => out.push(2),
        ServeError::DeadlineExceeded => out.push(3),
        ServeError::Failed { reason, attempts } => {
            out.push(4);
            put_u32(out, *attempts);
            put_str(out, reason);
        }
        ServeError::WorkerPanicked => out.push(5),
    }
}

fn take_serve_error(r: &mut Reader<'_>) -> Result<ServeError, WireError> {
    Ok(match r.u8()? {
        0 => ServeError::Overloaded {
            depth: usize::try_from(r.u64()?).map_err(|_| WireError::InvalidValue {
                what: "overload depth",
                value: u64::MAX,
            })?,
        },
        1 => ServeError::QuotaExceeded {
            tenant: TenantId(r.u16()?),
        },
        2 => ServeError::ShuttingDown,
        3 => ServeError::DeadlineExceeded,
        4 => {
            let attempts = r.u32()?;
            ServeError::Failed {
                reason: r.string()?,
                attempts,
            }
        }
        5 => ServeError::WorkerPanicked,
        other => {
            return Err(WireError::InvalidValue {
                what: "serve error tag",
                value: u64::from(other),
            })
        }
    })
}

fn put_reply(out: &mut Vec<u8>, reply: &Reply) {
    put_u16(out, reply.tenant.0);
    put_u32(out, reply.attempts);
    put_u64(out, reply.latency_us);
    match &reply.result {
        Ok(output) => {
            out.push(0);
            put_u64(out, output.digest);
            put_str(out, &output.summary);
        }
        Err(error) => {
            out.push(1);
            put_serve_error(out, error);
        }
    }
}

fn take_reply(r: &mut Reader<'_>) -> Result<Reply, WireError> {
    let tenant = TenantId(r.u16()?);
    let attempts = r.u32()?;
    let latency_us = r.u64()?;
    let result = match r.u8()? {
        0 => Ok(WireOutput {
            digest: r.u64()?,
            summary: r.string()?,
        }),
        1 => Err(take_serve_error(r)?),
        other => {
            return Err(WireError::InvalidValue {
                what: "reply result tag",
                value: u64::from(other),
            })
        }
    };
    Ok(Reply {
        tenant,
        attempts,
        latency_us,
        result,
    })
}

// ---------------------------------------------------------------------------
// Frame encode/decode
// ---------------------------------------------------------------------------

/// Encodes a message as one complete frame (header + payload).
pub fn encode_frame(message: &Message) -> Vec<u8> {
    let mut payload = Vec::new();
    match message {
        Message::Submit { seq, request } => {
            put_u64(&mut payload, *seq);
            put_request(&mut payload, request);
        }
        Message::Reply { seq, reply } => {
            put_u64(&mut payload, *seq);
            put_reply(&mut payload, reply);
        }
        Message::Ping { nonce } => put_u64(&mut payload, *nonce),
        Message::Pong {
            nonce,
            workers,
            queue_depth,
        } => {
            put_u64(&mut payload, *nonce);
            put_u32(&mut payload, *workers);
            put_u64(&mut payload, *queue_depth);
        }
        Message::MetricsPull { seq } => put_u64(&mut payload, *seq),
        Message::Metrics { seq, snapshot } => {
            put_u64(&mut payload, *seq);
            let bytes = snapshot.encode();
            put_u32(&mut payload, bytes.len() as u32);
            payload.extend_from_slice(&bytes);
        }
        Message::ProtocolError { detail } => put_str(&mut payload, detail),
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(WIRE_VERSION);
    frame.push(message.kind());
    frame.extend_from_slice(&[0, 0]); // reserved
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Validates a frame header, returning `(kind, payload_len)`.
///
/// # Errors
///
/// [`WireError::Truncated`] for a short header and the specific structured
/// error for bad magic, version, kind or length.
pub fn decode_header(header: &[u8]) -> Result<(u8, u32), WireError> {
    if header.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let magic: [u8; 4] = header[0..4].try_into().expect("len 4");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if header[4] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(header[4]));
    }
    let kind = header[5];
    if !(1..=7).contains(&kind) {
        return Err(WireError::UnknownKind(kind));
    }
    let len = u32::from_le_bytes(header[8..12].try_into().expect("len 4"));
    if len > MAX_PAYLOAD {
        return Err(WireError::FrameTooLarge(len));
    }
    Ok((kind, len))
}

/// Decodes one message payload of an already-validated kind.
///
/// # Errors
///
/// A structured [`WireError`]; never panics on any input.
pub fn decode_payload(kind: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(payload);
    let message = match kind {
        1 => Message::Submit {
            seq: r.u64()?,
            request: take_request(&mut r)?,
        },
        2 => Message::Reply {
            seq: r.u64()?,
            reply: take_reply(&mut r)?,
        },
        3 => Message::Ping { nonce: r.u64()? },
        4 => Message::Pong {
            nonce: r.u64()?,
            workers: r.u32()?,
            queue_depth: r.u64()?,
        },
        5 => Message::MetricsPull { seq: r.u64()? },
        6 => {
            let seq = r.u64()?;
            let len = r.u32()?;
            if len > MAX_PAYLOAD {
                return Err(WireError::FrameTooLarge(len));
            }
            let bytes = r.take(len as usize)?;
            Message::Metrics {
                seq,
                snapshot: MetricsSnapshot::decode(bytes)?,
            }
        }
        7 => Message::ProtocolError {
            detail: r.string()?,
        },
        other => return Err(WireError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(message)
}

/// Decodes one complete frame from the front of `buf`, returning the
/// message and the total bytes consumed.
///
/// # Errors
///
/// A structured [`WireError`] for anything malformed: short buffers,
/// wrong magic/version, unknown kinds, oversized or underfilled payloads,
/// garbage payload bytes. Never panics.
pub fn decode_frame(buf: &[u8]) -> Result<(Message, usize), WireError> {
    let (kind, len) = decode_header(buf)?;
    let end = HEADER_LEN + len as usize;
    let payload = buf.get(HEADER_LEN..end).ok_or(WireError::Truncated)?;
    Ok((decode_payload(kind, payload)?, end))
}

/// The `APCL` protocol's [`apim_net::Framing`]: lets an `apim-net`
/// receive buffer reassemble frames across arbitrary TCP chunk
/// boundaries and hand them out as zero-copy slices that
/// [`decode_frame`] parses in place. Header validation (magic, version,
/// kind, length cap) happens here, so a hostile length prefix is a
/// structured [`FrameError`](apim_net::FrameError) before any
/// allocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireFraming;

impl apim_net::Framing for WireFraming {
    fn header_len(&self) -> usize {
        HEADER_LEN
    }

    fn max_frame(&self) -> usize {
        HEADER_LEN + MAX_PAYLOAD as usize
    }

    fn frame_len(&self, header: &[u8]) -> Result<u64, apim_net::FrameError> {
        match decode_header(header) {
            Ok((_kind, len)) => Ok(HEADER_LEN as u64 + u64::from(len)),
            Err(WireError::FrameTooLarge(len)) => Err(apim_net::FrameError::TooLarge {
                declared: HEADER_LEN as u64 + u64::from(len),
                max: self.max_frame(),
            }),
            Err(e) => Err(apim_net::FrameError::Malformed(e.to_string())),
        }
    }
}

// ---------------------------------------------------------------------------
// Stream IO
// ---------------------------------------------------------------------------

/// A failure receiving a message from a stream: transport or protocol.
#[derive(Debug)]
pub enum RecvError {
    /// The underlying stream failed (closed, reset, timed out).
    Io(io::Error),
    /// The peer sent bytes outside the protocol.
    Wire(WireError),
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "transport: {e}"),
            RecvError::Wire(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Writes one message as a frame.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_message(w: &mut impl Write, message: &Message) -> io::Result<()> {
    let frame = encode_frame(message);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads exactly one message from a stream.
///
/// # Errors
///
/// [`RecvError::Io`] on transport failure (including clean EOF, surfaced
/// as `UnexpectedEof`), [`RecvError::Wire`] on protocol violations.
pub fn read_message(r: &mut impl Read) -> Result<Message, RecvError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header).map_err(RecvError::Io)?;
    let (kind, len) = decode_header(&header).map_err(RecvError::Wire)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(RecvError::Io)?;
    decode_payload(kind, &payload).map_err(RecvError::Wire)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(message: Message) {
        let frame = encode_frame(&message);
        let (decoded, consumed) = decode_frame(&frame).expect("round trip");
        assert_eq!(decoded, message);
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn every_message_kind_round_trips() {
        let mut request = Request::new(JobKind::Run {
            app: App::Fft,
            dataset_bytes: 64 << 20,
        })
        .tenant(TenantId(3))
        .mode(PrecisionMode::LastStage { relax_bits: 8 });
        request.deadline = Some(Duration::from_millis(250));
        round_trip(Message::Submit { seq: 42, request });
        round_trip(Message::Submit {
            seq: 1,
            request: Request::new(JobKind::Mac {
                pairs: vec![(1, 2), (3, 4), (u64::MAX, 0)],
            }),
        });
        round_trip(Message::Submit {
            seq: 2,
            request: Request::new(JobKind::Compile {
                source: "width 16\nin a\nout a * 3".into(),
            }),
        });
        round_trip(Message::Submit {
            seq: 3,
            request: Request::new(JobKind::Echo {
                payload: u64::MAX - 1,
            }),
        });
        round_trip(Message::Submit {
            seq: 4,
            request: Request::new(JobKind::Pixel {
                app: App::Sharpen,
                taps: vec![10, 20, 30, 40, 50],
            }),
        });
        round_trip(Message::Reply {
            seq: 42,
            reply: Reply {
                tenant: TenantId(3),
                attempts: 2,
                latency_us: 1234,
                result: Ok(WireOutput {
                    digest: 0xDEAD_BEEF,
                    summary: "product 42".into(),
                }),
            },
        });
        for error in [
            ServeError::Overloaded { depth: 256 },
            ServeError::QuotaExceeded {
                tenant: TenantId(7),
            },
            ServeError::ShuttingDown,
            ServeError::DeadlineExceeded,
            ServeError::Failed {
                reason: "injected".into(),
                attempts: 3,
            },
            ServeError::WorkerPanicked,
        ] {
            round_trip(Message::Reply {
                seq: 9,
                reply: Reply {
                    tenant: TenantId(0),
                    attempts: 0,
                    latency_us: 0,
                    result: Err(error),
                },
            });
        }
        round_trip(Message::Ping { nonce: 7 });
        round_trip(Message::Pong {
            nonce: 7,
            workers: 4,
            queue_depth: 17,
        });
        round_trip(Message::MetricsPull { seq: 11 });
        round_trip(Message::Metrics {
            seq: 11,
            snapshot: apim_serve::Metrics::default().snapshot(),
        });
        round_trip(Message::ProtocolError {
            detail: "declared payload 1048577 B exceeds cap".into(),
        });
    }

    #[test]
    fn correlation_ids_cover_every_response_kind() {
        assert_eq!(
            Message::Reply {
                seq: 9,
                reply: Reply {
                    tenant: TenantId(0),
                    attempts: 1,
                    latency_us: 1,
                    result: Err(ServeError::ShuttingDown),
                },
            }
            .correlation_id(),
            Some(9)
        );
        assert_eq!(
            Message::Pong {
                nonce: 4,
                workers: 1,
                queue_depth: 0
            }
            .correlation_id(),
            Some(4)
        );
        assert_eq!(
            Message::Metrics {
                seq: 6,
                snapshot: apim_serve::Metrics::default().snapshot(),
            }
            .correlation_id(),
            Some(6)
        );
        // Requests and terminal errors correlate to nothing.
        assert_eq!(Message::Ping { nonce: 4 }.correlation_id(), None);
        assert_eq!(Message::MetricsPull { seq: 6 }.correlation_id(), None);
        assert_eq!(
            Message::ProtocolError { detail: "x".into() }.correlation_id(),
            None
        );
    }

    #[test]
    fn wire_framing_reassembles_and_rejects_like_decode_frame() {
        use apim_net::{Framing, RecvBuffer};
        let framing = WireFraming;
        let messages = [
            Message::Ping { nonce: 1 },
            Message::Submit {
                seq: 2,
                request: Request::new(JobKind::Echo { payload: 7 }),
            },
            Message::MetricsPull { seq: 3 },
        ];
        let stream: Vec<u8> = messages.iter().flat_map(encode_frame).collect();
        let mut recv = RecvBuffer::new();
        let mut decoded = Vec::new();
        for chunk in stream.chunks(5) {
            recv.push_bytes(chunk);
            while let Some(frame) = recv.next_frame(&framing).expect("valid stream") {
                let (message, consumed) = decode_frame(frame).expect("in-place parse");
                assert_eq!(consumed, frame.len());
                decoded.push(message);
            }
        }
        assert_eq!(decoded, messages);
        // A hostile length prefix surfaces as a structured TooLarge.
        let mut hostile = encode_frame(&Message::Ping { nonce: 1 });
        hostile[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            framing.frame_len(&hostile),
            Err(apim_net::FrameError::TooLarge { .. })
        ));
        // Bad magic is malformed, not a length problem.
        hostile[0] = b'X';
        assert!(matches!(
            framing.frame_len(&hostile),
            Err(apim_net::FrameError::Malformed(_))
        ));
    }

    #[test]
    fn header_rejections_are_structured() {
        let good = encode_frame(&Message::Ping { nonce: 1 });
        assert_eq!(decode_frame(&good[..4]), Err(WireError::Truncated));
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame(&bad), Err(WireError::BadMagic(_))));
        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(decode_frame(&bad), Err(WireError::UnsupportedVersion(99)));
        let mut bad = good.clone();
        bad[5] = 200;
        assert_eq!(decode_frame(&bad), Err(WireError::UnknownKind(200)));
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(
            decode_frame(&bad),
            Err(WireError::FrameTooLarge(MAX_PAYLOAD + 1))
        );
    }

    #[test]
    fn payload_rejections_are_structured() {
        // Declared length beyond the buffer.
        let mut frame = encode_frame(&Message::Ping { nonce: 1 });
        let declared = frame.len() - HEADER_LEN + 1;
        frame[8..12].copy_from_slice(&(declared as u32).to_le_bytes());
        assert_eq!(decode_frame(&frame), Err(WireError::Truncated));
        // Payload longer than the message needs.
        let mut frame = encode_frame(&Message::Ping { nonce: 1 });
        frame.push(0xAB);
        let declared = frame.len() - HEADER_LEN;
        frame[8..12].copy_from_slice(&(declared as u32).to_le_bytes());
        assert_eq!(
            decode_frame(&frame),
            Err(WireError::TrailingBytes { extra: 1 })
        );
        // Garbage enum tags inside a Submit.
        let mut frame = encode_frame(&Message::Submit {
            seq: 0,
            request: Request::new(JobKind::Multiply { a: 1, b: 2 }),
        });
        let mode_tag = HEADER_LEN + 8 + 2; // seq + tenant
        frame[mode_tag] = 77;
        assert_eq!(
            decode_frame(&frame),
            Err(WireError::InvalidValue {
                what: "precision mode",
                value: 77
            })
        );
    }
}
