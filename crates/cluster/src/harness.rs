//! In-process multi-node loopback harness for deterministic integration
//! tests and the CI smoke gate: real TCP, real daemons, no external
//! processes — so a test can kill a node mid-run and assert the router's
//! failover picks up every request.

use crate::client::{ClusterClient, ClusterConfig, ClusterError};
use crate::node::{Node, NodeConfig, Transport};
use apim_serve::PoolConfig;
use std::io;
use std::time::Duration;

/// `n` node daemons on ephemeral loopback ports.
#[derive(Debug)]
pub struct LoopbackCluster {
    nodes: Vec<Option<Node>>,
    addrs: Vec<String>,
}

impl LoopbackCluster {
    /// Spawns `n` nodes, each wrapping a pool built from `pool`, on the
    /// default (event-loop) transport.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn spawn(n: usize, pool: &PoolConfig) -> io::Result<LoopbackCluster> {
        LoopbackCluster::spawn_with_transport(n, pool, Transport::EventLoop)
    }

    /// Spawns `n` nodes on an explicit transport — the blocking variant is
    /// the baseline side of the net soak comparison.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn spawn_with_transport(
        n: usize,
        pool: &PoolConfig,
        transport: Transport,
    ) -> io::Result<LoopbackCluster> {
        let mut nodes = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let node = Node::spawn(NodeConfig {
                addr: "127.0.0.1:0".into(),
                pool: pool.clone(),
                transport,
                ..NodeConfig::default()
            })?;
            addrs.push(node.addr().to_string());
            nodes.push(Some(node));
        }
        Ok(LoopbackCluster { nodes, addrs })
    }

    /// The nodes' addresses, in spawn order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Nodes still alive.
    pub fn alive(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// A client over every node (alive or not) with test-friendly
    /// failover settings: fast health checks and a retry budget that
    /// covers losing all but one node.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterClient::connect`] failures.
    pub fn client(&self) -> Result<ClusterClient, ClusterError> {
        ClusterClient::connect(self.client_config())
    }

    /// The configuration [`LoopbackCluster::client`] uses; tweak and build
    /// a custom client from it when a test needs different knobs.
    pub fn client_config(&self) -> ClusterConfig {
        ClusterConfig {
            nodes: self.addrs.clone(),
            max_attempts: (self.addrs.len() as u32 * 2).max(4),
            health_interval: Some(Duration::from_millis(20)),
            rpc_timeout: Duration::from_secs(30),
            ..ClusterConfig::default()
        }
    }

    /// Abruptly kills node `index` (connections severed mid-RPC). Returns
    /// whether it was still alive.
    pub fn kill(&mut self, index: usize) -> bool {
        match self.nodes.get_mut(index).and_then(Option::take) {
            Some(node) => {
                node.kill();
                true
            }
            None => false,
        }
    }

    /// Gracefully shuts down every remaining node.
    pub fn shutdown(mut self) {
        for node in self.nodes.iter_mut().filter_map(Option::take) {
            node.shutdown();
        }
    }
}
