//! Cluster load generation and the kill-a-node smoke scenario.
//!
//! [`run`] drives the same seeded request mix as `apim-serve`'s loadgen
//! through a [`ClusterClient`] from a team of closed-loop submitter
//! threads, then pulls the fleet metrics. [`smoke`] wraps it in the CI
//! robustness gate: spawn a loopback fleet, kill a node once a quarter of
//! the responses are in, and require that **every** submitted request is
//! still answered successfully — failover must hide the loss completely.

use crate::client::{ClusterClient, ClusterConfig, ClusterError};
use crate::fleet::FleetSnapshot;
use crate::harness::LoopbackCluster;
use apim_serve::{loadgen::request_mix, PoolConfig, Request};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of a cluster load-generation run.
#[derive(Debug, Clone)]
pub struct ClusterLoadgenConfig {
    /// Requests to offer.
    pub requests: u64,
    /// PRNG seed for the request mix (same mix as `apim-serve` loadgen).
    pub seed: u64,
    /// Closed-loop submitter threads.
    pub concurrency: usize,
    /// The client/router under test.
    pub cluster: ClusterConfig,
}

impl Default for ClusterLoadgenConfig {
    fn default() -> Self {
        ClusterLoadgenConfig {
            requests: 200,
            seed: 7,
            concurrency: 8,
            cluster: ClusterConfig::default(),
        }
    }
}

/// Outcome of a cluster load-generation run.
#[derive(Debug, Clone)]
pub struct ClusterLoadgenReport {
    /// Requests offered.
    pub offered: u64,
    /// Requests answered successfully (after any failover).
    pub succeeded: u64,
    /// Requests rejected by a node's admission control.
    pub rejected: u64,
    /// Requests lost: no node could answer within the retry budget.
    pub lost: u64,
    /// Requests that survived at least one transport failover.
    pub failovers: u64,
    /// Wall-clock time, first submission to last response.
    pub elapsed: Duration,
    /// Successful responses per second.
    pub throughput_rps: f64,
    /// XOR of every successful result digest — comparable to the
    /// single-pool loadgen checksum for the same seed and request count.
    pub checksum: u64,
    /// Fleet metrics pulled after the run.
    pub fleet: FleetSnapshot,
}

impl fmt::Display for ClusterLoadgenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster-loadgen: {} offered, {} succeeded, {} rejected, {} lost, {} failed over",
            self.offered, self.succeeded, self.rejected, self.lost, self.failovers
        )?;
        writeln!(
            f,
            "elapsed {:.3} s, throughput {:.1} req/s, checksum {:#018x}",
            self.elapsed.as_secs_f64(),
            self.throughput_rps,
            self.checksum
        )?;
        write!(f, "{}", self.fleet)
    }
}

/// Runs the seeded mix through a cluster client, invoking `on_response`
/// (with the running success count) after every answered request — the
/// smoke scenario's kill trigger hangs off this.
///
/// # Errors
///
/// Propagates client construction failures; per-request failures are
/// counted in the report instead.
pub fn run_with(
    config: &ClusterLoadgenConfig,
    on_response: impl Fn(u64) + Sync,
) -> Result<ClusterLoadgenReport, ClusterError> {
    let client = ClusterClient::connect(config.cluster.clone())?;
    let requests = request_mix(config.seed, config.requests);
    let offered = requests.len() as u64;
    let succeeded = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let lost = AtomicU64::new(0);
    let failovers = AtomicU64::new(0);
    let checksum = Mutex::new(0u64);
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.concurrency.max(1) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(request): Option<&Request> = requests.get(index) else {
                    return;
                };
                match client.submit(request) {
                    Ok(response) => {
                        *checksum.lock().expect("checksum") ^= response.output.digest;
                        if response.failovers > 0 {
                            failovers.fetch_add(1, Ordering::Relaxed);
                        }
                        on_response(succeeded.fetch_add(1, Ordering::Relaxed) + 1);
                    }
                    Err(ClusterError::Rejected(_)) => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                        on_response(succeeded.load(Ordering::Relaxed));
                    }
                    Err(_) => {
                        lost.fetch_add(1, Ordering::Relaxed);
                        on_response(succeeded.load(Ordering::Relaxed));
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let fleet = client.pull_metrics()?;
    let succeeded = succeeded.into_inner();
    Ok(ClusterLoadgenReport {
        offered,
        succeeded,
        rejected: rejected.into_inner(),
        lost: lost.into_inner(),
        failovers: failovers.into_inner(),
        elapsed,
        throughput_rps: succeeded as f64 / elapsed.as_secs_f64().max(1e-9),
        checksum: checksum.into_inner().expect("checksum"),
        fleet,
    })
}

/// [`run_with`] without a response hook.
///
/// # Errors
///
/// See [`run_with`].
pub fn run(config: &ClusterLoadgenConfig) -> Result<ClusterLoadgenReport, ClusterError> {
    run_with(config, |_| {})
}

/// Configuration of the [`smoke`] scenario.
#[derive(Debug, Clone)]
pub struct SmokeConfig {
    /// Loopback nodes to spawn.
    pub nodes: usize,
    /// Requests to offer.
    pub requests: u64,
    /// Mix seed.
    pub seed: u64,
    /// Worker threads per node.
    pub workers: usize,
    /// Kill node 0 once this many responses are in (`None` = requests/4).
    pub kill_after: Option<u64>,
}

impl Default for SmokeConfig {
    fn default() -> Self {
        SmokeConfig {
            nodes: 2,
            requests: 200,
            seed: 7,
            workers: 2,
            kill_after: None,
        }
    }
}

/// Outcome of the smoke scenario.
#[derive(Debug, Clone)]
pub struct SmokeReport {
    /// The load report against the degraded fleet.
    pub loadgen: ClusterLoadgenReport,
    /// Index of the node that was killed mid-run.
    pub killed_node: usize,
    /// Response count at which the kill fired.
    pub killed_after: u64,
}

impl SmokeReport {
    /// The CI gate: every offered request was answered (none rejected —
    /// queues are sized for the offered load — and none lost to the kill).
    pub fn passed(&self) -> bool {
        self.loadgen.lost == 0
            && self.loadgen.rejected == 0
            && self.loadgen.succeeded == self.loadgen.offered
    }
}

impl fmt::Display for SmokeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster-smoke: killed node {} after {} responses; {}",
            self.killed_node,
            self.killed_after,
            if self.passed() {
                "zero requests lost — PASS"
            } else {
                "LOST REQUESTS — FAIL"
            }
        )?;
        write!(f, "{}", self.loadgen)
    }
}

/// Spawns a loopback fleet, runs the mix, kills node 0 mid-run and
/// reports whether failover hid the loss.
///
/// # Errors
///
/// Propagates harness spawn and client construction failures.
pub fn smoke(config: &SmokeConfig) -> Result<SmokeReport, ClusterError> {
    let pool = PoolConfig {
        workers: config.workers.max(1),
        // Deep enough that admission control never rejects the offered
        // load, even after it all fails over to one node: the gate is
        // about losing accepted requests, not backpressure.
        queue_depth: usize::try_from(config.requests).unwrap_or(usize::MAX),
        ..PoolConfig::default()
    };
    let cluster = LoopbackCluster::spawn(config.nodes.max(1), &pool).map_err(ClusterError::Io)?;
    let kill_at = config
        .kill_after
        .unwrap_or(config.requests / 4)
        .min(config.requests.saturating_sub(1));
    let harness = Mutex::new(Some(cluster));
    let killed_after = AtomicU64::new(0);
    let loadgen_config = ClusterLoadgenConfig {
        requests: config.requests,
        seed: config.seed,
        concurrency: 8,
        cluster: harness
            .lock()
            .expect("harness")
            .as_ref()
            .expect("alive")
            .client_config(),
    };
    let report = run_with(&loadgen_config, |succeeded| {
        if succeeded >= kill_at {
            let mut slot = harness.lock().expect("harness");
            if let Some(fleet) = slot.as_mut() {
                if fleet.alive() == config.nodes.max(1) {
                    fleet.kill(0);
                    killed_after.store(succeeded, Ordering::Relaxed);
                }
            }
        }
    })?;
    if let Some(fleet) = harness.lock().expect("harness").take() {
        fleet.shutdown();
    }
    Ok(SmokeReport {
        loadgen: report,
        killed_node: 0,
        killed_after: killed_after.load(Ordering::Relaxed),
    })
}
