//! Cluster load generation and the kill-a-node smoke scenario.
//!
//! [`run`] drives the same seeded request mix as `apim-serve`'s loadgen
//! through a [`ClusterClient`] from a team of closed-loop submitter
//! threads, then pulls the fleet metrics. [`smoke`] wraps it in the CI
//! robustness gate: spawn a loopback fleet, kill a node once a quarter of
//! the responses are in, and require that **every** submitted request is
//! still answered successfully — failover must hide the loss completely.
//! [`soak`] is the sustained transport stressor: many thousands of echo
//! requests over many concurrent logical streams, driven either through
//! the pipelined multiplexed transport or the blocking baseline so the
//! two are directly comparable.

use crate::client::{ClusterClient, ClusterConfig, ClusterError, PendingSubmit};
use crate::fleet::FleetSnapshot;
use crate::harness::LoopbackCluster;
use crate::node::Transport;
use apim_serve::{loadgen::request_mix, JobKind, PoolConfig, Request, TenantId};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of a cluster load-generation run.
#[derive(Debug, Clone)]
pub struct ClusterLoadgenConfig {
    /// Requests to offer.
    pub requests: u64,
    /// PRNG seed for the request mix (same mix as `apim-serve` loadgen).
    pub seed: u64,
    /// Closed-loop submitter threads.
    pub concurrency: usize,
    /// The client/router under test.
    pub cluster: ClusterConfig,
}

impl Default for ClusterLoadgenConfig {
    fn default() -> Self {
        ClusterLoadgenConfig {
            requests: 200,
            seed: 7,
            concurrency: 8,
            cluster: ClusterConfig::default(),
        }
    }
}

/// Outcome of a cluster load-generation run.
#[derive(Debug, Clone)]
pub struct ClusterLoadgenReport {
    /// Requests offered.
    pub offered: u64,
    /// Requests answered successfully (after any failover).
    pub succeeded: u64,
    /// Requests rejected by a node's admission control.
    pub rejected: u64,
    /// Requests lost: no node could answer within the retry budget.
    pub lost: u64,
    /// Requests that survived at least one transport failover.
    pub failovers: u64,
    /// Wall-clock time, first submission to last response.
    pub elapsed: Duration,
    /// Successful responses per second.
    pub throughput_rps: f64,
    /// XOR of every successful result digest — comparable to the
    /// single-pool loadgen checksum for the same seed and request count.
    pub checksum: u64,
    /// Fleet metrics pulled after the run.
    pub fleet: FleetSnapshot,
}

impl fmt::Display for ClusterLoadgenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster-loadgen: {} offered, {} succeeded, {} rejected, {} lost, {} failed over",
            self.offered, self.succeeded, self.rejected, self.lost, self.failovers
        )?;
        writeln!(
            f,
            "elapsed {:.3} s, throughput {:.1} req/s, checksum {:#018x}",
            self.elapsed.as_secs_f64(),
            self.throughput_rps,
            self.checksum
        )?;
        write!(f, "{}", self.fleet)
    }
}

/// Runs the seeded mix through a cluster client, invoking `on_response`
/// (with the running success count) after every answered request — the
/// smoke scenario's kill trigger hangs off this.
///
/// # Errors
///
/// Propagates client construction failures; per-request failures are
/// counted in the report instead.
pub fn run_with(
    config: &ClusterLoadgenConfig,
    on_response: impl Fn(u64) + Sync,
) -> Result<ClusterLoadgenReport, ClusterError> {
    let client = ClusterClient::connect(config.cluster.clone())?;
    let requests = request_mix(config.seed, config.requests);
    let offered = requests.len() as u64;
    let succeeded = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let lost = AtomicU64::new(0);
    let failovers = AtomicU64::new(0);
    let checksum = Mutex::new(0u64);
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.concurrency.max(1) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(request): Option<&Request> = requests.get(index) else {
                    return;
                };
                match client.submit(request) {
                    Ok(response) => {
                        *checksum.lock().expect("checksum") ^= response.output.digest;
                        if response.failovers > 0 {
                            failovers.fetch_add(1, Ordering::Relaxed);
                        }
                        on_response(succeeded.fetch_add(1, Ordering::Relaxed) + 1);
                    }
                    Err(ClusterError::Rejected(_)) => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                        on_response(succeeded.load(Ordering::Relaxed));
                    }
                    Err(_) => {
                        lost.fetch_add(1, Ordering::Relaxed);
                        on_response(succeeded.load(Ordering::Relaxed));
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let fleet = client.pull_metrics()?;
    let succeeded = succeeded.into_inner();
    Ok(ClusterLoadgenReport {
        offered,
        succeeded,
        rejected: rejected.into_inner(),
        lost: lost.into_inner(),
        failovers: failovers.into_inner(),
        elapsed,
        throughput_rps: succeeded as f64 / elapsed.as_secs_f64().max(1e-9),
        checksum: checksum.into_inner().expect("checksum"),
        fleet,
    })
}

/// [`run_with`] without a response hook.
///
/// # Errors
///
/// See [`run_with`].
pub fn run(config: &ClusterLoadgenConfig) -> Result<ClusterLoadgenReport, ClusterError> {
    run_with(config, |_| {})
}

/// Configuration of the [`smoke`] scenario.
#[derive(Debug, Clone)]
pub struct SmokeConfig {
    /// Loopback nodes to spawn.
    pub nodes: usize,
    /// Requests to offer.
    pub requests: u64,
    /// Mix seed.
    pub seed: u64,
    /// Worker threads per node.
    pub workers: usize,
    /// Kill node 0 once this many responses are in (`None` = requests/4).
    pub kill_after: Option<u64>,
}

impl Default for SmokeConfig {
    fn default() -> Self {
        SmokeConfig {
            nodes: 2,
            requests: 200,
            seed: 7,
            workers: 2,
            kill_after: None,
        }
    }
}

/// Outcome of the smoke scenario.
#[derive(Debug, Clone)]
pub struct SmokeReport {
    /// The load report against the degraded fleet.
    pub loadgen: ClusterLoadgenReport,
    /// Index of the node that was killed mid-run.
    pub killed_node: usize,
    /// Response count at which the kill fired.
    pub killed_after: u64,
}

impl SmokeReport {
    /// The CI gate: every offered request was answered (none rejected —
    /// queues are sized for the offered load — and none lost to the kill).
    pub fn passed(&self) -> bool {
        self.loadgen.lost == 0
            && self.loadgen.rejected == 0
            && self.loadgen.succeeded == self.loadgen.offered
    }
}

impl fmt::Display for SmokeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster-smoke: killed node {} after {} responses; {}",
            self.killed_node,
            self.killed_after,
            if self.passed() {
                "zero requests lost — PASS"
            } else {
                "LOST REQUESTS — FAIL"
            }
        )?;
        write!(f, "{}", self.loadgen)
    }
}

/// Spawns a loopback fleet, runs the mix, kills node 0 mid-run and
/// reports whether failover hid the loss.
///
/// # Errors
///
/// Propagates harness spawn and client construction failures.
pub fn smoke(config: &SmokeConfig) -> Result<SmokeReport, ClusterError> {
    let pool = PoolConfig {
        workers: config.workers.max(1),
        // Deep enough that admission control never rejects the offered
        // load, even after it all fails over to one node: the gate is
        // about losing accepted requests, not backpressure.
        queue_depth: usize::try_from(config.requests).unwrap_or(usize::MAX),
        ..PoolConfig::default()
    };
    let cluster = LoopbackCluster::spawn(config.nodes.max(1), &pool).map_err(ClusterError::Io)?;
    let kill_at = config
        .kill_after
        .unwrap_or(config.requests / 4)
        .min(config.requests.saturating_sub(1));
    let harness = Mutex::new(Some(cluster));
    let killed_after = AtomicU64::new(0);
    let loadgen_config = ClusterLoadgenConfig {
        requests: config.requests,
        seed: config.seed,
        concurrency: 8,
        cluster: harness
            .lock()
            .expect("harness")
            .as_ref()
            .expect("alive")
            .client_config(),
    };
    let report = run_with(&loadgen_config, |succeeded| {
        if succeeded >= kill_at {
            let mut slot = harness.lock().expect("harness");
            if let Some(fleet) = slot.as_mut() {
                if fleet.alive() == config.nodes.max(1) {
                    fleet.kill(0);
                    killed_after.store(succeeded, Ordering::Relaxed);
                }
            }
        }
    })?;
    if let Some(fleet) = harness.lock().expect("harness").take() {
        fleet.shutdown();
    }
    Ok(SmokeReport {
        loadgen: report,
        killed_node: 0,
        killed_after: killed_after.load(Ordering::Relaxed),
    })
}

/// Configuration of the sustained [`soak`] scenario.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Total requests to push through the fleet.
    pub requests: u64,
    /// Concurrent logical streams; each keeps one request in flight at all
    /// times, so this is the offered concurrency.
    pub streams: usize,
    /// Loopback nodes to spawn.
    pub nodes: usize,
    /// Worker threads per node pool.
    pub workers: usize,
    /// `true`: multiplexed pipelined transport over event-loop nodes.
    /// `false`: the blocking thread-per-connection baseline (stream count
    /// capped at [`SoakConfig::MAX_BLOCKING_THREADS`] OS threads).
    pub pipelined: bool,
    /// Driver threads sharing the logical streams (pipelined mode only —
    /// the whole point is that stream count and thread count decouple).
    pub driver_threads: usize,
}

impl SoakConfig {
    /// OS-thread cap for the blocking baseline driver.
    pub const MAX_BLOCKING_THREADS: usize = 256;
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            requests: 10_000,
            streams: 256,
            nodes: 1,
            workers: 2,
            pipelined: true,
            driver_threads: 4,
        }
    }
}

/// Outcome of a [`soak`] run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Requests offered.
    pub offered: u64,
    /// Requests answered successfully.
    pub succeeded: u64,
    /// Requests rejected by admission control (queues are sized so this
    /// should stay zero).
    pub rejected: u64,
    /// Requests lost: transport failure that even a blocking failover
    /// retry could not recover.
    pub lost: u64,
    /// Concurrent logical streams driven.
    pub streams: usize,
    /// Which transport was driven.
    pub pipelined: bool,
    /// Wall-clock time, first submission to last response.
    pub elapsed: Duration,
    /// Successful responses per second.
    pub throughput_rps: f64,
    /// Median end-to-end request latency, µs.
    pub p50_us: u64,
    /// 99th-percentile end-to-end request latency, µs.
    pub p99_us: u64,
    /// XOR of every successful result digest — identical across transports
    /// for the same request count, so the baseline comparison also checks
    /// bit-identity.
    pub checksum: u64,
    /// Fleet metrics pulled right before shutdown (includes the
    /// open-connection and in-flight-request gauges).
    pub fleet: FleetSnapshot,
}

impl SoakReport {
    /// The soak gate: every offered request answered successfully.
    pub fn passed(&self) -> bool {
        self.lost == 0 && self.rejected == 0 && self.succeeded == self.offered
    }
}

impl fmt::Display for SoakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster-soak [{}]: {} offered over {} streams, {} succeeded, {} rejected, {} lost",
            if self.pipelined {
                "pipelined"
            } else {
                "blocking"
            },
            self.offered,
            self.streams,
            self.succeeded,
            self.rejected,
            self.lost
        )?;
        writeln!(
            f,
            "elapsed {:.3} s, throughput {:.1} req/s, p50 {} µs, p99 {} µs, checksum {:#018x}",
            self.elapsed.as_secs_f64(),
            self.throughput_rps,
            self.p50_us,
            self.p99_us,
            self.checksum
        )?;
        write!(f, "{}", self.fleet)
    }
}

/// Per-thread result accumulator, merged once at the end of the drive.
#[derive(Default)]
struct SoakTally {
    succeeded: u64,
    rejected: u64,
    lost: u64,
    checksum: u64,
    latencies: Vec<u64>,
}

impl SoakTally {
    fn record(
        &mut self,
        outcome: Result<crate::client::ClusterResponse, ClusterError>,
        started: Instant,
    ) {
        match outcome {
            Ok(response) => {
                self.succeeded += 1;
                self.checksum ^= response.output.digest;
                self.latencies
                    .push(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
            }
            Err(ClusterError::Rejected(_)) => self.rejected += 1,
            Err(_) => self.lost += 1,
        }
    }

    fn merge_into(self, total: &Mutex<SoakTally>) {
        let mut t = total.lock().expect("soak tally");
        t.succeeded += self.succeeded;
        t.rejected += self.rejected;
        t.lost += self.lost;
        t.checksum ^= self.checksum;
        t.latencies.extend(self.latencies);
    }
}

/// The soak request for global index `index` on logical stream `stream`:
/// an echo probe, so the measurement isolates transport cost from
/// simulator work, with the payload doubling as an integrity check.
fn soak_request(index: u64, stream: usize) -> Request {
    Request::new(JobKind::Echo { payload: index }).tenant(TenantId(stream as u16))
}

/// Spawns a loopback fleet on the configured transport and pushes
/// [`SoakConfig::requests`] echo requests through it from
/// [`SoakConfig::streams`] concurrent logical streams.
///
/// Pipelined mode keeps every stream's request in flight from a handful
/// of driver threads via [`ClusterClient::begin_submit`]; a pipelined
/// transport failure is retried once through the blocking failover path
/// before the request counts as lost. Blocking mode is the classic
/// closed-loop thread-per-stream driver.
///
/// # Errors
///
/// Propagates harness spawn and client construction failures; per-request
/// failures are counted in the report instead.
pub fn soak(config: &SoakConfig) -> Result<SoakReport, ClusterError> {
    let streams = config.streams.max(1);
    let pool = PoolConfig {
        workers: config.workers.max(1),
        // Deep enough that the full stream concurrency never trips
        // admission control: the soak measures transport, not backpressure.
        queue_depth: (streams * 2 + 64).max(1024),
        ..PoolConfig::default()
    };
    let transport = if config.pipelined {
        Transport::EventLoop
    } else {
        Transport::Blocking
    };
    let cluster = LoopbackCluster::spawn_with_transport(config.nodes.max(1), &pool, transport)
        .map_err(ClusterError::Io)?;
    let mut client_config = cluster.client_config();
    client_config.pipelined = config.pipelined;
    // Spread heavy stream counts over more multiplexed sockets so no
    // single connection carries the whole pipeline.
    client_config.conns_per_node = (streams / 128).clamp(4, 32);
    client_config.rpc_timeout = Duration::from_secs(60);
    let client = ClusterClient::connect(client_config)?;

    let next = AtomicU64::new(0);
    let total = config.requests;
    let tally = Mutex::new(SoakTally::default());
    let started = Instant::now();
    if config.pipelined {
        drive_pipelined(config, streams, &client, &next, total, &tally);
    } else {
        drive_blocking(streams, &client, &next, total, &tally);
    }
    let elapsed = started.elapsed();
    let fleet = client.pull_metrics()?;
    cluster.shutdown();

    let mut tally = tally.into_inner().expect("soak tally");
    tally.latencies.sort_unstable();
    let percentile = |q: f64| -> u64 {
        if tally.latencies.is_empty() {
            return 0;
        }
        let rank = ((tally.latencies.len() as f64) * q).ceil() as usize;
        tally.latencies[rank.clamp(1, tally.latencies.len()) - 1]
    };
    Ok(SoakReport {
        offered: total,
        succeeded: tally.succeeded,
        rejected: tally.rejected,
        lost: tally.lost,
        streams,
        pipelined: config.pipelined,
        elapsed,
        throughput_rps: tally.succeeded as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        checksum: tally.checksum,
        fleet,
    })
}

/// Pipelined driver: each thread owns a window of logical streams and
/// keeps every one of them occupied, harvesting completions out of order.
fn drive_pipelined(
    config: &SoakConfig,
    streams: usize,
    client: &ClusterClient,
    next: &AtomicU64,
    total: u64,
    tally: &Mutex<SoakTally>,
) {
    let threads = config.driver_threads.clamp(1, streams);
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let my_streams = (streams / threads) + usize::from(thread < streams % threads);
            let base = (streams / threads) * thread + thread.min(streams % threads);
            scope.spawn(move || {
                let mut local = SoakTally::default();
                let mut window: Vec<Option<(Instant, u64, PendingSubmit)>> =
                    (0..my_streams).map(|_| None).collect();
                let mut exhausted = false;
                loop {
                    let mut progress = false;
                    let mut inflight = 0usize;
                    for (slot_index, slot) in window.iter_mut().enumerate() {
                        if let Some((begun, index, pending)) = slot {
                            if let Some(outcome) = pending.try_complete() {
                                let (begun, index) = (*begun, *index);
                                // A transport failure gets one recovery
                                // pass through the blocking failover path
                                // before it may count as lost.
                                let outcome = match outcome {
                                    Err(e) if !matches!(e, ClusterError::Rejected(_)) => {
                                        client.submit(&soak_request(index, base + slot_index))
                                    }
                                    settled => settled,
                                };
                                local.record(outcome, begun);
                                *slot = None;
                                progress = true;
                            } else {
                                inflight += 1;
                                continue;
                            }
                        }
                        if slot.is_none() && !exhausted {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= total {
                                exhausted = true;
                                continue;
                            }
                            let request = soak_request(index, base + slot_index);
                            let begun = Instant::now();
                            match client.begin_submit(&request) {
                                Ok(pending) => {
                                    *slot = Some((begun, index, pending));
                                    inflight += 1;
                                    progress = true;
                                }
                                // No connection right now: recover through
                                // the blocking failover path so the
                                // request is never lost silently.
                                Err(_) => {
                                    local.record(client.submit(&request), begun);
                                    progress = true;
                                }
                            }
                        }
                    }
                    if exhausted && inflight == 0 {
                        break;
                    }
                    if !progress {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
                local.merge_into(tally);
            });
        }
    });
}

/// Blocking baseline driver: a closed-loop OS thread per stream (capped),
/// each waiting out its RPC before issuing the next.
fn drive_blocking(
    streams: usize,
    client: &ClusterClient,
    next: &AtomicU64,
    total: u64,
    tally: &Mutex<SoakTally>,
) {
    let threads = streams.min(SoakConfig::MAX_BLOCKING_THREADS);
    std::thread::scope(|scope| {
        for thread in 0..threads {
            scope.spawn(move || {
                let mut local = SoakTally::default();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let begun = Instant::now();
                    local.record(client.submit(&soak_request(index, thread)), begun);
                }
                local.merge_into(tally);
            });
        }
    });
}
