//! `apim-cluster`: a distributed serving tier over the `apim-serve`
//! runtime — many node daemons, each wrapping one pool, behind a
//! sharding, failing-over client.
//!
//! The APIM architecture scales by replicating crossbar block pairs
//! behind one controller; this crate is the same shape one level up:
//! many serving pools behind one router. Plain std TCP without an async
//! runtime: the node daemon runs a poll-based event loop (the `apim-net`
//! crate) that services every connection from one thread, and the client
//! multiplexes many logical request streams — tagged by correlation id —
//! over a handful of pipelined sockets. The original blocking
//! thread-per-connection transport survives behind
//! [`node::Transport::Blocking`] / [`ClusterConfig::pipelined`]` = false`
//! as the comparison baseline for the net soak benchmark.
//!
//! - [`wire`] — the length-prefixed, versioned binary protocol. Strict
//!   bounds-checked decoding: malformed frames produce structured
//!   errors, never panics.
//! - [`node`] — the daemon: one [`apim_serve::Pool`] behind a listener,
//!   served by an event loop with per-connection pipelining and
//!   backpressure.
//! - [`client`] — the router: consistent hashing on tenant id, health
//!   checks, failover with capped backoff, optional hedged sends,
//!   multiplexed pipelined RPC.
//! - [`fleet`] — per-node metrics snapshots merged into exact
//!   fleet-wide quantiles.
//! - [`harness`] — in-process loopback fleet for deterministic tests.
//! - [`loadgen`] — cluster load generation, the kill-a-node smoke gate
//!   and the pipelined soak driver.

#![deny(missing_docs)]

pub mod client;
pub mod fleet;
pub mod harness;
pub mod loadgen;
mod mux;
pub mod node;
pub mod wire;

pub use client::{
    ClientStats, ClusterClient, ClusterConfig, ClusterError, ClusterResponse, PendingSubmit,
};
pub use fleet::FleetSnapshot;
pub use harness::LoopbackCluster;
pub use node::{Node, NodeConfig, Transport};
