//! `apim-cluster`: a distributed serving tier over the `apim-serve`
//! runtime — many node daemons, each wrapping one pool, behind a
//! sharding, failing-over client.
//!
//! The APIM architecture scales by replicating crossbar block pairs
//! behind one controller; this crate is the same shape one level up:
//! many serving pools behind one router. Plain std TCP with blocking
//! I/O and a thread per connection — no async runtime — because the
//! per-request work (a full in-memory kernel run) dwarfs any scheduling
//! overhead an executor would save.
//!
//! - [`wire`] — the length-prefixed, versioned binary protocol. Strict
//!   bounds-checked decoding: malformed frames produce structured
//!   errors, never panics.
//! - [`node`] — the daemon: one [`apim_serve::Pool`] behind a listener.
//! - [`client`] — the router: consistent hashing on tenant id, health
//!   checks, failover with capped backoff, optional hedged sends.
//! - [`fleet`] — per-node metrics snapshots merged into exact
//!   fleet-wide quantiles.
//! - [`harness`] — in-process loopback fleet for deterministic tests.
//! - [`loadgen`] — cluster load generation and the kill-a-node smoke
//!   gate.

#![deny(missing_docs)]

pub mod client;
pub mod fleet;
pub mod harness;
pub mod loadgen;
pub mod node;
pub mod wire;

pub use client::{ClientStats, ClusterClient, ClusterConfig, ClusterError, ClusterResponse};
pub use fleet::FleetSnapshot;
pub use harness::LoopbackCluster;
pub use node::{Node, NodeConfig};
