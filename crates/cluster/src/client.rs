//! The cluster client/router: sharding, health checks and failover.
//!
//! Requests shard by **consistent hashing on the tenant id**: every node
//! contributes `vnodes` points to a hash ring, and a tenant's requests
//! walk the ring from `hash(tenant)`, so (a) one tenant's traffic lands
//! on one *home* node — keeping that node's per-tenant quota meaningful
//! fleet-wide — and (b) losing a node only remaps the tenants it owned,
//! not the whole fleet.
//!
//! The transport is **multiplexed and pipelined** by default: each node
//! gets up to [`ClusterConfig::conns_per_node`] [`mux`](crate::mux)
//! connections, each carrying any number of concurrent logical request
//! streams tagged by correlation id, so a caller never waits behind an
//! unrelated request for a socket. [`ClusterClient::begin_submit`]
//! exposes the pipeline directly: issue without waiting, harvest
//! responses out of order. Setting [`ClusterConfig::pipelined`] to
//! `false` selects the original blocking one-RPC-at-a-time connection
//! pool — kept as the comparison baseline for the net soak benchmark.
//!
//! Failover is transport-level only: a connection failure (dead node,
//! severed mid-RPC) marks the node down and retries the request on the
//! next distinct node along the ring with capped exponential backoff.
//! *Admission* rejections (overload, quota, deadline) are answered to the
//! caller unchanged — forwarding a quota rejection to a non-home node
//! would silently defeat the quota it enforces. An optional hedge fires
//! a duplicate RPC at the next replica when the primary has not answered
//! within a configured delay; first success wins.

use crate::mux::{MuxConn, PendingRpc};
use crate::wire::{self, Message, RecvError, WireOutput};
use apim_serve::{Request, ServeError, TenantId};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`ClusterClient`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node addresses (`host:port`). Order is identity: metrics and
    /// routing report nodes by their index here.
    pub nodes: Vec<String>,
    /// Virtual nodes per physical node on the hash ring.
    pub vnodes: usize,
    /// Total RPC attempts per request across distinct nodes.
    pub max_attempts: u32,
    /// Backoff before a failover retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Upper bound on one backoff sleep.
    pub backoff_cap: Duration,
    /// Deadline for one RPC (a node slower than this counts as failed and
    /// the request fails over).
    pub rpc_timeout: Duration,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Background health-check period; `None` disables the checker (nodes
    /// are then only marked down by failed RPCs and revived by retries).
    pub health_interval: Option<Duration>,
    /// Launch a duplicate RPC on the next replica when the primary has
    /// not answered within this delay; `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Connections kept per node. Pipelined: the multiplexed sockets RPCs
    /// round-robin over. Blocking: the warm-pool bound (extra concurrent
    /// RPCs just open extra connections).
    pub conns_per_node: usize,
    /// `true` (default): multiplexed connections with pipelined RPCs.
    /// `false`: the blocking thread-per-RPC connection pool baseline.
    pub pipelined: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: Vec::new(),
            vnodes: 16,
            max_attempts: 4,
            retry_backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            rpc_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(1),
            health_interval: Some(Duration::from_millis(100)),
            hedge_after: None,
            conns_per_node: 4,
            pipelined: true,
        }
    }
}

impl ClusterConfig {
    /// A configuration for the given nodes with every knob at its default.
    pub fn new(nodes: Vec<String>) -> Self {
        ClusterConfig {
            nodes,
            ..ClusterConfig::default()
        }
    }
}

/// Structured failure modes of a cluster submission.
#[derive(Debug)]
pub enum ClusterError {
    /// The client was built with an empty node list.
    NoNodes,
    /// A node answered with an admission/execution rejection; not a
    /// transport failure, so no failover was attempted.
    Rejected(ServeError),
    /// Every eligible node failed at the transport level.
    Unavailable {
        /// RPC attempts made.
        attempts: u32,
        /// Rendering of the last transport error.
        last: String,
    },
    /// A node broke the protocol (bad frame, wrong correlation id).
    Protocol(String),
    /// An IO failure outside the RPC path (e.g. metrics pull).
    Io(io::Error),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoNodes => write!(f, "no nodes configured"),
            ClusterError::Rejected(e) => write!(f, "rejected by node: {e}"),
            ClusterError::Unavailable { attempts, last } => {
                write!(
                    f,
                    "all nodes unavailable after {attempts} attempt(s): {last}"
                )
            }
            ClusterError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClusterError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The answer to one successfully served cluster request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterResponse {
    /// Index (into [`ClusterConfig::nodes`]) of the node that answered.
    pub node: usize,
    /// Digest + summary of the result.
    pub output: WireOutput,
    /// Node-side execution attempts.
    pub attempts: u32,
    /// Node-side latency, µs.
    pub node_latency_us: u64,
    /// Transport-level failovers this request survived.
    pub failovers: u32,
}

/// Point-in-time counters of the client's own behaviour (the node-side
/// story lives in the fleet metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests answered successfully.
    pub succeeded: u64,
    /// Requests rejected by a node (admission/execution).
    pub rejected: u64,
    /// Transport-level RPC failures observed.
    pub transport_failures: u64,
    /// Requests that failed over to another node at least once.
    pub failovers: u64,
    /// Hedged duplicate RPCs launched.
    pub hedges: u64,
}

#[derive(Debug, Default)]
struct StatsCells {
    submitted: AtomicU64,
    succeeded: AtomicU64,
    rejected: AtomicU64,
    transport_failures: AtomicU64,
    failovers: AtomicU64,
    hedges: AtomicU64,
}

/// One configured node: address, up/down belief, connections (multiplexed
/// and blocking pools both live here; only the configured transport's pool
/// is populated).
struct NodeSlot {
    addr: String,
    up: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
    muxes: Mutex<Vec<Arc<MuxConn>>>,
    rr: AtomicU64,
}

struct ClientInner {
    config: ClusterConfig,
    nodes: Vec<NodeSlot>,
    /// `(ring position, node index)`, sorted by position.
    ring: Vec<(u64, usize)>,
    /// Correlation-id source for every RPC kind (submits, pings, metrics
    /// pulls): one counter keeps ids unique per connection, which the
    /// mux demultiplexer relies on.
    seq: AtomicU64,
    stats: StatsCells,
    stop: AtomicBool,
}

/// A sharding, health-checking, failing-over client over a static node
/// list. Cheap to clone behind an `Arc`; `submit` is safe from any number
/// of threads concurrently.
pub struct ClusterClient {
    inner: Arc<ClientInner>,
    health_thread: Option<JoinHandle<()>>,
}

impl fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterClient")
            .field("nodes", &self.inner.config.nodes)
            .finish()
    }
}

/// SplitMix64 finalizer: the ring's hash function.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ClusterClient {
    /// Builds the ring and starts the health checker (if configured).
    /// Connections open lazily on first use, so construction succeeds even
    /// while nodes are still coming up.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoNodes`] for an empty node list.
    pub fn connect(config: ClusterConfig) -> Result<ClusterClient, ClusterError> {
        if config.nodes.is_empty() {
            return Err(ClusterError::NoNodes);
        }
        let nodes: Vec<NodeSlot> = config
            .nodes
            .iter()
            .map(|addr| NodeSlot {
                addr: addr.clone(),
                up: AtomicBool::new(true),
                conns: Mutex::new(Vec::new()),
                muxes: Mutex::new(Vec::new()),
                rr: AtomicU64::new(0),
            })
            .collect();
        let mut ring = Vec::with_capacity(nodes.len() * config.vnodes.max(1));
        for (index, _) in nodes.iter().enumerate() {
            for replica in 0..config.vnodes.max(1) {
                ring.push((mix((index as u64) << 32 | replica as u64), index));
            }
        }
        ring.sort_unstable();
        let inner = Arc::new(ClientInner {
            config,
            nodes,
            ring,
            seq: AtomicU64::new(0),
            stats: StatsCells::default(),
            stop: AtomicBool::new(false),
        });
        let health_thread = inner.config.health_interval.map(|interval| {
            let health_inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("apim-cluster-health".into())
                .spawn(move || health_loop(&health_inner, interval))
                .expect("spawn health thread")
        });
        Ok(ClusterClient {
            inner,
            health_thread,
        })
    }

    /// The preferred node order for a tenant: ring successors of
    /// `hash(tenant)`, deduplicated, covering every node. Element 0 is the
    /// tenant's home node.
    pub fn route(&self, tenant: TenantId) -> Vec<usize> {
        let inner = &self.inner;
        let point = mix(0x007e_4a11 ^ u64::from(tenant.0));
        let start = inner
            .ring
            .partition_point(|&(position, _)| position < point);
        let mut order = Vec::with_capacity(inner.nodes.len());
        for i in 0..inner.ring.len() {
            let (_, node) = inner.ring[(start + i) % inner.ring.len()];
            if !order.contains(&node) {
                order.push(node);
                if order.len() == inner.nodes.len() {
                    break;
                }
            }
        }
        order
    }

    /// Whether the client currently believes a node is serving.
    pub fn node_up(&self, index: usize) -> bool {
        self.inner.nodes[index].up.load(Ordering::Relaxed)
    }

    /// Submits one request to the tenant's home node, failing over along
    /// the ring on transport errors.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Rejected`] carries a node's own structured
    /// rejection; [`ClusterError::Unavailable`] means no node could be
    /// reached within the attempt budget.
    pub fn submit(&self, request: &Request) -> Result<ClusterResponse, ClusterError> {
        let inner = &self.inner;
        inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let order = self.route(request.tenant);
        let max_attempts = inner.config.max_attempts.max(1);
        let mut attempts = 0u32;
        let mut failovers = 0u32;
        let mut last = String::from("no attempt made");
        while attempts < max_attempts {
            // Prefer up nodes; once everything is marked down, probe in
            // ring order anyway — a revived node answers, a dead one fails
            // fast.
            let position = attempts as usize % order.len();
            let all_down = order
                .iter()
                .all(|&n| !inner.nodes[n].up.load(Ordering::Relaxed));
            let node = order[position];
            if !all_down && !inner.nodes[node].up.load(Ordering::Relaxed) {
                attempts += 1;
                continue;
            }
            if attempts > 0 {
                let backoff = inner
                    .config
                    .retry_backoff
                    .saturating_mul(1 << (attempts - 1).min(16))
                    .min(inner.config.backoff_cap);
                std::thread::sleep(backoff);
            }
            attempts += 1;
            match self.attempt_with_hedge(node, order.get(position + 1).copied(), request) {
                Ok((winner, reply)) => match reply.result {
                    Ok(output) => {
                        inner.stats.succeeded.fetch_add(1, Ordering::Relaxed);
                        if failovers > 0 {
                            inner.stats.failovers.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok(ClusterResponse {
                            node: winner,
                            output,
                            attempts: reply.attempts,
                            node_latency_us: reply.latency_us,
                            failovers,
                        });
                    }
                    Err(error) => {
                        inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(ClusterError::Rejected(error));
                    }
                },
                Err(e) => {
                    inner
                        .stats
                        .transport_failures
                        .fetch_add(1, Ordering::Relaxed);
                    inner.nodes[node].up.store(false, Ordering::Relaxed);
                    failovers += 1;
                    last = e;
                }
            }
        }
        Err(ClusterError::Unavailable { attempts, last })
    }

    /// Begins one pipelined request on the tenant's home node and returns
    /// without waiting for the answer — the caller harvests it later via
    /// [`PendingSubmit::try_complete`] or [`PendingSubmit::wait`]. Many
    /// pending submissions share one multiplexed connection, so a driver
    /// can keep thousands of logical streams in flight from a handful of
    /// threads.
    ///
    /// Unlike [`ClusterClient::submit`] this does **not** fail over: the
    /// outcome (including any transport error) is reported as-is, and the
    /// caller decides whether to re-submit.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Unavailable`] when no connection to the home node
    /// could be opened; [`ClusterError::Protocol`] when the client was
    /// configured with `pipelined: false`.
    pub fn begin_submit(&self, request: &Request) -> Result<PendingSubmit, ClusterError> {
        let inner = &self.inner;
        if !inner.config.pipelined {
            return Err(ClusterError::Protocol(
                "begin_submit requires the pipelined transport".into(),
            ));
        }
        inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let node = self.route(request.tenant)[0];
        let mux = mux_for(inner, node).map_err(|last| {
            inner
                .stats
                .transport_failures
                .fetch_add(1, Ordering::Relaxed);
            ClusterError::Unavailable { attempts: 1, last }
        })?;
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let message = Message::Submit {
            seq,
            request: request.clone(),
        };
        Ok(PendingSubmit {
            node,
            seq,
            rpc: mux.begin(seq, &message),
            inner: Arc::clone(inner),
        })
    }

    /// One RPC, optionally racing a hedged duplicate on `backup`.
    fn attempt_with_hedge(
        &self,
        primary: usize,
        backup: Option<usize>,
        request: &Request,
    ) -> Result<(usize, wire::Reply), String> {
        let inner = &self.inner;
        let (Some(hedge_after), Some(backup)) = (inner.config.hedge_after, backup) else {
            return rpc_submit(inner, primary, request).map(|r| (primary, r));
        };
        let (tx, rx) = mpsc::channel();
        let settled = Arc::new(AtomicBool::new(false));
        for (delay, node) in [(None, primary), (Some(hedge_after), backup)] {
            let tx = tx.clone();
            let inner = Arc::clone(&self.inner);
            let request = request.clone();
            let settled = Arc::clone(&settled);
            std::thread::spawn(move || {
                if let Some(delay) = delay {
                    std::thread::sleep(delay);
                    // The primary came back while we slept: stand down.
                    if settled.load(Ordering::Relaxed) {
                        return;
                    }
                    inner.stats.hedges.fetch_add(1, Ordering::Relaxed);
                }
                let outcome = rpc_submit(&inner, node, request);
                settled.store(true, Ordering::Relaxed);
                let _ = tx.send((node, outcome));
            });
        }
        drop(tx);
        let mut last = String::from("hedge channel closed");
        // First success wins; the loser's result (or double execution) is
        // discarded — requests are idempotent simulator calls.
        for (node, outcome) in rx {
            match outcome {
                Ok(reply) => return Ok((node, reply)),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Pulls every node's metrics snapshot; unreachable nodes are listed,
    /// not fatal.
    ///
    /// # Errors
    ///
    /// This call itself cannot fail; the `Result` keeps the signature
    /// uniform with the submission path for callers that `?` through.
    pub fn pull_metrics(&self) -> Result<crate::fleet::FleetSnapshot, ClusterError> {
        let inner = &self.inner;
        let mut per_node = Vec::new();
        let mut unreachable = Vec::new();
        for (index, slot) in inner.nodes.iter().enumerate() {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            match rpc(inner, index, &Message::MetricsPull { seq }) {
                Ok(Message::Metrics { seq: got, snapshot }) if got == seq => {
                    per_node.push((slot.addr.clone(), snapshot));
                }
                Ok(_) | Err(_) => unreachable.push(slot.addr.clone()),
            }
        }
        Ok(crate::fleet::FleetSnapshot::merge_from(
            per_node,
            unreachable,
        ))
    }

    /// The client's own counters.
    pub fn stats(&self) -> ClientStats {
        let s = &self.inner.stats;
        ClientStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            succeeded: s.succeeded.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            transport_failures: s.transport_failures.load(Ordering::Relaxed),
            failovers: s.failovers.load(Ordering::Relaxed),
            hedges: s.hedges.load(Ordering::Relaxed),
        }
    }

    /// Per-tenant request counts grouped by home node — a quick view of
    /// how the ring spreads the tenant space.
    pub fn shard_map(&self, tenants: impl Iterator<Item = TenantId>) -> HashMap<usize, u64> {
        let mut map = HashMap::new();
        for tenant in tenants {
            *map.entry(self.route(tenant)[0]).or_insert(0) += 1;
        }
        map
    }
}

impl Drop for ClusterClient {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(health) = self.health_thread.take() {
            let _ = health.join();
        }
    }
}

/// One in-flight pipelined submission begun with
/// [`ClusterClient::begin_submit`].
pub struct PendingSubmit {
    node: usize,
    seq: u64,
    rpc: PendingRpc,
    inner: Arc<ClientInner>,
}

impl fmt::Debug for PendingSubmit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingSubmit")
            .field("node", &self.node)
            .field("seq", &self.seq)
            .finish()
    }
}

impl PendingSubmit {
    /// Index of the node this submission was sent to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The outcome, if the response (or a connection failure) already
    /// arrived. Consumes the outcome; a second call returns `None`.
    pub fn try_complete(&mut self) -> Option<Result<ClusterResponse, ClusterError>> {
        let outcome = self.rpc.try_complete()?;
        Some(settle(&self.inner, self.node, self.seq, outcome))
    }

    /// Blocks until the response arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Rejected`] for a node-side rejection,
    /// [`ClusterError::Unavailable`] for a transport failure or timeout.
    pub fn wait(self, timeout: Duration) -> Result<ClusterResponse, ClusterError> {
        let PendingSubmit {
            node,
            seq,
            rpc,
            inner,
        } = self;
        let outcome = rpc.wait(timeout);
        settle(&inner, node, seq, outcome)
    }
}

/// Maps a raw mux outcome to the public response type, updating stats.
fn settle(
    inner: &ClientInner,
    node: usize,
    seq: u64,
    outcome: Result<Message, String>,
) -> Result<ClusterResponse, ClusterError> {
    match outcome {
        Ok(Message::Reply { seq: got, reply }) if got == seq => match reply.result {
            Ok(output) => {
                inner.stats.succeeded.fetch_add(1, Ordering::Relaxed);
                Ok(ClusterResponse {
                    node,
                    output,
                    attempts: reply.attempts,
                    node_latency_us: reply.latency_us,
                    failovers: 0,
                })
            }
            Err(error) => {
                inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ClusterError::Rejected(error))
            }
        },
        Ok(other) => {
            inner
                .stats
                .transport_failures
                .fetch_add(1, Ordering::Relaxed);
            Err(ClusterError::Protocol(format!(
                "unexpected answer kind {other:?}"
            )))
        }
        Err(last) => {
            inner
                .stats
                .transport_failures
                .fetch_add(1, Ordering::Relaxed);
            inner.nodes[node].up.store(false, Ordering::Relaxed);
            Err(ClusterError::Unavailable { attempts: 1, last })
        }
    }
}

fn health_loop(inner: &Arc<ClientInner>, interval: Duration) {
    while !inner.stop.load(Ordering::SeqCst) {
        for (index, slot) in inner.nodes.iter().enumerate() {
            let nonce = inner.seq.fetch_add(1, Ordering::Relaxed);
            let alive = matches!(
                rpc(inner, index, &Message::Ping { nonce }),
                Ok(Message::Pong { nonce: n, .. }) if n == nonce
            );
            slot.up.store(alive, Ordering::Relaxed);
        }
        // Sleep in small slices so Drop never waits a full interval.
        let mut remaining = interval;
        while remaining > Duration::ZERO && !inner.stop.load(Ordering::SeqCst) {
            let slice = remaining.min(Duration::from_millis(10));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

/// Resolves a configured `host:port` string to one socket address.
fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no address"))
}

/// Picks a live multiplexed connection to `node` (round-robin), opening a
/// new one while the pool is below `conns_per_node` or every socket died.
fn mux_for(inner: &ClientInner, node: usize) -> Result<Arc<MuxConn>, String> {
    let slot = &inner.nodes[node];
    let mut muxes = slot.muxes.lock().expect("mux pool");
    muxes.retain(|m| !m.is_dead());
    if muxes.len() < inner.config.conns_per_node.max(1) {
        let opened = resolve(&slot.addr).and_then(|addr| {
            MuxConn::connect(addr, inner.config.connect_timeout)
                .map_err(|e| format!("connect {addr}: {e}"))
        });
        match opened {
            Ok(mux) => muxes.push(Arc::new(mux)),
            Err(e) if muxes.is_empty() => return Err(e),
            // Keep serving on the sockets we still have.
            Err(_) => {}
        }
    }
    let index = slot.rr.fetch_add(1, Ordering::Relaxed) as usize % muxes.len();
    Ok(Arc::clone(&muxes[index]))
}

/// The correlation id a request message expects its response to echo.
fn request_correlation(message: &Message) -> u64 {
    match message {
        Message::Submit { seq, .. } | Message::MetricsPull { seq } => *seq,
        Message::Ping { nonce } => *nonce,
        _ => 0,
    }
}

/// Checks out a warm blocking connection or opens a fresh one.
fn checkout(inner: &ClientInner, node: usize) -> Result<TcpStream, String> {
    if let Some(conn) = inner.nodes[node].conns.lock().expect("conn pool").pop() {
        return Ok(conn);
    }
    let addr = resolve(&inner.nodes[node].addr)?;
    let stream = TcpStream::connect_timeout(&addr, inner.config.connect_timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(inner.config.rpc_timeout))
        .map_err(|e| e.to_string())?;
    Ok(stream)
}

/// Returns a healthy blocking connection to the warm pool (bounded).
fn checkin(inner: &ClientInner, node: usize, conn: TcpStream) {
    let mut pool = inner.nodes[node].conns.lock().expect("conn pool");
    if pool.len() < inner.config.conns_per_node {
        pool.push(conn);
    }
}

/// One request/response exchange over the configured transport.
fn rpc(inner: &ClientInner, node: usize, message: &Message) -> Result<Message, String> {
    if inner.config.pipelined {
        let mux = mux_for(inner, node)?;
        mux.call(
            request_correlation(message),
            message,
            inner.config.rpc_timeout,
        )
    } else {
        rpc_blocking(inner, node, message)
    }
}

/// One exchange on a checked-out blocking connection. Any failure discards
/// the connection (its stream state is unknown).
fn rpc_blocking(inner: &ClientInner, node: usize, message: &Message) -> Result<Message, String> {
    let mut conn = checkout(inner, node)?;
    wire::write_message(&mut conn, message).map_err(|e| format!("send: {e}"))?;
    match wire::read_message(&mut conn) {
        Ok(answer) => {
            checkin(inner, node, conn);
            Ok(answer)
        }
        Err(RecvError::Io(e)) => Err(format!("recv: {e}")),
        Err(RecvError::Wire(e)) => Err(format!("recv protocol: {e}")),
    }
}

/// A submit RPC with correlation-id checking.
fn rpc_submit(
    inner: &ClientInner,
    node: usize,
    request: impl std::borrow::Borrow<Request>,
) -> Result<wire::Reply, String> {
    let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
    let message = Message::Submit {
        seq,
        request: request.borrow().clone(),
    };
    match rpc(inner, node, &message)? {
        Message::Reply { seq: got, reply } if got == seq => Ok(reply),
        Message::Reply { seq: got, .. } => {
            Err(format!("correlation mismatch: sent {seq}, got {got}"))
        }
        other => Err(format!("unexpected answer kind {other:?}")),
    }
}
