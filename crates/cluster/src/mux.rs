//! A multiplexed client connection: many logical request streams over one
//! socket.
//!
//! [`MuxConn`] owns a nonblocking socket and one I/O thread. Callers
//! (any number of threads) begin RPCs by queueing an encoded frame and
//! registering the request's correlation id; the I/O thread batches
//! queued frames onto the wire, reassembles inbound frames and routes
//! each response to its registered waiter by [`Message::correlation_id`].
//! Responses may return in any order — pipelining is the point.
//!
//! A dead connection (EOF, transport error, [`Message::ProtocolError`]
//! from the node) fails every pending RPC with the reason and marks the
//! mux dead so the owner can discard and reconnect. A response whose
//! correlation id is unknown is dropped: it is the late answer of an RPC
//! whose waiter already timed out.

use crate::wire::{self, Message, WireFraming};
use apim_net::Connection;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One waiter's mailbox: filled exactly once by the I/O thread.
#[derive(Default)]
struct PendingSlot {
    value: Mutex<Option<Result<Message, String>>>,
    ready: Condvar,
}

impl PendingSlot {
    fn fill(&self, outcome: Result<Message, String>) {
        let mut value = self.value.lock().expect("slot lock");
        if value.is_none() {
            *value = Some(outcome);
        }
        self.ready.notify_all();
    }

    fn try_take(&self) -> Option<Result<Message, String>> {
        self.value.lock().expect("slot lock").take()
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Result<Message, String>> {
        let deadline = Instant::now() + timeout;
        let mut value = self.value.lock().expect("slot lock");
        loop {
            if value.is_some() {
                return value.take();
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(value, deadline - now)
                .expect("slot lock");
            value = guard;
        }
    }
}

struct MuxInner {
    /// Encoded frames waiting for the I/O thread to put on the wire.
    outbound: Mutex<Vec<u8>>,
    /// Correlation id → waiting RPC.
    pending: Mutex<HashMap<u64, Arc<PendingSlot>>>,
    dead: AtomicBool,
    stop: AtomicBool,
}

impl MuxInner {
    /// Marks the mux dead and fails every pending RPC with `reason`.
    fn die(&self, reason: &str) {
        self.dead.store(true, Ordering::SeqCst);
        let waiters: Vec<Arc<PendingSlot>> = self
            .pending
            .lock()
            .expect("pending map")
            .drain()
            .map(|(_, slot)| slot)
            .collect();
        for slot in waiters {
            slot.fill(Err(reason.to_string()));
        }
    }
}

/// A handle to one in-flight RPC on a [`MuxConn`].
pub(crate) struct PendingRpc {
    seq: u64,
    slot: Arc<PendingSlot>,
    inner: Arc<MuxInner>,
}

impl PendingRpc {
    /// The response, if it already arrived (or the connection already
    /// failed). Consumes the outcome; a second call returns `None`.
    pub(crate) fn try_complete(&self) -> Option<Result<Message, String>> {
        self.slot.try_take()
    }

    /// Blocks until the response arrives or `timeout` elapses.
    pub(crate) fn wait(self, timeout: Duration) -> Result<Message, String> {
        match self.slot.wait_timeout(timeout) {
            Some(outcome) => outcome,
            None => Err(format!("rpc timeout after {timeout:?}")),
        }
    }
}

impl Drop for PendingRpc {
    fn drop(&mut self) {
        // Deregister so a late response is dropped instead of leaking the
        // slot; harmless when the response already claimed it.
        self.inner
            .pending
            .lock()
            .expect("pending map")
            .remove(&self.seq);
    }
}

/// A multiplexed, pipelined connection to one node.
pub(crate) struct MuxConn {
    inner: Arc<MuxInner>,
    io_thread: Option<JoinHandle<()>>,
}

impl MuxConn {
    /// Connects and starts the I/O thread.
    pub(crate) fn connect(addr: SocketAddr, connect_timeout: Duration) -> io::Result<MuxConn> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        let conn = Connection::new(stream)?;
        let inner = Arc::new(MuxInner {
            outbound: Mutex::new(Vec::new()),
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let io_inner = Arc::clone(&inner);
        let io_thread = std::thread::Builder::new()
            .name(format!("apim-mux-{addr}"))
            .spawn(move || io_loop(conn, &io_inner))?;
        Ok(MuxConn {
            inner,
            io_thread: Some(io_thread),
        })
    }

    /// Whether the connection has failed; a dead mux answers every new
    /// RPC with an error immediately.
    pub(crate) fn is_dead(&self) -> bool {
        self.inner.dead.load(Ordering::SeqCst)
    }

    /// Begins one RPC: queues the frame and registers `correlation` so the
    /// matching response routes back. Does not wait.
    pub(crate) fn begin(&self, correlation: u64, message: &Message) -> PendingRpc {
        let slot = Arc::new(PendingSlot::default());
        if self.is_dead() {
            slot.fill(Err("connection dead".into()));
        } else {
            self.inner
                .pending
                .lock()
                .expect("pending map")
                .insert(correlation, Arc::clone(&slot));
            self.inner
                .outbound
                .lock()
                .expect("outbound")
                .extend_from_slice(&wire::encode_frame(message));
            // The race window: the connection died between the check and
            // the registration, and the dying drain missed this slot.
            if self.is_dead() {
                self.inner.die("connection dead");
            }
        }
        PendingRpc {
            seq: correlation,
            slot,
            inner: Arc::clone(&self.inner),
        }
    }

    /// One blocking RPC: [`MuxConn::begin`] + wait.
    pub(crate) fn call(
        &self,
        correlation: u64,
        message: &Message,
        timeout: Duration,
    ) -> Result<Message, String> {
        self.begin(correlation, message).wait(timeout)
    }
}

impl Drop for MuxConn {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(io) = self.io_thread.take() {
            let _ = io.join();
        }
    }
}

/// How long the I/O thread naps when the connection is quiet.
const IDLE_NAP: Duration = Duration::from_micros(100);

fn io_loop(mut conn: Connection, inner: &Arc<MuxInner>) {
    let framing = WireFraming;
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            inner.die("client shut down");
            return;
        }
        let mut progress = false;
        // Batch every queued frame into the send buffer in one move —
        // this is where pipelining collapses N logical requests into one
        // write syscall.
        {
            let mut outbound = inner.outbound.lock().expect("outbound");
            if !outbound.is_empty() {
                conn.queue_frame(&outbound);
                outbound.clear();
                progress = true;
            }
        }
        if conn.wants_write() {
            if let Err(e) = conn.flush() {
                inner.die(&format!("send: {e}"));
                return;
            }
        }
        match conn.fill() {
            Ok(n) if n > 0 => progress = true,
            Ok(_) => {}
            Err(e) => {
                inner.die(&format!("recv: {e}"));
                return;
            }
        }
        // Demultiplex every complete response to its waiter.
        loop {
            match conn.next_frame(&framing) {
                Ok(Some(frame)) => match wire::decode_frame(frame) {
                    Ok((message, _)) => {
                        progress = true;
                        if let Message::ProtocolError { detail } = &message {
                            let reason = format!("node reported protocol error: {detail}");
                            inner.die(&reason);
                            return;
                        }
                        let waiter = message
                            .correlation_id()
                            .and_then(|id| inner.pending.lock().expect("pending map").remove(&id));
                        // No waiter: the RPC timed out and deregistered;
                        // drop the late response.
                        if let Some(slot) = waiter {
                            slot.fill(Ok(message));
                        }
                    }
                    Err(e) => {
                        inner.die(&format!("recv protocol: {e}"));
                        return;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    inner.die(&format!("recv framing: {e}"));
                    return;
                }
            }
        }
        if conn.is_closed() {
            inner.die("connection closed by node");
            return;
        }
        if !progress {
            std::thread::sleep(IDLE_NAP);
        }
    }
}
