//! Integration tests for the event-loop node transport: request
//! pipelining, structured protocol-error handling, the per-connection
//! backpressure cap, and the sustained soak driver on both transports.

use apim_cluster::loadgen::{soak, SoakConfig};
use apim_cluster::node::{Node, NodeConfig};
use apim_cluster::wire::{self, Message};
use apim_serve::{JobKind, PoolConfig, Request, ServeError, TenantId};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn echo_node(workers: usize, max_inflight: usize) -> Node {
    Node::spawn(NodeConfig {
        pool: PoolConfig {
            workers,
            queue_depth: 4096,
            ..PoolConfig::default()
        },
        max_inflight_per_conn: max_inflight,
        ..NodeConfig::default()
    })
    .expect("spawn node")
}

fn connect(node: &Node) -> TcpStream {
    let conn = TcpStream::connect(node.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    conn
}

#[test]
fn pipelined_submits_are_all_answered_whatever_the_order() {
    let node = echo_node(2, 4096);
    let mut conn = connect(&node);
    let n = 64u64;
    // All 64 submits leave in one write: the node must not require
    // request/response lockstep.
    let mut blob = Vec::new();
    for seq in 0..n {
        blob.extend_from_slice(&wire::encode_frame(&Message::Submit {
            seq,
            request: Request::new(JobKind::Echo { payload: seq * 3 }).tenant(TenantId(1)),
        }));
    }
    conn.write_all(&blob).expect("pipelined write");
    let mut seen = vec![false; usize::try_from(n).unwrap()];
    for _ in 0..n {
        match wire::read_message(&mut conn).expect("read reply") {
            Message::Reply { seq, reply } => {
                let index = usize::try_from(seq).unwrap();
                assert!(!seen[index], "duplicate reply for seq {seq}");
                seen[index] = true;
                let output = reply.result.expect("echo succeeds");
                assert_eq!(output.summary, format!("echo {}", seq * 3));
            }
            other => panic!("unexpected answer {other:?}"),
        }
    }
    assert!(seen.iter().all(|&s| s), "every pipelined request answered");
    node.shutdown();
}

#[test]
fn hostile_length_prefix_gets_a_structured_protocol_error() {
    let node = echo_node(1, 64);
    let mut conn = connect(&node);
    // A syntactically valid header whose length prefix declares ~4 GiB.
    let mut evil = Vec::new();
    evil.extend_from_slice(&wire::MAGIC);
    evil.push(wire::WIRE_VERSION);
    evil.push(3); // Ping
    evil.extend_from_slice(&[0, 0]);
    evil.extend_from_slice(&u32::MAX.to_le_bytes());
    conn.write_all(&evil).expect("write hostile frame");
    match wire::read_message(&mut conn).expect("structured goodbye") {
        Message::ProtocolError { detail } => {
            assert!(
                detail.contains("exceeds"),
                "detail names the length violation: {detail}"
            );
        }
        other => panic!("expected ProtocolError, got {other:?}"),
    }
    // And the connection is closed — no further service on a broken peer.
    assert!(wire::read_message(&mut conn).is_err());
    node.shutdown();
}

#[test]
fn garbage_magic_gets_a_structured_protocol_error() {
    let node = echo_node(1, 64);
    let mut conn = connect(&node);
    conn.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
    match wire::read_message(&mut conn).expect("structured goodbye") {
        Message::ProtocolError { detail } => {
            assert!(!detail.is_empty(), "detail is populated");
        }
        other => panic!("expected ProtocolError, got {other:?}"),
    }
    assert!(wire::read_message(&mut conn).is_err());
    node.shutdown();
}

#[test]
fn pipeline_cap_answers_overflow_with_overloaded_not_unbounded_queueing() {
    let cap = 4usize;
    let node = Node::spawn(NodeConfig {
        pool: PoolConfig {
            // One worker on real (simulator) jobs keeps the pipeline
            // occupied long enough that the cap deterministically trips.
            workers: 1,
            queue_depth: 4096,
            ..PoolConfig::default()
        },
        max_inflight_per_conn: cap,
        ..NodeConfig::default()
    })
    .expect("spawn node");
    let mut conn = connect(&node);
    let n = 32u64;
    let mut blob = Vec::new();
    for seq in 0..n {
        blob.extend_from_slice(&wire::encode_frame(&Message::Submit {
            seq,
            request: Request::new(JobKind::Multiply { a: seq, b: 3 }),
        }));
    }
    conn.write_all(&blob).expect("pipelined write");
    let (mut ok, mut overloaded) = (0u64, 0u64);
    let mut answered = vec![false; usize::try_from(n).unwrap()];
    for _ in 0..n {
        match wire::read_message(&mut conn).expect("read reply") {
            Message::Reply { seq, reply } => {
                let index = usize::try_from(seq).unwrap();
                assert!(!answered[index], "duplicate reply for seq {seq}");
                answered[index] = true;
                match reply.result {
                    Ok(_) => ok += 1,
                    Err(ServeError::Overloaded { .. }) => overloaded += 1,
                    Err(other) => panic!("unexpected rejection {other:?}"),
                }
            }
            other => panic!("unexpected answer {other:?}"),
        }
    }
    assert!(answered.iter().all(|&s| s), "every request answered");
    assert_eq!(ok + overloaded, n);
    assert!(
        u64::try_from(cap).unwrap() <= ok,
        "at least the cap's worth of requests were accepted (ok={ok})"
    );
    assert!(
        overloaded > 0,
        "the burst past the cap was shed with Overloaded (ok={ok})"
    );
    node.shutdown();
}

#[test]
fn short_soak_loses_nothing_and_transports_are_bit_identical() {
    let pipelined = soak(&SoakConfig {
        requests: 600,
        streams: 48,
        nodes: 2,
        workers: 2,
        pipelined: true,
        driver_threads: 2,
    })
    .expect("pipelined soak");
    assert!(pipelined.passed(), "pipelined soak gate:\n{pipelined}");

    let blocking = soak(&SoakConfig {
        requests: 600,
        streams: 16,
        nodes: 2,
        workers: 2,
        pipelined: false,
        driver_threads: 2,
    })
    .expect("blocking soak");
    assert!(blocking.passed(), "blocking soak gate:\n{blocking}");

    // Same request set, either transport: bit-identical result digests.
    assert_eq!(pipelined.checksum, blocking.checksum);

    // The new gauges surface through the fleet snapshot in the report.
    let text = pipelined.to_string();
    assert!(text.contains("apim_cluster_connections_open"), "{text}");
    assert!(text.contains("apim_cluster_inflight_requests"), "{text}");
}
