//! Wire-protocol robustness properties: whatever bytes arrive, the
//! decoder returns a structured [`WireError`] or a valid message — it
//! never panics, and it never reads past the buffer.

use apim_cluster::wire::{
    decode_frame, decode_header, decode_payload, encode_frame, Message, Reply, WireError,
    WireOutput, HEADER_LEN, MAGIC, MAX_PAYLOAD, WIRE_VERSION,
};
use apim_serve::{JobKind, Request, ServeError, TenantId};
use proptest::prelude::*;

/// A frame for every message kind, so truncation/corruption properties
/// cover the whole protocol surface.
fn sample_frames() -> Vec<Vec<u8>> {
    let messages = [
        Message::Submit {
            seq: 7,
            request: Request::new(JobKind::Multiply { a: 12, b: 34 }).tenant(TenantId(3)),
        },
        Message::Submit {
            seq: 8,
            request: Request::new(JobKind::Compile {
                source: "width 8\nin a\nout a + 1".into(),
            }),
        },
        Message::Reply {
            seq: 7,
            reply: Reply {
                tenant: TenantId(3),
                attempts: 1,
                latency_us: 250,
                result: Ok(WireOutput {
                    digest: 0xDEAD_BEEF,
                    summary: "product 408".into(),
                }),
            },
        },
        Message::Reply {
            seq: 9,
            reply: Reply {
                tenant: TenantId(0),
                attempts: 0,
                latency_us: 0,
                result: Err(ServeError::Overloaded { depth: 64 }),
            },
        },
        Message::Ping { nonce: 42 },
        Message::Pong {
            nonce: 42,
            workers: 4,
            queue_depth: 9,
        },
        Message::MetricsPull { seq: 11 },
        Message::Metrics {
            seq: 11,
            snapshot: apim_serve::Metrics::default().snapshot(),
        },
        Message::ProtocolError {
            detail: "client sent a server-only message kind".into(),
        },
    ];
    messages.iter().map(encode_frame).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine; reaching this line without a panic is the
        // property.
        let _ = decode_frame(&bytes);
        let _ = decode_header(&bytes);
        for kind in 0u8..=8 {
            let _ = decode_payload(kind, &bytes);
        }
    }

    #[test]
    fn truncations_of_valid_frames_error_structurally(frame_sel in 0usize..9, cut in 0usize..512) {
        let frames = sample_frames();
        let frame = &frames[frame_sel % frames.len()];
        let cut = cut % frame.len();
        match decode_frame(&frame[..cut]) {
            Err(_) => {}
            Ok((message, consumed)) => {
                // Only legal if a whole frame still fits in the prefix
                // (cannot happen for a single encoded frame).
                prop_assert!(consumed <= cut, "decoder overran the buffer");
                prop_assert!(false, "truncated frame decoded as {message:?}");
            }
        }
    }

    #[test]
    fn corrupt_headers_are_rejected(frame_sel in 0usize..9, byte in 0usize..HEADER_LEN, flip in 1u8..=255) {
        let frames = sample_frames();
        let mut frame = frames[frame_sel % frames.len()].clone();
        frame[byte] ^= flip;
        // Whatever the corruption, no panic; and corrupt magic/version
        // must always be caught by name.
        match decode_frame(&frame) {
            Ok(_) => {
                prop_assert!(byte >= 4, "corrupt magic byte {byte} decoded");
            }
            Err(WireError::BadMagic(_)) => prop_assert!(byte < 4),
            Err(WireError::UnsupportedVersion(_)) => prop_assert_eq!(byte, 4),
            Err(_) => {}
        }
    }

    #[test]
    fn garbage_payload_under_a_valid_header_errors(kind in 1u8..=7, payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(kind);
        frame.extend_from_slice(&[0, 0]);
        frame.extend_from_slice(&u32::try_from(payload.len()).unwrap().to_le_bytes());
        frame.extend_from_slice(&payload);
        // Random payloads occasionally parse (e.g. Ping is just a nonce);
        // the property is bounded, structured handling.
        if let Ok((_, consumed)) = decode_frame(&frame) {
            prop_assert_eq!(consumed, frame.len());
        }
    }
}

#[test]
fn oversized_length_is_rejected_before_any_allocation() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(WIRE_VERSION);
    frame.push(3); // Ping
    frame.extend_from_slice(&[0, 0]);
    frame.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    frame.extend_from_slice(&[0u8; 16]);
    match decode_frame(&frame) {
        Err(WireError::FrameTooLarge(_)) => {}
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}

#[test]
fn every_truncation_of_a_submit_frame_errors() {
    let frame = encode_frame(&Message::Submit {
        seq: 1,
        request: Request::new(JobKind::Mac {
            pairs: vec![(1, 2), (3, 4), (5, 6)],
        })
        .tenant(TenantId(2)),
    });
    for cut in 0..frame.len() {
        assert!(
            decode_frame(&frame[..cut]).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
    let (message, consumed) = decode_frame(&frame).expect("full frame decodes");
    assert_eq!(consumed, frame.len());
    assert!(matches!(message, Message::Submit { seq: 1, .. }));
}
