//! Frame-reassembly properties for the zero-copy decode path: however
//! TCP fragments a valid multi-frame byte stream, feeding the fragments
//! through [`apim_net::RecvBuffer`] + [`apim_cluster::wire::WireFraming`]
//! yields exactly the messages a sequential decode of the unfragmented
//! stream yields — bit-identical, none lost, none duplicated.

use apim_cluster::wire::{decode_frame, encode_frame, Message, Reply, WireFraming, WireOutput};
use apim_net::RecvBuffer;
use apim_serve::{JobKind, Request, ServeError, TenantId};
use proptest::prelude::*;

/// A small pool covering every message kind and both reply polarities.
fn message_pool() -> Vec<Message> {
    vec![
        Message::Submit {
            seq: 1,
            request: Request::new(JobKind::Echo { payload: 99 }).tenant(TenantId(7)),
        },
        Message::Submit {
            seq: 2,
            request: Request::new(JobKind::Multiply { a: 21, b: 2 }),
        },
        Message::Reply {
            seq: 1,
            reply: Reply {
                tenant: TenantId(7),
                attempts: 1,
                latency_us: 17,
                result: Ok(WireOutput {
                    digest: 0xABCD_EF01,
                    summary: "echo 99".into(),
                }),
            },
        },
        Message::Reply {
            seq: 3,
            reply: Reply {
                tenant: TenantId(0),
                attempts: 0,
                latency_us: 0,
                result: Err(ServeError::Overloaded { depth: 5 }),
            },
        },
        Message::Ping { nonce: 1234 },
        Message::Pong {
            nonce: 1234,
            workers: 2,
            queue_depth: 0,
        },
        Message::MetricsPull { seq: 4 },
        Message::Metrics {
            seq: 4,
            snapshot: apim_serve::Metrics::default().snapshot(),
        },
        Message::ProtocolError { detail: "x".into() },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_chunking_reassembles_bit_identically(
        picks in proptest::collection::vec(0usize..9, 1..12),
        cuts in proptest::collection::vec(1usize..64, 0..48),
    ) {
        let pool = message_pool();
        let stream: Vec<u8> = picks
            .iter()
            .flat_map(|&i| encode_frame(&pool[i % pool.len()]))
            .collect();

        // Reference: decode the unfragmented stream sequentially.
        let mut expected = Vec::new();
        let mut offset = 0;
        while offset < stream.len() {
            let (message, consumed) = decode_frame(&stream[offset..]).expect("valid stream");
            expected.push(message);
            offset += consumed;
        }

        // Under test: the same bytes split at arbitrary points, fed
        // fragment by fragment through the node's receive path.
        let framing = WireFraming;
        let mut buffer = RecvBuffer::new();
        let mut got = Vec::new();
        let mut position = 0;
        let mut cut = cuts.iter();
        while position < stream.len() {
            let step = cut
                .next()
                .copied()
                .unwrap_or(stream.len() - position)
                .min(stream.len() - position);
            buffer.push_bytes(&stream[position..position + step]);
            position += step;
            while let Some(frame) = buffer.next_frame(&framing).expect("valid fragments") {
                got.push(decode_frame(frame).expect("whole frame").0);
            }
        }
        prop_assert_eq!(got, expected);
    }
}
