//! Integration tests for the loopback cluster: bit-identical results
//! versus a single pool, and zero lost requests when a node dies
//! mid-run.

use apim_cluster::loadgen::{smoke, SmokeConfig};
use apim_cluster::{ClusterError, LoopbackCluster};
use apim_serve::loadgen::{output_digest, request_mix};
use apim_serve::{JobKind, Pool, PoolConfig, Request, TenantId};

fn deep_pool(workers: usize, depth: usize) -> PoolConfig {
    PoolConfig {
        workers,
        queue_depth: depth,
        ..PoolConfig::default()
    }
}

/// The mix plus one compile request, so every `JobKind` crosses the wire.
fn test_requests(count: u64) -> Vec<Request> {
    let mut requests = request_mix(11, count);
    requests.push(
        Request::new(JobKind::Compile {
            source: "width 16\nin a\nout a * 3 + 1".into(),
        })
        .tenant(TenantId(5)),
    );
    requests
}

#[test]
fn three_node_cluster_is_bit_identical_to_a_single_pool() {
    let requests = test_requests(40);
    let cluster = LoopbackCluster::spawn(3, &deep_pool(2, requests.len())).expect("spawn");
    let client = cluster.client().expect("client");

    let mut cluster_digests = Vec::with_capacity(requests.len());
    for request in &requests {
        let response = client.submit(request).expect("cluster submit");
        cluster_digests.push(response.output.digest);
    }

    let pool = Pool::new(deep_pool(2, requests.len())).expect("pool");
    for (index, request) in requests.iter().enumerate() {
        let response = pool.submit(request.clone()).expect("pool submit").wait();
        let output = response.result.expect("pool result");
        assert_eq!(
            cluster_digests[index],
            output_digest(&output),
            "request {index} differs between cluster and single pool"
        );
    }
    pool.shutdown();

    // Sharding spread the work: with 40+ requests over many tenants,
    // more than one node must have seen traffic.
    let fleet = client.pull_metrics().expect("fleet");
    let busy = fleet
        .per_node
        .iter()
        .filter(|(_, s)| s.completed > 0)
        .count();
    assert!(busy >= 2, "expected >=2 busy nodes, got {busy}");
    cluster.shutdown();
}

#[test]
fn tenant_routing_is_stable_and_spread() {
    let cluster = LoopbackCluster::spawn(3, &deep_pool(1, 8)).expect("spawn");
    let client = cluster.client().expect("client");
    let mut homes = std::collections::HashSet::new();
    for tenant in 0..32u16 {
        let order = client.route(TenantId(tenant));
        assert_eq!(
            order,
            client.route(TenantId(tenant)),
            "routing must be stable"
        );
        assert_eq!(order.len(), 3, "ring walk must cover all distinct nodes");
        homes.insert(order[0]);
    }
    assert!(homes.len() >= 2, "32 tenants should map to >=2 home nodes");
    cluster.shutdown();
}

#[test]
fn killing_a_node_mid_run_loses_nothing() {
    let report = smoke(&SmokeConfig {
        nodes: 3,
        requests: 120,
        seed: 3,
        workers: 2,
        kill_after: Some(30),
    })
    .expect("smoke");
    assert!(
        report.passed(),
        "smoke gate failed: {} lost, {} rejected of {} offered\n{report}",
        report.loadgen.lost,
        report.loadgen.rejected,
        report.loadgen.offered
    );
    assert!(report.killed_after >= 30, "kill should have fired mid-run");
    // The survivors' merged snapshot still covers >=2 nodes and carries
    // real latency percentiles.
    let fleet = &report.loadgen.fleet;
    assert!(fleet.per_node.len() >= 2, "expected >=2 reachable nodes");
    assert!(fleet.merged.latency_p50_us.is_some());
    assert!(fleet.merged.latency_p99_us.is_some());
    // The killed node's counters die with it, so the survivors' merge can
    // undercount — but never overcount — the client-observed successes.
    assert!(fleet.merged.completed > 0);
    assert!(fleet.merged.completed <= report.loadgen.succeeded);
}

#[test]
fn admission_rejections_do_not_fail_over() {
    // One worker, queue depth 1, and a tenant hammering it: overload
    // rejections must come back as `Rejected`, not be retried onto other
    // nodes (which would defeat per-tenant quotas).
    let cluster = LoopbackCluster::spawn(2, &deep_pool(1, 1)).expect("spawn");
    let client = cluster.client().expect("client");
    let requests: Vec<Request> = (0..64)
        .map(|_| {
            Request::new(JobKind::Mac {
                pairs: vec![(3, 5); 64],
            })
            .tenant(TenantId(1))
        })
        .collect();
    let mut rejected = 0u32;
    std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|request| scope.spawn(|| client.submit(request)))
            .collect();
        for handle in handles {
            if let Err(error) = handle.join().expect("submitter") {
                match error {
                    ClusterError::Rejected(_) => rejected += 1,
                    other => panic!("expected admission rejection, got {other}"),
                }
            }
        }
    });
    assert!(rejected > 0, "overload should reject some of 64 requests");
    assert_eq!(
        client.stats().failovers,
        0,
        "rejections must not trigger failover"
    );
    cluster.shutdown();
}
