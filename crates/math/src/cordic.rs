//! Branch-free CORDIC rotation for sin/cos.
//!
//! Rotation-mode CORDIC drives the residual angle `z` to zero through
//! `iters` micro-rotations by `±atan(2^-i)`. The rotation direction
//! `d = sign(z)` is data-dependent, which a straight-line crossbar
//! microprogram cannot branch on; instead the sign is extracted as a
//! `{0, 1}` flag `s` (arithmetic shift of `z` by `width-1` yields the
//! sign mask, negation turns it into the flag) and every conditional
//! add/subtract becomes an unconditional pair:
//!
//! ```text
//! x' = (x - y·2^-i) + 2·s·(y·2^-i)      (i.e. x ∓ y·2^-i)
//! y' = (y + x·2^-i) - 2·s·(x·2^-i)
//! z' = (z - atan_i) + s·(2·atan_i)
//! ```
//!
//! The multiplications by `s` are exact single-partial-product products
//! (`s ∈ {0, 1}`), and the multiplications by `2·atan_i` place the
//! constant in the multiplier seat, so the in-crossbar cost stays a
//! handful of adder passes per iteration.
//!
//! Domain: `|angle| ≤ π/2` in Q-`frac`. The intermediate `(x, y)` vector
//! magnitude reaches the CORDIC gain `Π√(1+2^-2i) ≈ 1.647` and `z`
//! excursions reach `±3.2`, which is why [`crate::validate`] caps
//! `frac ≤ width - 3` (two integer bits plus sign).

use crate::consts::{atan_q, gain_q};
use crate::ops::FxOps;

/// The pair of CORDIC outputs: `sin` is the final `y`, `cos` the final `x`.
#[derive(Debug, Clone, Copy)]
pub struct SinCos<V> {
    /// `sin(angle)` in Q-`frac`.
    pub sin: V,
    /// `cos(angle)` in Q-`frac`.
    pub cos: V,
}

/// Emits `iters` rotation-mode CORDIC iterations computing
/// `sin`/`cos` of the Q-`frac` `angle` (domain `[-π/2, π/2]`).
///
/// The caller guarantees `1 ≤ iters ≤ min(width, 31)` and
/// `1 ≤ frac ≤ width - 3` (see [`crate::validate`]).
pub fn cordic_sincos<O: FxOps>(ops: &mut O, angle: O::V, frac: u32, iters: u32) -> SinCos<O::V> {
    let width = ops.width();
    let zero = ops.constant(0);
    // Pre-scaled start vector (K, 0) absorbs the CORDIC gain.
    let mut x = ops.constant(gain_q(frac));
    let mut y = zero;
    let mut z = angle;
    for i in 0..iters {
        // s = 1 iff z < 0: the arithmetic shift produces the sign mask
        // (0 or all-ones), negation turns all-ones into +1.
        let sign_mask = ops.shr(z, width - 1);
        let s = ops.sub(zero, sign_mask);
        let xi = if i == 0 { x } else { ops.shr(x, i) };
        let yi = if i == 0 { y } else { ops.shr(y, i) };
        // x' = (x - yi) + 2·(yi·s)
        let x_sub = ops.sub(x, yi);
        let ys = ops.mul(yi, s);
        let ys2 = ops.shl(ys, 1);
        let x_next = ops.add(x_sub, ys2);
        // y' = (y + xi) - 2·(xi·s)
        let y_add = ops.add(y, xi);
        let xs = ops.mul(xi, s);
        let xs2 = ops.shl(xs, 1);
        let y_next = ops.sub(y_add, xs2);
        // z' = (z - atan_i) + s·(2·atan_i)
        let a = atan_q(i as usize, frac);
        let ac = ops.constant(a);
        let z_sub = ops.sub(z, ac);
        let a2c = ops.constant(2 * a);
        let za = ops.mul(s, a2c);
        let z_next = ops.add(z_sub, za);
        x = x_next;
        y = y_next;
        z = z_next;
    }
    SinCos { sin: y, cos: x }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::half_pi_q;
    use crate::ops::{from_pattern, to_pattern, IntEval};

    fn sincos_i64(width: u32, frac: u32, iters: u32, angle: i64) -> (i64, i64) {
        let mut ops = IntEval::new(width).unwrap();
        let a = to_pattern(angle, width);
        let out = cordic_sincos(&mut ops, a, frac, iters);
        (from_pattern(out.sin, width), from_pattern(out.cos, width))
    }

    #[test]
    fn zero_angle_gives_unit_cos_zero_sin() {
        // 14 iterations at Q12: residual well under 8 ulp.
        let (sin, cos) = sincos_i64(16, 12, 14, 0);
        assert!(sin.abs() <= 8, "sin(0) = {sin}");
        assert!((cos - (1 << 12)).abs() <= 8, "cos(0) = {cos}");
    }

    #[test]
    fn quarter_turn_endpoints() {
        let hpi = half_pi_q(12);
        let (sin, cos) = sincos_i64(16, 12, 14, hpi);
        assert!((sin - (1 << 12)).abs() <= 8, "sin(π/2) = {sin}");
        assert!(cos.abs() <= 8, "cos(π/2) = {cos}");
        let (sin_n, cos_n) = sincos_i64(16, 12, 14, -hpi);
        assert!((sin_n + (1 << 12)).abs() <= 8, "sin(-π/2) = {sin_n}");
        assert!(cos_n.abs() <= 8, "cos(-π/2) = {cos_n}");
    }

    #[test]
    fn pythagorean_identity_holds_within_quantization() {
        let hpi = half_pi_q(13);
        for step in -8i64..=8 {
            let angle = hpi * step / 8;
            let (sin, cos) = sincos_i64(18, 13, 15, angle);
            let norm = sin * sin + cos * cos;
            let unit = 1i64 << 26;
            assert!(
                (norm - unit).abs() < unit / 64,
                "|sin²+cos² - 1| too large at angle {angle}: {norm} vs {unit}"
            );
        }
    }

    #[test]
    fn more_iterations_tighten_the_result() {
        // sin(π/6) = 0.5 exactly; error at 4 iterations must strictly
        // dominate error at 14.
        let angle = half_pi_q(12) / 3;
        let exact = 1i64 << 11;
        let (coarse, _) = sincos_i64(16, 12, 4, angle);
        let (fine, _) = sincos_i64(16, 12, 14, angle);
        assert!((fine - exact).abs() < (coarse - exact).abs());
        assert!((fine - exact).abs() <= 8);
    }
}
