//! Fixed-point transcendental microkernels for APIM.
//!
//! The compiler's DAG language only knows add/sub/mul/MAC/shift — the
//! primitives §3 of the paper builds from MAGIC NOR blocks. Following
//! TransPimLib's approach for instruction-constrained PIM systems, this
//! crate expresses `sin`, `cos` and `sqrt` *in terms of those primitives*:
//!
//! * **CORDIC rotation** for sin/cos — each iteration is two shifted
//!   add/subs plus a data-dependent rotation direction, realized
//!   branch-free as a sign-mask select (`d = 1 - 2·s` with
//!   `s = (z >> (w-1)) ∈ {0, 1}` after negation).
//! * **Restoring integer square root** — one conditional subtract per
//!   result bit, the condition again a sign-mask select.
//! * **Table interpolation (LUT)** — piecewise-linear segments selected by
//!   a chain of `{0,1}` comparison indicators, the cheaper/lower-precision
//!   alternative (segment tables preload into data rows).
//!
//! Every kernel is written once, generically over the [`FxOps`] op-builder
//! trait. Instantiated with [`IntEval`] it *is* the pure-integer reference
//! model; instantiated with `apim-compile`'s DAG builder it *is* the
//! expansion into verified crossbar primitives. Bit-identity between the
//! two is therefore structural, not tested-for: both run the same
//! instruction sequence over the same `width`-bit two's-complement
//! semantics.
//!
//! No `f64` appears anywhere in the kernel or table-generation paths —
//! trigonometric constants are hard-coded Q45 integers
//! ([`consts::ATAN_Q45`]) and LUT tables are produced by the integer
//! CORDIC/isqrt themselves, so compiled programs are free of host
//! floating point end to end. `f64` exists only in [`reference`], the
//! ground-truth oracle used by tests, benchmarks and the quality harness.

#![deny(missing_docs)]

pub mod consts;
pub mod cordic;
pub mod lut;
pub mod ops;
pub mod reference;
pub mod sqrt;

pub use cordic::{cordic_sincos, SinCos};
pub use lut::{lut_interpolate, lut_spec, max_log2_segments, trig_value_q, LutSpec};
pub use ops::{from_pattern, to_pattern, FxOps, IntEval};
pub use sqrt::{isqrt_bits, isqrt_u64, restoring_isqrt, sqrt_nr_q};

use std::fmt;

/// Which transcendental function a [`MathSpec`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFn {
    /// `sin(x)` of a Q-`frac` angle in `[-π/2, π/2]`, Q-`frac` result.
    Sin,
    /// `cos(x)` of a Q-`frac` angle in `[-π/2, π/2]`, Q-`frac` result.
    Cos,
    /// `⌊√x⌋` of an unsigned integer `x < 2^(width-1)`.
    Sqrt,
}

impl fmt::Display for MathFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathFn::Sin => write!(f, "sin"),
            MathFn::Cos => write!(f, "cos"),
            MathFn::Sqrt => write!(f, "sqrt"),
        }
    }
}

/// The algorithm and its precision knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathMode {
    /// Iterative rotation (trig) or restoring bit recurrence (sqrt);
    /// `iters` is the iteration count — more iterations, tighter error.
    Cordic {
        /// Iterations (trig: `1..=min(width, 31)`; sqrt: `1..=isqrt_bits`).
        iters: u32,
    },
    /// Piecewise-linear table interpolation over `2^log2_segments`
    /// uniform segments — cheaper, lower precision.
    Lut {
        /// Log₂ of the segment count, `1..=6`.
        log2_segments: u32,
    },
}

impl fmt::Display for MathMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathMode::Cordic { iters } => write!(f, "cordic {iters}"),
            MathMode::Lut { log2_segments } => write!(f, "lut {log2_segments}"),
        }
    }
}

/// A fully-specified transcendental microkernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MathSpec {
    /// The function.
    pub func: MathFn,
    /// Algorithm and precision knob.
    pub mode: MathMode,
    /// Fraction bits of the Q-format (trig only; must be 0 for sqrt).
    pub frac: u32,
}

impl fmt::Display for MathSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} frac {}]", self.func, self.mode, self.frac)
    }
}

/// Why a [`MathSpec`] was rejected for a given width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MathError {
    /// Word width outside the supported `4..=64`.
    InvalidWidth(u32),
    /// Fraction bits outside the legal range for the function/width.
    InvalidFrac {
        /// Offending fraction bits.
        frac: u32,
        /// Inclusive maximum for this function and width.
        max: u32,
    },
    /// CORDIC iteration count outside the legal range.
    InvalidIters {
        /// Offending iteration count.
        iters: u32,
        /// Inclusive maximum for this function and width.
        max: u32,
    },
    /// LUT segment exponent outside the legal range.
    InvalidSegments {
        /// Offending `log2_segments`.
        log2_segments: u32,
        /// Inclusive maximum for this function and width.
        max: u32,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::InvalidWidth(w) => write!(f, "width {w} outside supported 4..=64"),
            MathError::InvalidFrac { frac, max } => {
                write!(f, "fraction bits {frac} outside 1..={max}")
            }
            MathError::InvalidIters { iters, max } => {
                write!(f, "cordic iterations {iters} outside 1..={max}")
            }
            MathError::InvalidSegments { log2_segments, max } => {
                write!(f, "lut log2 segments {log2_segments} outside 1..={max}")
            }
        }
    }
}

impl std::error::Error for MathError {}

/// Inclusive CORDIC iteration maximum for `func` at `width`.
pub fn max_iters(func: MathFn, width: u32) -> u32 {
    match func {
        MathFn::Sin | MathFn::Cos => width.min(consts::ATAN_Q45.len() as u32),
        MathFn::Sqrt => isqrt_bits(width),
    }
}

/// Validates `spec` against `width`-bit words.
///
/// Trig functions need `1 ≤ frac ≤ width - 3` (two integer bits plus the
/// sign: intermediate CORDIC state reaches ±2.4 and `z` excursions ±3.2).
/// Sqrt is a pure-integer kernel and requires `frac == 0`.
///
/// # Errors
///
/// A [`MathError`] naming the offending parameter and its legal range.
pub fn validate(width: u32, spec: &MathSpec) -> Result<(), MathError> {
    if !(4..=64).contains(&width) {
        return Err(MathError::InvalidWidth(width));
    }
    match spec.func {
        MathFn::Sin | MathFn::Cos => {
            let max = width - 3;
            if spec.frac == 0 || spec.frac > max {
                return Err(MathError::InvalidFrac {
                    frac: spec.frac,
                    max,
                });
            }
        }
        MathFn::Sqrt => {
            if spec.frac != 0 {
                return Err(MathError::InvalidFrac {
                    frac: spec.frac,
                    max: 0,
                });
            }
        }
    }
    match spec.mode {
        MathMode::Cordic { iters } => {
            let max = max_iters(spec.func, width);
            if iters == 0 || iters > max {
                return Err(MathError::InvalidIters { iters, max });
            }
        }
        MathMode::Lut { log2_segments } => {
            let max = lut::max_log2_segments(spec.func, width, spec.frac);
            if log2_segments == 0 || log2_segments > max {
                return Err(MathError::InvalidSegments { log2_segments, max });
            }
        }
    }
    Ok(())
}

/// The default spec for `func` at `width`: CORDIC with enough iterations
/// to drive the residual below the Q-format quantization floor (capped at
/// 16 for trig), fraction bits at the headroom maximum `width - 3`.
pub fn default_spec(func: MathFn, width: u32) -> MathSpec {
    match func {
        MathFn::Sin | MathFn::Cos => MathSpec {
            func,
            mode: MathMode::Cordic {
                iters: (width - 3).clamp(1, 16).min(max_iters(func, width)),
            },
            frac: width - 3,
        },
        MathFn::Sqrt => MathSpec {
            func,
            mode: MathMode::Cordic {
                iters: isqrt_bits(width),
            },
            frac: 0,
        },
    }
}

/// Emits the microkernel for `spec` through `ops`, returning the result
/// value. The spec must be valid for `ops.width()` (see [`validate`]);
/// kernels assume it and an invalid spec may panic.
pub fn build<O: FxOps>(ops: &mut O, x: O::V, spec: &MathSpec) -> O::V {
    debug_assert!(validate(ops.width(), spec).is_ok());
    match (spec.func, spec.mode) {
        (MathFn::Sin, MathMode::Cordic { iters }) => cordic_sincos(ops, x, spec.frac, iters).sin,
        (MathFn::Cos, MathMode::Cordic { iters }) => cordic_sincos(ops, x, spec.frac, iters).cos,
        (MathFn::Sqrt, MathMode::Cordic { iters }) => restoring_isqrt(ops, x, iters),
        (_, MathMode::Lut { log2_segments }) => {
            let table = lut_spec(spec.func, ops.width(), spec.frac, log2_segments);
            lut_interpolate(ops, x, &table)
        }
    }
}

/// Evaluates `spec` on the `width`-bit input pattern `x` with the
/// pure-integer reference evaluator — the semantic ground truth the
/// compiled expansion matches bit for bit (same generic kernel, same
/// two's-complement ops).
///
/// # Errors
///
/// [`MathError`] when the spec is invalid for `width`.
pub fn eval(width: u32, spec: &MathSpec, x: u64) -> Result<u64, MathError> {
    validate(width, spec)?;
    let mut ops = IntEval::new(width)?;
    let xin = x & ops.mask();
    Ok(build(&mut ops, xin, spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_parameters() {
        let sin8 = default_spec(MathFn::Sin, 8);
        assert!(validate(8, &sin8).is_ok());
        assert!(matches!(
            validate(3, &sin8),
            Err(MathError::InvalidWidth(3))
        ));
        let bad_frac = MathSpec { frac: 6, ..sin8 };
        assert!(matches!(
            validate(8, &bad_frac),
            Err(MathError::InvalidFrac { frac: 6, max: 5 })
        ));
        let bad_iters = MathSpec {
            mode: MathMode::Cordic { iters: 40 },
            ..sin8
        };
        assert!(matches!(
            validate(8, &bad_iters),
            Err(MathError::InvalidIters { iters: 40, .. })
        ));
        let sqrt_frac = MathSpec {
            func: MathFn::Sqrt,
            mode: MathMode::Cordic { iters: 2 },
            frac: 3,
        };
        assert!(matches!(
            validate(8, &sqrt_frac),
            Err(MathError::InvalidFrac { frac: 3, max: 0 })
        ));
    }

    #[test]
    fn default_specs_are_valid_across_widths() {
        for width in 4..=64 {
            for func in [MathFn::Sin, MathFn::Cos, MathFn::Sqrt] {
                let spec = default_spec(func, width);
                assert!(validate(width, &spec).is_ok(), "{func} at {width}");
            }
        }
    }

    #[test]
    fn eval_masks_to_width() {
        let spec = default_spec(MathFn::Sqrt, 16);
        let y = eval(16, &spec, 10_000).unwrap();
        assert_eq!(y, 100);
    }
}
