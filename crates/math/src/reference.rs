//! Floating-point ground truth, domain sampling and error metrics.
//!
//! This module is the *only* place `f64` appears in the crate. The
//! kernels and their tables are pure integer end to end; the oracle here
//! exists to *measure* them — tests, benchmarks, the CLI's error report
//! and the quality harness all compare compiled results against these
//! references, they never feed them into a program.

use crate::ops::from_pattern;
use crate::{eval, MathError, MathFn, MathSpec};

/// `sin`/`cos`/`√` in real units — the ideal the fixed-point kernels
/// approximate.
pub fn truth(func: MathFn, x: f64) -> f64 {
    match func {
        MathFn::Sin => x.sin(),
        MathFn::Cos => x.cos(),
        MathFn::Sqrt => x.sqrt(),
    }
}

/// Converts an input bit pattern to real units: signed Q-`frac` for trig,
/// unsigned integer for sqrt.
pub fn input_to_f64(func: MathFn, width: u32, frac: u32, pattern: u64) -> f64 {
    match func {
        MathFn::Sin | MathFn::Cos => from_pattern(pattern, width) as f64 / (frac as f64).exp2(),
        MathFn::Sqrt => pattern as f64,
    }
}

/// Converts an output bit pattern to real units (signed Q-`frac`).
pub fn output_to_f64(width: u32, frac: u32, pattern: u64) -> f64 {
    from_pattern(pattern, width) as f64 / (frac as f64).exp2()
}

/// The function's full legal input domain at this width/format, as
/// `n` evenly spaced bit patterns (endpoints included).
pub fn domain_samples(func: MathFn, width: u32, frac: u32, n: usize) -> Vec<u64> {
    let (lo, hi): (i64, i64) = match func {
        MathFn::Sin | MathFn::Cos => {
            let hpi = crate::consts::half_pi_q(frac);
            (-hpi, hpi)
        }
        MathFn::Sqrt => (0, ((1u64 << (width - 1)) - 1) as i64),
    };
    let n = n.max(2);
    (0..n)
        .map(|j| {
            let v = lo + ((i128::from(hi - lo) * j as i128) / (n as i128 - 1)) as i64;
            crate::ops::to_pattern(v, width)
        })
        .collect()
}

/// Aggregate error of a kernel against the oracle over a sample set.
#[derive(Debug, Clone, Copy)]
pub struct ErrorStats {
    /// Largest absolute error, real units.
    pub max_abs: f64,
    /// Largest floored relative error (denominator never below
    /// one tenth of the function's output scale).
    pub max_rel: f64,
    /// Mean floored relative error — the MRE the acceptance gates bound.
    pub mean_rel: f64,
}

/// The denominator floor used for relative error: a tenth of the output
/// scale (1 for trig, `√(2^(width-1))` for sqrt). Without the floor,
/// relative error diverges where the true value passes through zero.
pub fn rel_floor(func: MathFn, width: u32) -> f64 {
    match func {
        MathFn::Sin | MathFn::Cos => 0.1,
        MathFn::Sqrt => 0.1 * (((width - 1) as f64).exp2()).sqrt(),
    }
}

/// Computes [`ErrorStats`] from `(got, truth)` pairs in real units.
pub fn error_stats(pairs: &[(f64, f64)], floor: f64) -> ErrorStats {
    let mut max_abs = 0f64;
    let mut max_rel = 0f64;
    let mut sum_rel = 0f64;
    for &(got, want) in pairs {
        let abs = (got - want).abs();
        let rel = abs / want.abs().max(floor);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
        sum_rel += rel;
    }
    ErrorStats {
        max_abs,
        max_rel,
        mean_rel: sum_rel / pairs.len().max(1) as f64,
    }
}

/// Runs the integer reference evaluator for `spec` over `n` evenly
/// spaced domain samples and scores it against the oracle.
///
/// # Errors
///
/// [`MathError`] when the spec is invalid for `width`.
pub fn measure(width: u32, spec: &MathSpec, n: usize) -> Result<ErrorStats, MathError> {
    crate::validate(width, spec)?;
    let pairs: Vec<(f64, f64)> = domain_samples(spec.func, width, spec.frac, n)
        .into_iter()
        .map(|p| {
            let y = eval(width, spec, p).expect("validated above");
            let x = input_to_f64(spec.func, width, spec.frac, p);
            (output_to_f64(width, spec.frac, y), truth(spec.func, x))
        })
        .collect();
    Ok(error_stats(&pairs, rel_floor(spec.func, width)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{default_spec, MathMode};

    #[test]
    fn default_cordic_specs_beat_one_percent_at_width_16() {
        for func in [MathFn::Sin, MathFn::Cos, MathFn::Sqrt] {
            let spec = default_spec(func, 16);
            let stats = measure(16, &spec, 257).unwrap();
            assert!(
                stats.mean_rel < 0.01,
                "{func}: mean rel {:.4}",
                stats.mean_rel
            );
            // Floor-sqrt truncation alone reaches ~1 ulp just below a
            // square, ≈ 5.4% relative at the width-16 floor boundary.
            assert!(stats.max_rel < 0.08, "{func}: max rel {:.4}", stats.max_rel);
        }
    }

    #[test]
    fn lut_mode_is_coarser_but_bounded() {
        for func in [MathFn::Sin, MathFn::Cos] {
            let spec = MathSpec {
                func,
                mode: MathMode::Lut { log2_segments: 3 },
                frac: 13,
            };
            let stats = measure(16, &spec, 257).unwrap();
            assert!(
                stats.mean_rel < 0.05,
                "{func}: mean rel {:.4}",
                stats.mean_rel
            );
        }
    }

    #[test]
    fn samples_cover_the_domain_endpoints() {
        let s = domain_samples(MathFn::Sqrt, 16, 0, 5);
        assert_eq!(s[0], 0);
        assert_eq!(*s.last().unwrap(), (1 << 15) - 1);
    }
}
