//! Integer square roots: the restoring bit recurrence (for in-crossbar
//! expansion) and host-side helpers.
//!
//! The in-crossbar kernel is the classical *restoring* digit recurrence:
//! one candidate subtract per result bit, highest bit first. Setting bit
//! `i` of the partial root `res` costs `t = 2·res·2^i + 4^i`
//! (`= (res + 2^i)² - res²`) out of the remaining radicand, so each step
//! compares `x ≥ t` and conditionally commits. The comparison is the
//! same sign-flag trick as CORDIC's rotation direction: `c = 1 + ((x - t)
//! >> (width-1))` is `1` when `x ≥ t` and `0` otherwise, and the commit
//! becomes the unconditional pair `x ← x - t·c`, `res ← res + c·2^i`.
//!
//! Domain: `0 ≤ x < 2^(width-1)` (unsigned, sign bit clear — the sign
//! comparison trick needs the headroom). With fewer than the full
//! [`isqrt_bits`] iterations the low result bits stay zero: a truncated
//! root with error below `2^(bits - iters)`.

use crate::ops::FxOps;

/// Result bits of `⌊√x⌋` for `x < 2^(width-1)`: `⌈(width-1)/2⌉`.
pub fn isqrt_bits(width: u32) -> u32 {
    (width - 1).div_ceil(2)
}

/// Host-side exact `⌊√x⌋` on `u64` — pure integer (binary restoring),
/// used for LUT table generation and as a test oracle.
pub fn isqrt_u64(x: u64) -> u64 {
    if x == 0 {
        return 0;
    }
    // Highest power of four not exceeding x.
    let mut bit = 1u64 << ((63 - x.leading_zeros()) & !1);
    let mut rem = x;
    let mut res = 0u64;
    while bit != 0 {
        if rem >= res + bit {
            rem -= res + bit;
            res = (res >> 1) + bit;
        } else {
            res >>= 1;
        }
        bit >>= 2;
    }
    res
}

/// Emits `iters` restoring-recurrence steps computing the truncated
/// `⌊√x⌋` of the unsigned input `x < 2^(width-1)`.
///
/// The caller guarantees `1 ≤ iters ≤ isqrt_bits(width)` (see
/// [`crate::validate`]). Full `iters` gives the exact floor root; fewer
/// leave the low `isqrt_bits - iters` result bits zero.
pub fn restoring_isqrt<O: FxOps>(ops: &mut O, x: O::V, iters: u32) -> O::V {
    let width = ops.width();
    let bits = isqrt_bits(width);
    let one = ops.constant(1);
    let mut rem = x;
    let mut res = ops.constant(0);
    for step in 0..iters {
        let i = bits - 1 - step;
        // Candidate cost t = 2·res·2^i + 4^i; at the first step res = 0,
        // so t is the bare power-of-four constant.
        let pow4 = ops.constant(1i64 << (2 * i));
        let t = if step == 0 {
            pow4
        } else {
            let shifted = ops.shl(res, i + 1);
            ops.add(shifted, pow4)
        };
        // c = 1 iff rem ≥ t (both below 2^(width-1), so the difference's
        // sign bit is trustworthy).
        let diff = ops.sub(rem, t);
        let sign_mask = ops.shr(diff, width - 1);
        let c = ops.add(one, sign_mask);
        // rem ← rem - t·c; res ← res + c·2^i.
        let tc = ops.mul(t, c);
        rem = ops.sub(rem, tc);
        let inc = if i == 0 { c } else { ops.shl(c, i) };
        res = ops.add(res, inc);
    }
    res
}

/// Division-free Newton–Raphson fixed-point square root, generic over the
/// arithmetic backend — the single shared implementation behind the
/// workloads crate's `sqrt_fx` (§4.1's "approximated by these two
/// functions").
///
/// `x` is Q-`shift` and non-positive inputs return 0. Internally the
/// reciprocal-root estimate `z` is kept at `shift + 4` fraction bits and
/// refined by `z ← z·(3 - x·z²)/2`; the result is `x·z` renormalized to
/// Q-`shift`. `mul`/`sub` run every multiply and subtract through the
/// caller's context, so an instrumented or approximate backend sees
/// exactly the operations it would have seen from a hand-inlined copy.
pub fn sqrt_nr_q<C>(
    x: i32,
    shift: u32,
    iterations: u32,
    ctx: &mut C,
    mul: impl Fn(&mut C, i32, i32) -> i64,
    sub: impl Fn(&mut C, i64, i64) -> i64,
) -> i32 {
    if x <= 0 {
        return 0;
    }
    let zshift = shift + 4;
    // Power-of-two seed z0 = 2^(-⌈log2(v)/2⌉): guarantees x·z0² ≤ 2 < 3,
    // inside Newton's convergence basin.
    let e = 31 - x.leading_zeros() as i32 - i32::try_from(shift).expect("small shift");
    let half_up = if e >= 0 { (e + 1) / 2 } else { -((-e) / 2) };
    let mut z: i32 = 1 << (i32::try_from(zshift).expect("small shift") - half_up).clamp(1, 30);
    let three = 3i64 << shift;
    for _ in 0..iterations {
        // v·z at z's precision (precise: the product is O(√v)), then
        // v·z² back at Q-`shift`.
        let xz = (mul(ctx, x, z) >> shift) as i32;
        let xz2 = (mul(ctx, xz, z) >> (2 * zshift - shift)) as i32;
        // t = 3 - v·z²; z ← z·t/2 (the extra shift bit is Newton's /2).
        let t = sub(ctx, three, i64::from(xz2)) as i32;
        z = (mul(ctx, z, t) >> (shift + 1)) as i32;
        if z <= 0 {
            z = 1;
        }
    }
    // √x = v·z, renormalized from z's precision to Q-`shift`.
    ((mul(ctx, x, z) >> shift) >> (zshift - shift)) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::IntEval;

    #[test]
    fn host_isqrt_is_exact() {
        for x in 0u64..2000 {
            let r = isqrt_u64(x);
            assert!(r * r <= x && (r + 1) * (r + 1) > x, "isqrt({x}) = {r}");
        }
        assert_eq!(isqrt_u64(u64::MAX), (1u64 << 32) - 1);
    }

    #[test]
    fn restoring_matches_host_isqrt_at_full_iterations() {
        for width in [8u32, 12, 16, 17] {
            let bits = isqrt_bits(width);
            let hi = 1u64 << (width - 1);
            for x in (0..hi).step_by((hi / 257).max(1) as usize) {
                let mut ops = IntEval::new(width).unwrap();
                let got = restoring_isqrt(&mut ops, x, bits);
                assert_eq!(got, isqrt_u64(x), "width {width}, x {x}");
            }
        }
    }

    #[test]
    fn truncated_iterations_zero_low_bits() {
        let mut ops = IntEval::new(16).unwrap();
        let full = restoring_isqrt(&mut ops, 30_000, isqrt_bits(16));
        let trunc = restoring_isqrt(&mut ops, 30_000, isqrt_bits(16) - 3);
        assert_eq!(trunc & 0b111, 0);
        assert_eq!(trunc, full & !0b111);
    }

    #[test]
    fn newton_matches_float_sqrt() {
        let plain_mul = |(): &mut (), a: i32, b: i32| i64::from(a) * i64::from(b);
        let plain_sub = |(): &mut (), a: i64, b: i64| a - b;
        for v in [0.0625f64, 0.25, 1.0, 2.0, 4.0, 100.0, 4000.0] {
            let x = (v * 4096.0) as i32;
            let y = f64::from(sqrt_nr_q(x, 12, 5, &mut (), plain_mul, plain_sub)) / 4096.0;
            assert!((y - v.sqrt()).abs() / v.sqrt() < 0.01, "sqrt({v}) = {y}");
        }
        assert_eq!(sqrt_nr_q(0, 12, 5, &mut (), plain_mul, plain_sub), 0);
        assert_eq!(sqrt_nr_q(-5, 12, 5, &mut (), plain_mul, plain_sub), 0);
    }
}
