//! The op-builder abstraction the kernels are generic over.
//!
//! A [`FxOps`] implementation supplies `width`-bit two's-complement
//! primitives — exactly the node kinds the APIM compiler lowers to MAGIC
//! microprograms. The kernels in this crate call nothing else, so one
//! kernel body serves as both the integer reference model (via
//! [`IntEval`]) and the DAG expansion (via the compiler's builder impl).

use crate::MathError;

/// `width`-bit two's-complement primitive ops, mirroring the compiler's
/// DAG node kinds one for one.
///
/// Semantics contract (what [`IntEval`] implements and the compiler's DAG
/// evaluator matches bit for bit):
///
/// * values are `width`-bit patterns; every result is masked to width;
/// * `add`/`sub` wrap;
/// * `mul` is the truncated exact `n×n → n` product (wrapping); the
///   second operand sits in the multiplier seat, so implementations that
///   charge by partial products charge for `b`'s set bits;
/// * `shl` is a logical left shift, `shr` an *arithmetic* (sign-filled)
///   right shift; `amount` is always in `1..width`.
pub trait FxOps {
    /// A handle to one `width`-bit value (an integer for evaluation, a
    /// node id for DAG construction).
    type V: Copy;

    /// Word width in bits.
    fn width(&self) -> u32;

    /// Materializes a constant (two's-complement, masked to width).
    fn constant(&mut self, value: i64) -> Self::V;

    /// Wrapping addition.
    fn add(&mut self, a: Self::V, b: Self::V) -> Self::V;

    /// Wrapping subtraction `a - b`.
    fn sub(&mut self, a: Self::V, b: Self::V) -> Self::V;

    /// Truncated exact product; `b` is the multiplier-seat operand.
    fn mul(&mut self, a: Self::V, b: Self::V) -> Self::V;

    /// Logical left shift, `1 ≤ amount < width`.
    fn shl(&mut self, x: Self::V, amount: u32) -> Self::V;

    /// Arithmetic right shift, `1 ≤ amount < width`.
    fn shr(&mut self, x: Self::V, amount: u32) -> Self::V;
}

/// Sign-extends a `width`-bit pattern into an `i64`.
pub fn from_pattern(bits: u64, width: u32) -> i64 {
    if width == 64 {
        return bits as i64;
    }
    let mask = (1u64 << width) - 1;
    let v = bits & mask;
    if v >> (width - 1) & 1 == 1 {
        (v | !mask) as i64
    } else {
        v as i64
    }
}

/// Two's-complement encodes an `i64` as a `width`-bit pattern.
pub fn to_pattern(value: i64, width: u32) -> u64 {
    if width == 64 {
        value as u64
    } else {
        (value as u64) & ((1u64 << width) - 1)
    }
}

/// The pure-integer [`FxOps`] implementation: values are `u64` bit
/// patterns, ops are the wrapping/masked semantics of the contract above.
#[derive(Debug, Clone)]
pub struct IntEval {
    width: u32,
    mask: u64,
}

impl IntEval {
    /// Creates an evaluator over `width`-bit words.
    ///
    /// # Errors
    ///
    /// [`MathError::InvalidWidth`] outside `4..=64`.
    pub fn new(width: u32) -> Result<Self, MathError> {
        if !(4..=64).contains(&width) {
            return Err(MathError::InvalidWidth(width));
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        Ok(IntEval { width, mask })
    }

    /// The `width`-bit mask.
    pub fn mask(&self) -> u64 {
        self.mask
    }
}

impl FxOps for IntEval {
    type V = u64;

    fn width(&self) -> u32 {
        self.width
    }

    fn constant(&mut self, value: i64) -> u64 {
        (value as u64) & self.mask
    }

    fn add(&mut self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b) & self.mask
    }

    fn sub(&mut self, a: u64, b: u64) -> u64 {
        a.wrapping_sub(b) & self.mask
    }

    fn mul(&mut self, a: u64, b: u64) -> u64 {
        a.wrapping_mul(b) & self.mask
    }

    fn shl(&mut self, x: u64, amount: u32) -> u64 {
        debug_assert!(amount >= 1 && amount < self.width);
        (x << amount) & self.mask
    }

    fn shr(&mut self, x: u64, amount: u32) -> u64 {
        debug_assert!(amount >= 1 && amount < self.width);
        let sign = (x >> (self.width - 1)) & 1 == 1;
        let shifted = x >> amount;
        if sign {
            (shifted | (self.mask & !(self.mask >> amount))) & self.mask
        } else {
            shifted
        }
    }
}

/// Evaluates `f` on sign-extended integer arguments through a fresh
/// [`IntEval`], converting in and out of bit patterns — the convenient
/// host-side entry point for table generation and tests.
pub fn eval_signed<F>(width: u32, x: i64, f: F) -> i64
where
    F: FnOnce(&mut IntEval, u64) -> u64,
{
    let mut ops = IntEval::new(width).expect("caller supplies a supported width");
    let xin = to_pattern(x, width);
    let out = f(&mut ops, xin);
    from_pattern(out, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_round_trip() {
        for width in [4u32, 8, 16, 33, 64] {
            for v in [-3i64, -1, 0, 1, 5] {
                assert_eq!(from_pattern(to_pattern(v, width), width), v, "{v}@{width}");
            }
        }
    }

    #[test]
    fn arithmetic_shift_sign_fills() {
        let mut ops = IntEval::new(8).unwrap();
        // -8 >> 2 = -2
        assert_eq!(ops.shr(0xF8, 2), 0xFE);
        assert_eq!(ops.shr(0x78, 2), 0x1E);
    }

    #[test]
    fn mul_is_truncated_twos_complement_product() {
        let mut ops = IntEval::new(8).unwrap();
        let a = to_pattern(-3, 8);
        let b = to_pattern(5, 8);
        assert_eq!(from_pattern(ops.mul(a, b), 8), -15);
    }

    #[test]
    fn select_by_flag_is_exact() {
        // The kernels' core trick: mul by a {0,1} flag selects a value.
        let mut ops = IntEval::new(12).unwrap();
        let t = to_pattern(-100, 12);
        assert_eq!(ops.mul(t, 1), t);
        assert_eq!(ops.mul(t, 0), 0);
    }
}
