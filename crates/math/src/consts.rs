//! Hard-coded integer trigonometric constants.
//!
//! All constants are Q45 fixed-point integers (45 fraction bits), precise
//! enough to round correctly to any Q-format the 4..=64-bit word widths
//! can carry fraction bits for. Keeping them as integer literals — the
//! same convention as `INV_SQRT2` in the DWT workload — means no `f64`
//! ever participates in kernel construction or table generation.

/// `atan(2^-i)` for `i = 0..31`, Q45.
pub const ATAN_Q45: [i64; 31] = [
    27_633_741_218_861,
    16_313_149_993_182,
    8_619_420_437_280,
    4_375_352_399_238,
    2_196_166_636_240,
    1_099_153_923_404,
    549_711_081_198,
    274_872_314_743,
    137_438_254_428,
    68_719_389_355,
    34_359_727_445,
    17_179_867_819,
    8_589_934_421,
    4_294_967_275,
    2_147_483_645,
    1_073_741_824,
    536_870_912,
    268_435_456,
    134_217_728,
    67_108_864,
    33_554_432,
    16_777_216,
    8_388_608,
    4_194_304,
    2_097_152,
    1_048_576,
    524_288,
    262_144,
    131_072,
    65_536,
    32_768,
];

/// The CORDIC gain reciprocal `K = Π 1/√(1 + 2^-2i) ≈ 0.607253`, Q45.
/// Pre-scaling the initial vector by `K` makes the final magnitude 1.
pub const K_Q45: i64 = 21_365_813_217_388;

/// `π/2`, Q45.
pub const HALF_PI_Q45: i64 = 55_267_482_437_722;

/// `π`, Q45.
pub const PI_Q45: i64 = 110_534_964_875_444;

/// `2π`, Q45.
pub const TWO_PI_Q45: i64 = 221_069_929_750_889;

/// Number of fraction bits the constants above carry.
pub const CONST_FRAC: u32 = 45;

/// Re-quantizes a fixed-point value from `from` to `to` fraction bits with
/// round-half-away-from-zero semantics.
pub fn round_shift(v: i64, from: u32, to: u32) -> i64 {
    if to >= from {
        v << (to - from)
    } else {
        let shift = from - to;
        let bias = 1i64 << (shift - 1);
        if v >= 0 {
            (v + bias) >> shift
        } else {
            -((-v + bias) >> shift)
        }
    }
}

/// `atan(2^-i)` re-quantized to `frac` fraction bits.
pub fn atan_q(i: usize, frac: u32) -> i64 {
    round_shift(ATAN_Q45[i], CONST_FRAC, frac)
}

/// The CORDIC gain reciprocal re-quantized to `frac` fraction bits.
pub fn gain_q(frac: u32) -> i64 {
    round_shift(K_Q45, CONST_FRAC, frac)
}

/// `π/2` re-quantized to `frac` fraction bits.
pub fn half_pi_q(frac: u32) -> i64 {
    round_shift(HALF_PI_Q45, CONST_FRAC, frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_round_to_known_low_precision_values() {
        // Q15 1/√2-adjacent sanity anchors: π/2 in Q15 and the Q12 gain.
        assert_eq!(half_pi_q(15), 51_472);
        assert_eq!(gain_q(12), 2_487);
        assert_eq!(atan_q(0, 12), 3_217); // π/4 in Q12
    }

    #[test]
    fn round_shift_is_symmetric() {
        for v in [0i64, 1, 7, 100, 12345] {
            assert_eq!(round_shift(v, 10, 4), -round_shift(-v, 10, 4));
        }
        assert_eq!(round_shift(3, 2, 5), 24);
    }

    #[test]
    fn atan_table_is_monotone_decreasing() {
        for w in ATAN_Q45.windows(2) {
            assert!(w[0] > w[1]);
        }
    }
}
