//! Piecewise-linear table interpolation — the cheap, lower-precision
//! alternative to iterative CORDIC.
//!
//! The approximation is `f(x) ≈ V_j + S_j·(x - c_j)` for the segment
//! `[c_j, c_{j+1})` containing `x`. A straight-line microprogram cannot
//! index a table, so segment selection is a chain of `{0, 1}` comparison
//! indicators — `ge_j = 1 + ((x - c_j) >> (width-1))` is `1` iff
//! `x ≥ c_j` — and each selected quantity is a delta accumulation:
//!
//! ```text
//! base  = V_0 + Σ_j (V_j - V_{j-1})·ge_j       →  V_seg
//! c_sel = c_0 + Σ_j (c_j - c_{j-1})·ge_j       →  c_seg
//! s_sel = S_0 + Σ_j (S_j - S_{j-1})·ge_j       →  S_seg
//! out   = base + (s_sel·(x - c_sel)) >> g
//! ```
//!
//! The indicators are monotone in `j`, so every partial sum equals a
//! genuine table entry and never overflows the word. The delta constants
//! sit in the multiplier seat (known popcount), and negative deltas are
//! flipped into subtractions by the compiler's negated-constant strength
//! reduction. Slopes are stored in Q-`g`, with `g` chosen as the largest
//! scale whose products provably fit the word.
//!
//! Table values are produced without floating point: trigonometric
//! entries by running the integer CORDIC of [`crate::cordic`] at high
//! precision (52-bit words, Q45, 31 iterations), square-root entries by
//! [`isqrt_u64`] with breakpoints placed at exact squares (which also
//! keeps the relative interpolation error flat across segments).

use crate::consts::{half_pi_q, round_shift};
use crate::cordic::cordic_sincos;
use crate::ops::{from_pattern, to_pattern, FxOps, IntEval};
use crate::sqrt::isqrt_u64;
use crate::MathFn;

/// Internal width/format of the table-generation CORDIC: comfortably
/// more precise than any Q-format a ≤ 64-bit word can ask for.
const GEN_WIDTH: u32 = 52;
const GEN_FRAC: u32 = 45;
const GEN_ITERS: u32 = 31;

/// High-precision integer evaluation of `sin`/`cos` at a Q-`frac` angle
/// (`|angle| ≤ π/2`), used for LUT table generation and anywhere else a
/// host-side trig constant is needed without touching `f64`.
///
/// # Panics
///
/// Panics if `func` is [`MathFn::Sqrt`].
pub fn trig_value_q(func: MathFn, angle: i64, frac: u32) -> i64 {
    let a45 = round_shift(angle, frac, GEN_FRAC);
    let mut ops = IntEval::new(GEN_WIDTH).expect("generation width is supported");
    let out = cordic_sincos(&mut ops, to_pattern(a45, GEN_WIDTH), GEN_FRAC, GEN_ITERS);
    let v45 = match func {
        MathFn::Sin => from_pattern(out.sin, GEN_WIDTH),
        MathFn::Cos => from_pattern(out.cos, GEN_WIDTH),
        MathFn::Sqrt => panic!("trig_value_q is for sin/cos only"),
    };
    round_shift(v45, GEN_FRAC, frac)
}

/// A fully-materialized interpolation table for one function instance.
#[derive(Debug, Clone)]
pub struct LutSpec {
    /// Fraction bits of the input/output Q-format.
    pub frac: u32,
    /// Segment boundaries, `K + 1` entries, strictly increasing
    /// (Q-`frac` input units).
    pub breakpoints: Vec<i64>,
    /// Function values at the breakpoints, `K + 1` entries (Q-`frac`
    /// output units).
    pub values: Vec<i64>,
    /// Per-segment slopes in Q-`g` per input unit, `K` entries.
    pub slopes_qg: Vec<i64>,
    /// Fraction bits of the slope scale; the interpolation term is
    /// shifted right by this after the multiply.
    pub g: u32,
}

/// The largest supported `log2_segments` for `func` at `width`/`frac`
/// (capped at 6). Zero means LUT mode is unavailable — square root needs
/// `width ≥ 6` so breakpoints at exact squares stay strictly increasing
/// with end-of-domain headroom.
pub fn max_log2_segments(func: MathFn, width: u32, frac: u32) -> u32 {
    match func {
        MathFn::Sin | MathFn::Cos => {
            // Segment length must dominate the flooring remainder
            // (range - K·seg < K): require seg = range >> k ≥ 2^k.
            let range = 2 * half_pi_q(frac);
            let mut k = 0;
            while k < 6 && (range >> (k + 1)) >= (1i64 << (k + 1)) {
                k += 1;
            }
            k
        }
        MathFn::Sqrt => {
            // Last-segment overshoot (hi - R²  ≤ 2R) must fit the
            // 2·segment slope guard: require 2^(k+1) ≤ R = ⌊√hi⌋.
            let hi = (1u64 << (width - 1)) - 1;
            let r = isqrt_u64(hi);
            let mut k = 0;
            while k < 6 && (2u64 << (k + 1)) <= r {
                k += 1;
            }
            k
        }
    }
}

/// Symmetric (round-half-away-from-zero) division, `b > 0`.
fn round_div(a: i128, b: i128) -> i128 {
    if a >= 0 {
        (a + b / 2) / b
    } else {
        -((-a + b / 2) / b)
    }
}

/// Picks the largest slope scale `g` whose Q-`g` slopes keep every
/// product `S_j·r` (with `r` up to twice the segment length, covering
/// flooring remainder and end-of-domain overshoot) inside the signed
/// `width`-bit word, and returns the slopes at that scale.
fn solve_slopes(width: u32, breakpoints: &[i64], values: &[i64]) -> (u32, Vec<i64>) {
    let limit = 1i128 << (width - 1);
    for g in (0..=width - 2).rev() {
        let mut slopes = Vec::with_capacity(breakpoints.len() - 1);
        let mut ok = true;
        for j in 0..breakpoints.len() - 1 {
            let dv = i128::from(values[j + 1] - values[j]);
            let seg = i128::from(breakpoints[j + 1] - breakpoints[j]);
            let s = round_div(dv << g, seg);
            if s.abs() * 2 * seg >= limit {
                ok = false;
                break;
            }
            slopes.push(s as i64);
        }
        if ok {
            return (g, slopes);
        }
    }
    unreachable!("g = 0 always satisfies the slope guard for valid tables")
}

/// Builds the interpolation table for `func` over its full domain
/// (`[-π/2, π/2]` for trig, `[0, 2^(width-1))` for sqrt) with
/// `2^log2_segments` segments.
///
/// The parameters must be valid per [`crate::validate`]; in particular
/// `log2_segments ≤ max_log2_segments(func, width, frac)`.
pub fn lut_spec(func: MathFn, width: u32, frac: u32, log2_segments: u32) -> LutSpec {
    let k = 1i64 << log2_segments;
    let (breakpoints, values): (Vec<i64>, Vec<i64>) = match func {
        MathFn::Sin | MathFn::Cos => {
            let hpi = half_pi_q(frac);
            let seg = (2 * hpi) >> log2_segments;
            let bps: Vec<i64> = (0..=k).map(|j| -hpi + j * seg).collect();
            let vals = bps.iter().map(|&c| trig_value_q(func, c, frac)).collect();
            (bps, vals)
        }
        MathFn::Sqrt => {
            let hi = (1u64 << (width - 1)) - 1;
            let r = i128::from(isqrt_u64(hi));
            let ms: Vec<i64> = (0..=k)
                .map(|j| round_div(i128::from(j) * r, i128::from(k)) as i64)
                .collect();
            let bps = ms.iter().map(|&m| m * m).collect();
            (bps, ms)
        }
    };
    let (g, slopes_qg) = solve_slopes(width, &breakpoints, &values);
    LutSpec {
        frac,
        breakpoints,
        values,
        slopes_qg,
        g,
    }
}

/// Emits the straight-line interpolation microkernel for `table`
/// (indicator chain, delta accumulation, one slope multiply).
pub fn lut_interpolate<O: FxOps>(ops: &mut O, x: O::V, table: &LutSpec) -> O::V {
    let width = ops.width();
    let segments = table.slopes_qg.len();
    let one = ops.constant(1);
    let mut base = ops.constant(table.values[0]);
    let mut c_sel = ops.constant(table.breakpoints[0]);
    let mut s_sel = ops.constant(table.slopes_qg[0]);
    for j in 1..segments {
        let cj = ops.constant(table.breakpoints[j]);
        let diff = ops.sub(x, cj);
        let sign_mask = ops.shr(diff, width - 1);
        let ge = ops.add(one, sign_mask);
        let dv = table.values[j] - table.values[j - 1];
        if dv != 0 {
            let dvc = ops.constant(dv);
            let term = ops.mul(dvc, ge);
            base = ops.add(base, term);
        }
        let dc = table.breakpoints[j] - table.breakpoints[j - 1];
        let dcc = ops.constant(dc);
        let cterm = ops.mul(dcc, ge);
        c_sel = ops.add(c_sel, cterm);
        let ds = table.slopes_qg[j] - table.slopes_qg[j - 1];
        if ds != 0 {
            let dsc = ops.constant(ds);
            let sterm = ops.mul(dsc, ge);
            s_sel = ops.add(s_sel, sterm);
        }
    }
    let r = ops.sub(x, c_sel);
    let p = ops.mul(s_sel, r);
    let interp = if table.g == 0 { p } else { ops.shr(p, table.g) };
    ops.add(base, interp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::eval_signed;

    #[test]
    fn trig_value_anchors() {
        // sin(π/2) = 1, cos(π/2) = 0, sin(π/6) = 1/2 — all in Q20.
        let hpi = half_pi_q(20);
        let one = 1i64 << 20;
        assert!((trig_value_q(MathFn::Sin, hpi, 20) - one).abs() <= 2);
        assert!(trig_value_q(MathFn::Cos, hpi, 20).abs() <= 2);
        assert!((trig_value_q(MathFn::Sin, hpi / 3, 20) - one / 2).abs() <= 4);
    }

    #[test]
    fn sqrt_table_breakpoints_are_exact_squares() {
        let t = lut_spec(MathFn::Sqrt, 16, 0, 3);
        assert_eq!(t.breakpoints.len(), 9);
        for (m, c) in t.values.iter().zip(&t.breakpoints) {
            assert_eq!(m * m, *c);
        }
        assert!(t.breakpoints.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn interpolation_is_exact_at_breakpoints() {
        for func in [MathFn::Sin, MathFn::Cos] {
            let t = lut_spec(func, 16, 13, 3);
            for (&c, &v) in t.breakpoints.iter().zip(&t.values).take(8) {
                let got = eval_signed(16, c, |ops, x| lut_interpolate(ops, x, &t));
                assert!(
                    (got - v).abs() <= 1,
                    "{func} at breakpoint {c}: {got} vs {v}"
                );
            }
        }
    }

    #[test]
    fn sqrt_interpolation_tracks_isqrt_off_breakpoints() {
        let t = lut_spec(MathFn::Sqrt, 16, 0, 3);
        // Segments ≥ 1 (x ≥ c_1): relative error ≤ 1/(8·j·(j+1)) + rounding.
        let lo = t.breakpoints[1];
        for x in (lo..(1 << 15)).step_by(311) {
            let got = eval_signed(16, x, |ops, v| lut_interpolate(ops, v, &t));
            let truth = isqrt_u64(x as u64) as i64;
            assert!(
                (got - truth).abs() * 10 <= truth,
                "lut sqrt({x}) = {got}, isqrt = {truth}"
            );
        }
    }

    #[test]
    fn max_segments_scales_with_width() {
        assert_eq!(max_log2_segments(MathFn::Sqrt, 4, 0), 0);
        assert!(max_log2_segments(MathFn::Sqrt, 8, 0) >= 1);
        assert_eq!(max_log2_segments(MathFn::Sqrt, 32, 0), 6);
        assert!(max_log2_segments(MathFn::Sin, 8, 5) >= 1);
        assert_eq!(max_log2_segments(MathFn::Cos, 32, 29), 6);
    }
}
