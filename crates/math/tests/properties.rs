//! Property tests pinning the transcendental kernels to the `f64` oracle
//! across the full width range (8–32) and both evaluation modes.
//!
//! The MRE bounds are calibrated against a measured sweep (129 evenly
//! spaced domain samples per function/width): the worst default-CORDIC
//! mean relative error is 0.094 (sin at width 8) and decays roughly 30%
//! per extra bit of width; the worst maximum-segment LUT error is 0.118
//! (sqrt at width 9). `measure` samples deterministically, so the bounds
//! can sit close to the measured ceiling without flaking.

use apim_math::reference::measure;
use apim_math::{default_spec, max_log2_segments, MathFn, MathMode, MathSpec};
use proptest::prelude::*;

const FUNCS: [MathFn; 3] = [MathFn::Sin, MathFn::Cos, MathFn::Sqrt];

/// Calibrated MRE ceiling for the *default* spec at a given width. The
/// measured worst cases are 0.094 (w8), 0.025 (w12), 0.0063 (w16) and
/// 0.0015 (w20); each bucket leaves ≥ 20% headroom over its worst member.
fn default_mre_bound(width: u32) -> f64 {
    match width {
        ..=11 => 0.10,
        12..=15 => 0.03,
        16..=19 => 0.01,
        _ => 0.002,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn default_specs_meet_the_calibrated_mre_bound(width in 8u32..=32, func_sel in 0usize..3) {
        let func = FUNCS[func_sel];
        let stats = measure(width, &default_spec(func, width), 129).unwrap();
        prop_assert!(
            stats.mean_rel < default_mre_bound(width),
            "{func} w{width}: mean_rel {:.4} over bound {:.4}",
            stats.mean_rel,
            default_mre_bound(width)
        );
    }

    #[test]
    fn max_segment_lut_stays_below_fifteen_percent(width in 8u32..=32, func_sel in 0usize..3) {
        let func = FUNCS[func_sel];
        let frac = default_spec(func, width).frac;
        let spec = MathSpec {
            func,
            mode: MathMode::Lut { log2_segments: max_log2_segments(func, width, frac) },
            frac,
        };
        let stats = measure(width, &spec, 129).unwrap();
        prop_assert!(
            stats.mean_rel < 0.15,
            "{func} w{width}: LUT mean_rel {:.4}",
            stats.mean_rel
        );
    }

    #[test]
    fn more_cordic_iterations_monotonically_refine(width in 8u32..=32, func_sel in 0usize..3) {
        // Refinement converges: up to the *default* iteration count every
        // extra iteration lowers (or ties) the MRE, and the converged
        // kernel beats the single-iteration one by at least 5×. Beyond the
        // default, rotations drop below the format's quantization
        // resolution and the error may wander by an LSB — that tail is
        // deliberately out of scope.
        let func = FUNCS[func_sel];
        let spec = default_spec(func, width);
        let MathMode::Cordic { iters: default_iters } = spec.mode else {
            panic!("default specs are CORDIC");
        };
        let frac = spec.frac;
        let measure_at = |iters: u32| {
            measure(width, &MathSpec { func, mode: MathMode::Cordic { iters }, frac }, 129)
                .unwrap()
                .mean_rel
        };
        let coarse = measure_at(1);
        let mut prev = coarse;
        for iters in 2..=default_iters {
            let cur = measure_at(iters);
            prop_assert!(
                cur <= prev,
                "{func} w{width}: iters {iters} regressed {:.4} -> {:.4}",
                prev,
                cur
            );
            prev = cur;
        }
        prop_assert!(
            prev <= coarse / 5.0,
            "{func} w{width}: converged {:.4} vs coarse {:.4}",
            prev,
            coarse
        );
    }

    #[test]
    fn more_lut_segments_monotonically_refine(width in 8u32..=32, func_sel in 0usize..3) {
        let func = FUNCS[func_sel];
        let frac = default_spec(func, width).frac;
        let measure_at = |seg: u32| {
            measure(width, &MathSpec { func, mode: MathMode::Lut { log2_segments: seg }, frac }, 129)
                .unwrap()
                .mean_rel
        };
        let coarse = measure_at(1);
        let mut prev = coarse;
        for seg in 2..=max_log2_segments(func, width, frac) {
            let cur = measure_at(seg);
            prop_assert!(
                cur <= prev,
                "{func} w{width}: segments {seg} regressed {:.4} -> {:.4}",
                prev,
                cur
            );
            prev = cur;
        }
        prop_assert!(
            prev <= coarse,
            "{func} w{width}: finest table {:.4} vs coarsest {:.4}",
            prev,
            coarse
        );
    }
}
