//! The `apim-cli` binary: a thin shell around [`apim_cli::parse`] and
//! [`apim_cli::execute`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match apim_cli::parse(&args) {
        Ok(command) => command,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", apim_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match apim_cli::execute(&command) {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
