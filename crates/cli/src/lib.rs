//! Command layer of the `apim-cli` binary.
//!
//! Parsing and execution are plain functions over strings so the whole
//! surface is unit-testable; `src/bin/main.rs` is a thin shell around
//! [`parse`] + [`execute`].
//!
//! ```text
//! apim-cli multiply 1000003 2000029 --relax 16
//! apim-cli run sobel 512 --relax 8
//! apim-cli tune fft
//! apim-cli sweep robert
//! apim-cli repro table1
//! ```

#![deny(missing_docs)]

use apim::prelude::*;
use apim::App;
use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// In-memory multiplication of two operands.
    Multiply {
        /// Multiplicand.
        a: u64,
        /// Multiplier.
        b: u64,
        /// Precision mode.
        mode: PrecisionMode,
    },
    /// One application over a resident dataset.
    Run {
        /// The application.
        app: App,
        /// Dataset size in MiB.
        size_mb: u64,
        /// Precision mode.
        mode: PrecisionMode,
    },
    /// The §4.1 adaptive QoS loop for one application.
    Tune {
        /// The application.
        app: App,
    },
    /// Dataset-size sweep (the Figure 5 view) for one application.
    Sweep {
        /// The application.
        app: App,
    },
    /// Regenerate a paper exhibit (`fig4|fig5|fig6|table1|headline|all`).
    Repro {
        /// The exhibit name.
        exhibit: String,
    },
    /// Gate-level device self-test.
    SelfTest {
        /// Number of random multiplications to verify.
        samples: u32,
    },
    /// Static hazard analysis of the gate-level microprograms.
    Verify {
        /// Kernel to lint; `None` sweeps them all.
        kernel: Option<apim_verify::Kernel>,
        /// Run the symbolic equivalence checker instead of the hazard
        /// passes (`--equiv`).
        equiv: bool,
        /// Equivalence target; `None` sweeps every hand kernel plus the
        /// compiled sharpen/Sobel DAGs.
        equiv_target: Option<apim_verify::EquivTarget>,
        /// Check only this width; `None` sweeps the defaults.
        width: Option<u32>,
        /// Show the concrete counterexample assignment on mismatch.
        counterexample: bool,
    },
    /// Compile an expression DAG to a verified MAGIC microprogram and run
    /// it at the gate level.
    Compile {
        /// Builtin kernel name (`sharpen`, `sobel`) or a program file in
        /// the `apim-compile` expression language.
        target: String,
        /// Input bindings from `--set name=value`.
        bindings: Vec<(String, u64)>,
        /// Compare the compiled cycle cost against the hand-written
        /// kernel's analytic baseline (builtins only).
        compare: bool,
        /// Lane-batched instances per microprogram pass (`--batch N`,
        /// 1..=64). `1` runs the serial backend.
        batch: usize,
    },
    /// Compile one transcendental microkernel (sin/cos/√) to a verified
    /// in-crossbar microprogram and report its cost and oracle accuracy —
    /// or regenerate the FFT twiddle ROM in-crossbar (`--twiddles`).
    Math {
        /// The function; `None` only when `--twiddles` drives the ROM
        /// smoke instead.
        func: Option<apim_compile::MathFn>,
        /// Word width.
        width: u32,
        /// Evaluate via the LUT-interpolation mode instead of CORDIC.
        lut: bool,
        /// CORDIC iteration override (`None` = the width's default).
        iters: Option<u32>,
        /// LUT log₂ segment-count override (`None` = the width's default).
        segments: Option<u32>,
        /// Compile the twiddle ROM for this many FFT points and gate its
        /// MRE against the float ROM.
        twiddles: Option<usize>,
    },
    /// One-shot serving of a request file on the worker pool.
    Serve {
        /// Path to the request file (one request per line).
        path: String,
        /// Worker thread count (`None` = one per available core, capped).
        workers: Option<usize>,
        /// Admission-control queue depth.
        queue_depth: Option<usize>,
    },
    /// Seeded open-loop load generator against an in-process pool.
    Loadgen {
        /// Number of requests to offer.
        requests: usize,
        /// Worker thread count (`None` = one per available core, capped).
        workers: Option<usize>,
        /// Mix seed.
        seed: u64,
        /// Admission-control queue depth.
        queue_depth: Option<usize>,
    },
    /// A cluster node daemon: one serving pool behind a TCP listener.
    Node {
        /// Listen address (`host:port`; port 0 picks a free port).
        addr: String,
        /// Worker thread count (`None` = one per available core, capped).
        workers: Option<usize>,
        /// Admission-control queue depth.
        queue_depth: Option<usize>,
        /// Serve for this many seconds then shut down (`None` = forever).
        for_secs: Option<u64>,
        /// Connection transport: the poll-based event loop (default) or
        /// the blocking thread-per-connection baseline.
        transport: apim_cluster::Transport,
    },
    /// Seeded load generator against running cluster nodes.
    ClusterLoadgen {
        /// Node addresses.
        nodes: Vec<String>,
        /// Number of requests to offer.
        requests: usize,
        /// Mix seed.
        seed: u64,
        /// Closed-loop submitter threads.
        concurrency: usize,
    },
    /// In-process robustness gate: spawn a loopback fleet, kill a node
    /// mid-run, fail unless every request is still answered.
    ClusterSmoke {
        /// Loopback nodes to spawn.
        nodes: usize,
        /// Number of requests to offer.
        requests: usize,
        /// Worker threads per node.
        workers: Option<usize>,
        /// Mix seed.
        seed: u64,
    },
    /// Seeded stuck-at fault-injection campaign over the kernel suite,
    /// with or without the in-crossbar SEC-DED layer.
    Faults {
        /// Stuck-at fault density over the storage region (fraction of
        /// cells, `0.0..=1.0`).
        density: f64,
        /// Which ECC settings to sweep.
        ecc: EccMode,
        /// Seed for operands and the fault field.
        seed: u64,
        /// Trials per word-oriented kernel.
        trials: usize,
        /// Run the endurance demo instead: wear-leveling allocation plus
        /// row remapping with re-verification (`--wear-demo`).
        wear_demo: bool,
    },
    /// Print usage.
    Help,
}

/// Which ECC settings a `faults` campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccMode {
    /// SEC-DED decode on every storage read.
    On,
    /// Raw reads; faults land in the kernels unprotected.
    Off,
    /// Both, back to back, for a protected-vs-raw comparison.
    Both,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
apim-cli — the APIM (DAC'17) processing-in-memory simulator

USAGE:
  apim-cli multiply <a> <b> [--relax M | --mask F]
  apim-cli run <app> <size-mb> [--relax M | --mask F]
  apim-cli tune <app>
  apim-cli sweep <app>
  apim-cli repro <fig4|fig5|fig5sim|fig6|table1|headline|ablation|all>
  apim-cli selftest [samples]
  apim-cli verify [--all | gates|adder|csa|wallace|multiplier|mac] [--width N]
  apim-cli verify --equiv [adder|subtractor|wallace|multiplier|mac|divider]
                          [--width N] [--counterexample]
  apim-cli compile <sharpen|sobel|file> [--set name=val ...] [--compare]
                   [--batch N]
  apim-cli math --fn <sin|cos|sqrt> [--mode cordic|lut] [--width N]
                [--iters K | --segments S]
  apim-cli math --twiddles <N>
  apim-cli serve <file> [--workers N] [--queue-depth N]
  apim-cli loadgen [--requests N] [--workers N] [--seed S] [--queue-depth N]
  apim-cli node [--addr H:P] [--workers N] [--queue-depth N] [--for-secs S]
                [--transport event-loop|blocking]
  apim-cli cluster-loadgen --nodes a:p,b:p[,...] [--requests N] [--seed S]
                           [--concurrency C]
  apim-cli cluster-smoke [--nodes N] [--requests N] [--workers N] [--seed S]
  apim-cli faults [--density D] [--ecc on|off|both] [--seed S] [--trials N]
  apim-cli faults --wear-demo
  apim-cli help

APPS: sobel | robert | fft | dwt | sharpen | quasir

REQUEST FILE: one request per line, `#` comments; each line is
  [@<tenant>] run <app> <size-mb> [--relax M | --mask F]
  [@<tenant>] multiply <a> <b>   [--relax M | --mask F]
  [@<tenant>] mac <a1> <b1> ...  [--relax M | --mask F]
  [@<tenant>] pixel <sharpen|sobel> <taps...> [--relax M | --mask F]
  [@<tenant>] compile <width N; let ...; out expr> (`;` = newline)

PROGRAM FILE (`compile`): line-oriented, `#` comments:
  width <N>                      word width, 4..=64 — must come first
  mode exact | mask <F> | relax <M>   precision of later * / mac()
  in <name>                      declare a run-time input
  let <name> = <expr>            bind an expression
  out <expr>                     designate the output
  expr: + - * << >> ( ) mac(a*b, ...), ints take 0x/0b/_";

fn parse_app(name: &str) -> Result<App, ParseError> {
    match name.to_ascii_lowercase().as_str() {
        "sobel" => Ok(App::Sobel),
        "robert" => Ok(App::Robert),
        "fft" => Ok(App::Fft),
        "dwt" | "dwthaar1d" => Ok(App::DwtHaar1d),
        "sharpen" => Ok(App::Sharpen),
        "quasir" | "quasirandom" => Ok(App::QuasiRandom),
        other => Err(ParseError(format!(
            "unknown app `{other}` (expected sobel|robert|fft|dwt|sharpen|quasir)"
        ))),
    }
}

fn parse_mode(rest: &[String]) -> Result<PrecisionMode, ParseError> {
    match rest {
        [] => Ok(PrecisionMode::Exact),
        [flag, value] if flag == "--relax" => {
            let m: u8 = value
                .parse()
                .map_err(|_| ParseError(format!("invalid relax bits `{value}`")))?;
            Ok(PrecisionMode::LastStage { relax_bits: m })
        }
        [flag, value] if flag == "--mask" => {
            let f: u8 = value
                .parse()
                .map_err(|_| ParseError(format!("invalid mask bits `{value}`")))?;
            Ok(PrecisionMode::FirstStage { masked_bits: f })
        }
        other => Err(ParseError(format!("unexpected arguments: {other:?}"))),
    }
}

fn parse_u64(value: &str, what: &str) -> Result<u64, ParseError> {
    value
        .parse()
        .map_err(|_| ParseError(format!("invalid {what} `{value}`")))
}

/// Walks `--flag value` pairs shared by `serve` and `loadgen`.
/// `extra` handles command-specific flags; it returns `false` for flags it
/// does not recognise.
fn parse_pool_flags(
    flags: &[String],
    mut extra: impl FnMut(&str, &str) -> Result<bool, ParseError>,
) -> Result<(Option<usize>, Option<usize>), ParseError> {
    let mut workers = None;
    let mut queue_depth = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| ParseError(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--workers" => workers = Some(parse_u64(value, "worker count")? as usize),
            "--queue-depth" => {
                queue_depth = Some(parse_u64(value, "queue depth")? as usize);
            }
            other if extra(other, value)? => {}
            other => return Err(ParseError(format!("unknown flag `{other}`"))),
        }
    }
    Ok((workers, queue_depth))
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] with a user-facing message for anything the
/// grammar above rejects.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    match args {
        [] => Ok(Command::Help),
        [cmd, rest @ ..] => match cmd.as_str() {
            "help" | "--help" | "-h" => Ok(Command::Help),
            "multiply" => match rest {
                [a, b, mode @ ..] => Ok(Command::Multiply {
                    a: parse_u64(a, "multiplicand")?,
                    b: parse_u64(b, "multiplier")?,
                    mode: parse_mode(mode)?,
                }),
                _ => Err(ParseError("multiply needs two operands".into())),
            },
            "run" => match rest {
                [app, size, mode @ ..] => Ok(Command::Run {
                    app: parse_app(app)?,
                    size_mb: parse_u64(size, "dataset size")?,
                    mode: parse_mode(mode)?,
                }),
                _ => Err(ParseError("run needs an app and a size in MiB".into())),
            },
            "tune" => match rest {
                [app] => Ok(Command::Tune {
                    app: parse_app(app)?,
                }),
                _ => Err(ParseError("tune needs exactly one app".into())),
            },
            "sweep" => match rest {
                [app] => Ok(Command::Sweep {
                    app: parse_app(app)?,
                }),
                _ => Err(ParseError("sweep needs exactly one app".into())),
            },
            "selftest" => match rest {
                [] => Ok(Command::SelfTest { samples: 16 }),
                [n] => Ok(Command::SelfTest {
                    samples: parse_u64(n, "sample count")?.min(10_000) as u32,
                }),
                _ => Err(ParseError("selftest takes at most a sample count".into())),
            },
            "verify" => {
                let mut equiv = false;
                let mut width = None;
                let mut counterexample = false;
                let mut name: Option<&str> = None;
                let mut it = rest.iter();
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--all" => {}
                        "--equiv" => equiv = true,
                        "--counterexample" => counterexample = true,
                        "--width" => {
                            let w = it
                                .next()
                                .ok_or_else(|| ParseError("--width needs a bit count".into()))?;
                            let w = parse_u64(w, "width")?;
                            if !(4..=64).contains(&w) {
                                return Err(ParseError(format!(
                                    "width {w} outside supported range 4..=64"
                                )));
                            }
                            width = Some(w as u32);
                        }
                        bare if !bare.starts_with("--") && name.is_none() => name = Some(bare),
                        bare if !bare.starts_with("--") => {
                            return Err(ParseError("verify takes at most one kernel".into()))
                        }
                        other => return Err(ParseError(format!("unknown verify flag `{other}`"))),
                    }
                }
                if counterexample && !equiv {
                    return Err(ParseError("--counterexample requires --equiv".into()));
                }
                let (kernel, equiv_target) = match (equiv, name) {
                    (_, None) => (None, None),
                    (true, Some(n)) => match apim_verify::EquivTarget::from_name(n) {
                        Some(t) => (None, Some(t)),
                        None => {
                            return Err(ParseError(format!(
                                "unknown equiv target `{n}` (expected \
                                 adder|subtractor|wallace|multiplier|mac|divider)"
                            )))
                        }
                    },
                    (false, Some(n)) => match apim_verify::Kernel::from_name(n) {
                        Some(k) => (Some(k), None),
                        None => {
                            return Err(ParseError(format!(
                                "unknown kernel `{n}` (expected \
                                 gates|adder|csa|wallace|multiplier|mac)"
                            )))
                        }
                    },
                };
                Ok(Command::Verify {
                    kernel,
                    equiv,
                    equiv_target,
                    width,
                    counterexample,
                })
            }
            "compile" => match rest {
                [target, flags @ ..] if !target.starts_with("--") => {
                    let mut bindings = Vec::new();
                    let mut compare = false;
                    let mut batch = 1usize;
                    let mut it = flags.iter();
                    while let Some(flag) = it.next() {
                        match flag.as_str() {
                            "--compare" => compare = true,
                            "--set" => {
                                let kv = it.next().ok_or_else(|| {
                                    ParseError("--set needs a name=value pair".into())
                                })?;
                                let (name, value) = kv.split_once('=').ok_or_else(|| {
                                    ParseError(format!("--set expects name=value, got `{kv}`"))
                                })?;
                                bindings.push((name.to_string(), parse_u64(value, "input value")?));
                            }
                            "--batch" => {
                                let value = it.next().ok_or_else(|| {
                                    ParseError("--batch needs a lane count".into())
                                })?;
                                batch = parse_u64(value, "lane count")? as usize;
                                if !(1..=64).contains(&batch) {
                                    return Err(ParseError(format!(
                                        "--batch expects 1..=64 lanes, got {batch}"
                                    )));
                                }
                            }
                            other => return Err(ParseError(format!("unknown flag `{other}`"))),
                        }
                    }
                    Ok(Command::Compile {
                        target: target.clone(),
                        bindings,
                        compare,
                        batch,
                    })
                }
                _ => Err(ParseError(
                    "compile needs a builtin kernel (sharpen|sobel) or a program file".into(),
                )),
            },
            "math" => {
                let mut func = None;
                let mut width = 16u32;
                let mut lut = false;
                let mut iters = None;
                let mut segments = None;
                let mut twiddles = None;
                let mut it = rest.iter();
                while let Some(flag) = it.next() {
                    let value = it
                        .next()
                        .ok_or_else(|| ParseError(format!("{flag} needs a value")))?;
                    match flag.as_str() {
                        "--fn" => {
                            func = Some(match value.as_str() {
                                "sin" => apim_compile::MathFn::Sin,
                                "cos" => apim_compile::MathFn::Cos,
                                "sqrt" => apim_compile::MathFn::Sqrt,
                                other => {
                                    return Err(ParseError(format!(
                                        "unknown function `{other}` (expected sin|cos|sqrt)"
                                    )))
                                }
                            });
                        }
                        "--mode" => {
                            lut = match value.as_str() {
                                "cordic" => false,
                                "lut" => true,
                                other => {
                                    return Err(ParseError(format!(
                                        "unknown math mode `{other}` (expected cordic|lut)"
                                    )))
                                }
                            };
                        }
                        "--width" => {
                            let w = parse_u64(value, "width")?;
                            if !(4..=64).contains(&w) {
                                return Err(ParseError(format!(
                                    "width {w} outside supported range 4..=64"
                                )));
                            }
                            width = w as u32;
                        }
                        "--iters" => iters = Some(parse_u64(value, "iteration count")? as u32),
                        "--segments" => {
                            segments = Some(parse_u64(value, "segment count")? as u32);
                        }
                        "--twiddles" => {
                            let n = parse_u64(value, "FFT length")? as usize;
                            if !n.is_power_of_two() || n < 2 {
                                return Err(ParseError(format!(
                                    "--twiddles needs a power-of-two FFT length, got {n}"
                                )));
                            }
                            twiddles = Some(n);
                        }
                        other => return Err(ParseError(format!("unknown math flag `{other}`"))),
                    }
                }
                if func.is_none() && twiddles.is_none() {
                    return Err(ParseError("math needs --fn or --twiddles".into()));
                }
                if func.is_some() && twiddles.is_some() {
                    return Err(ParseError("--fn and --twiddles are exclusive".into()));
                }
                if lut && iters.is_some() {
                    return Err(ParseError("--iters applies to cordic mode only".into()));
                }
                if !lut && segments.is_some() {
                    return Err(ParseError(
                        "--segments applies to lut mode only (add --mode lut)".into(),
                    ));
                }
                Ok(Command::Math {
                    func,
                    width,
                    lut,
                    iters,
                    segments,
                    twiddles,
                })
            }
            "serve" => match rest {
                [path, flags @ ..] if !path.starts_with("--") => {
                    let (workers, queue_depth) = parse_pool_flags(flags, |_, _| Ok(false))?;
                    Ok(Command::Serve {
                        path: path.clone(),
                        workers,
                        queue_depth,
                    })
                }
                _ => Err(ParseError("serve needs a request file".into())),
            },
            "loadgen" => {
                let mut requests = 200usize;
                let mut seed = 7u64;
                let (workers, queue_depth) = parse_pool_flags(rest, |flag, value| {
                    match flag {
                        "--requests" => {
                            requests = parse_u64(value, "request count")? as usize;
                        }
                        "--seed" => seed = parse_u64(value, "seed")?,
                        _ => return Ok(false),
                    }
                    Ok(true)
                })?;
                Ok(Command::Loadgen {
                    requests,
                    workers,
                    seed,
                    queue_depth,
                })
            }
            "node" => {
                let mut addr = "127.0.0.1:7751".to_string();
                let mut for_secs = None;
                let mut transport = apim_cluster::Transport::EventLoop;
                let (workers, queue_depth) = parse_pool_flags(rest, |flag, value| {
                    match flag {
                        "--addr" => addr = value.to_string(),
                        "--for-secs" => for_secs = Some(parse_u64(value, "duration")?),
                        "--transport" => {
                            transport = match value {
                                "event-loop" => apim_cluster::Transport::EventLoop,
                                "blocking" => apim_cluster::Transport::Blocking,
                                other => {
                                    return Err(ParseError(format!(
                                    "unknown transport `{other}` (expected event-loop or blocking)"
                                )))
                                }
                            }
                        }
                        _ => return Ok(false),
                    }
                    Ok(true)
                })?;
                Ok(Command::Node {
                    addr,
                    workers,
                    queue_depth,
                    for_secs,
                    transport,
                })
            }
            "cluster-loadgen" => {
                let mut nodes = Vec::new();
                let mut requests = 200usize;
                let mut seed = 7u64;
                let mut concurrency = 8usize;
                let mut it = rest.iter();
                while let Some(flag) = it.next() {
                    let value = it
                        .next()
                        .ok_or_else(|| ParseError(format!("{flag} needs a value")))?;
                    match flag.as_str() {
                        "--nodes" => {
                            nodes = value
                                .split(',')
                                .filter(|s| !s.is_empty())
                                .map(String::from)
                                .collect();
                        }
                        "--requests" => {
                            requests = parse_u64(value, "request count")? as usize;
                        }
                        "--seed" => seed = parse_u64(value, "seed")?,
                        "--concurrency" => {
                            concurrency = parse_u64(value, "concurrency")?.max(1) as usize;
                        }
                        other => return Err(ParseError(format!("unknown flag `{other}`"))),
                    }
                }
                if nodes.is_empty() {
                    return Err(ParseError(
                        "cluster-loadgen needs --nodes a:port[,b:port...]".into(),
                    ));
                }
                Ok(Command::ClusterLoadgen {
                    nodes,
                    requests,
                    seed,
                    concurrency,
                })
            }
            "cluster-smoke" => {
                let mut nodes = 2usize;
                let mut requests = 200usize;
                let mut seed = 7u64;
                let mut workers = None;
                let mut it = rest.iter();
                while let Some(flag) = it.next() {
                    let value = it
                        .next()
                        .ok_or_else(|| ParseError(format!("{flag} needs a value")))?;
                    match flag.as_str() {
                        "--nodes" => nodes = parse_u64(value, "node count")?.max(1) as usize,
                        "--requests" => {
                            requests = parse_u64(value, "request count")? as usize;
                        }
                        "--seed" => seed = parse_u64(value, "seed")?,
                        "--workers" => {
                            workers = Some(parse_u64(value, "worker count")? as usize);
                        }
                        other => return Err(ParseError(format!("unknown flag `{other}`"))),
                    }
                }
                Ok(Command::ClusterSmoke {
                    nodes,
                    requests,
                    workers,
                    seed,
                })
            }
            "faults" => {
                let mut density = 1e-4f64;
                let mut ecc = EccMode::On;
                let mut seed = 7u64;
                let mut trials = 4usize;
                let mut wear_demo = false;
                let mut it = rest.iter();
                while let Some(flag) = it.next() {
                    if flag == "--wear-demo" {
                        wear_demo = true;
                        continue;
                    }
                    let value = it
                        .next()
                        .ok_or_else(|| ParseError(format!("{flag} needs a value")))?;
                    match flag.as_str() {
                        "--density" => {
                            let d: f64 = value.parse().map_err(|_| {
                                ParseError(format!("invalid fault density `{value}`"))
                            })?;
                            if !(0.0..=1.0).contains(&d) {
                                return Err(ParseError(format!(
                                    "fault density {d} outside 0.0..=1.0"
                                )));
                            }
                            density = d;
                        }
                        "--ecc" => {
                            ecc = match value.as_str() {
                                "on" => EccMode::On,
                                "off" => EccMode::Off,
                                "both" => EccMode::Both,
                                other => {
                                    return Err(ParseError(format!(
                                        "invalid ecc mode `{other}` (expected on|off|both)"
                                    )))
                                }
                            };
                        }
                        "--seed" => seed = parse_u64(value, "seed")?,
                        "--trials" => {
                            trials = parse_u64(value, "trial count")?.clamp(1, 64) as usize;
                        }
                        other => return Err(ParseError(format!("unknown flag `{other}`"))),
                    }
                }
                Ok(Command::Faults {
                    density,
                    ecc,
                    seed,
                    trials,
                    wear_demo,
                })
            }
            "repro" => match rest {
                [exhibit] => Ok(Command::Repro {
                    exhibit: exhibit.clone(),
                }),
                [] => Ok(Command::Repro {
                    exhibit: "all".into(),
                }),
                _ => Err(ParseError("repro takes at most one exhibit".into())),
            },
            other => Err(ParseError(format!("unknown command `{other}`"))),
        },
    }
}

/// Resolves, compiles and gate-executes a `compile` target, rendering the
/// pipeline summary (placement, schedule, verified run, optional hand
/// baseline comparison).
fn run_compile(
    target: &str,
    bindings: &[(String, u64)],
    compare: bool,
    batch: usize,
) -> Result<String, apim::ApimError> {
    use apim_workloads::dags;
    use std::fmt::Write as _;

    let fail = |e: apim_compile::CompileError| apim::ApimError::Runtime(e.to_string());
    // Builtins carry the hand-written kernel's analytic per-pixel cost for
    // --compare; file programs have no hand twin.
    type HandCost = fn(&apim_logic::CostModel) -> u64;
    let (dag, hand): (apim_compile::Dag, Option<HandCost>) = match target {
        "sharpen" => (dags::sharpen_dag(), Some(dags::sharpen_hand_cycles)),
        "sobel" => (
            dags::sobel_gradient_dag(),
            Some(dags::sobel_gradient_hand_cycles),
        ),
        path => {
            let text = std::fs::read_to_string(path).map_err(|e| {
                apim::ApimError::Runtime(format!("cannot read program file `{path}`: {e}"))
            })?;
            let program = apim_compile::parse_program(&text)
                .map_err(|e| apim::ApimError::Runtime(format!("{path}:{e}")))?;
            (program.dag, None)
        }
    };

    let options = apim_compile::CompileOptions::default();
    if batch > 1 {
        return run_compile_batched(target, &dag, bindings, compare, batch, hand, &options);
    }
    let program = apim_compile::compile(&dag, &options).map_err(fail)?;
    let names: Vec<String> = program
        .dag()
        .inputs()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut inputs: std::collections::HashMap<String, u64> = names
        .iter()
        .enumerate()
        .map(|(i, name)| (name.clone(), (i as u64 + 1) << 4))
        .collect();
    for (name, value) in bindings {
        if !inputs.contains_key(name) {
            return Err(apim::ApimError::Runtime(format!(
                "--set {name}: program has no input `{name}` (inputs: {})",
                names.join(", ")
            )));
        }
        inputs.insert(name.clone(), *value);
    }

    let placement = program.placement();
    let schedule = program.schedule();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program   : {target} ({}-bit, {} nodes, {} inputs)",
        program.dag().width(),
        program.dag().len(),
        names.len()
    );
    let _ = writeln!(
        out,
        "placement : {} staging + {} region rows/block pair, {} value(s) spilled to data blocks",
        apim_compile::plan::STAGING_ROWS,
        placement.region_rows,
        placement.spilled
    );
    let _ = writeln!(
        out,
        "schedule  : {} block pair(s), makespan {} vs {} serial cycles",
        schedule.units, schedule.makespan, schedule.serial_cycles
    );
    let shown: Vec<String> = names.iter().map(|n| format!("{n}={}", inputs[n])).collect();
    let _ = writeln!(out, "inputs    : {}", shown.join(" "));

    let report = program.run(&inputs).map_err(fail)?;
    let _ = writeln!(out, "value     : {} (0x{:x})", report.value, report.value);
    let _ = writeln!(
        out,
        "reference : {} ({})",
        report.reference,
        if report.value == report.reference {
            "bit-exact"
        } else {
            "MISMATCH"
        }
    );
    let _ = writeln!(
        out,
        "cycles    : {} measured / {} predicted ({})",
        report.cycles,
        report.expected_cycles,
        if report.cycles == report.expected_cycles {
            "exact"
        } else {
            "DRIFT"
        }
    );
    let _ = writeln!(out, "energy    : {}", report.energy);
    let _ = writeln!(
        out,
        "verify    : {} micro-ops, all 5 hazard passes clean ({} warning(s))",
        report.trace_len,
        report.lint.warning_count()
    );
    if compare {
        match hand {
            Some(hand_cycles) => {
                let hand = hand_cycles(program.model());
                let gap = 100.0 * (report.cycles as f64 - hand as f64) / hand as f64;
                let _ = writeln!(
                    out,
                    "compare   : hand-written kernel {hand} cycles, compiled {} ({gap:+.1}% gap)",
                    report.cycles
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "compare   : no hand-written baseline for file programs"
                );
            }
        }
    }
    out.pop();
    Ok(out)
}

/// The `compile --batch N` path: the same DAG lane-batched so one
/// microprogram pass runs `batch` instances. Lane 0 gets exactly the
/// serial bindings (`--set` / defaults); lane `j` offsets every input by
/// `j` so the lanes carry distinct data.
fn run_compile_batched(
    target: &str,
    dag: &apim_compile::Dag,
    bindings: &[(String, u64)],
    compare: bool,
    batch: usize,
    hand: Option<fn(&apim_logic::CostModel) -> u64>,
    options: &apim_compile::CompileOptions,
) -> Result<String, apim::ApimError> {
    use std::fmt::Write as _;

    let fail = |e: apim_compile::CompileError| apim::ApimError::Runtime(e.to_string());
    let program = apim_compile::compile_batched(dag, options, batch).map_err(fail)?;
    let names: Vec<String> = program
        .dag()
        .inputs()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut lane0: std::collections::HashMap<String, u64> = names
        .iter()
        .enumerate()
        .map(|(i, name)| (name.clone(), (i as u64 + 1) << 4))
        .collect();
    for (name, value) in bindings {
        if !lane0.contains_key(name) {
            return Err(apim::ApimError::Runtime(format!(
                "--set {name}: program has no input `{name}` (inputs: {})",
                names.join(", ")
            )));
        }
        lane0.insert(name.clone(), *value);
    }
    let inputs: Vec<std::collections::HashMap<String, u64>> = (0..batch as u64)
        .map(|j| {
            lane0
                .iter()
                .map(|(k, v)| (k.clone(), v.wrapping_add(j)))
                .collect()
        })
        .collect();

    let placement = program.placement();
    let schedule = program.schedule();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program   : {target} ({}-bit, {} nodes, {} inputs) x{batch} lanes",
        program.dag().width(),
        program.dag().len(),
        names.len()
    );
    let _ = writeln!(
        out,
        "placement : {} staging + {} region rows/block pair, {} value(s) spilled to data blocks",
        apim_compile::plan::STAGING_ROWS,
        placement.region_rows,
        placement.spilled
    );
    let _ = writeln!(
        out,
        "schedule  : {} block pair(s), makespan {} vs {} serial cycles",
        schedule.units, schedule.makespan, schedule.serial_cycles
    );
    let shown: Vec<String> = names.iter().map(|n| format!("{n}={}", lane0[n])).collect();
    let _ = writeln!(
        out,
        "inputs    : lane 0: {} (lane j adds j to every input)",
        shown.join(" ")
    );

    let report = program.run(&inputs).map_err(fail)?;
    let exact = report.values == report.references;
    let _ = writeln!(
        out,
        "batch     : {batch} lane(s), {}",
        if exact {
            "all bit-exact vs per-lane references"
        } else {
            "LANE MISMATCH vs references"
        }
    );
    let _ = writeln!(
        out,
        "value     : lane 0 = {} (0x{:x})",
        report.values[0], report.values[0]
    );
    let _ = writeln!(
        out,
        "cycles    : {} measured / {} predicted ({}) for the whole batch",
        report.cycles,
        report.expected_cycles,
        if report.cycles == report.expected_cycles {
            "exact"
        } else {
            "DRIFT"
        }
    );
    let _ = writeln!(out, "energy    : {}", report.energy);
    let _ = writeln!(
        out,
        "verify    : {} micro-ops, all 5 hazard passes clean ({} warning(s))",
        report.trace_len,
        report.lint.warning_count()
    );
    if compare {
        match hand {
            Some(hand_cycles) => {
                let hand = hand_cycles(program.model());
                let speedup = batch as f64 * hand as f64 / report.cycles as f64;
                let _ = writeln!(
                    out,
                    "compare   : hand-written kernel {hand} cycles/instance serial; \
                     batched {} for {batch} -> {speedup:.1}x per instance",
                    report.cycles
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "compare   : no hand-written baseline for file programs"
                );
            }
        }
    }
    out.pop();
    Ok(out)
}

/// The `math` command: compile one transcendental microkernel, gate-run
/// it once at a representative domain point, and score the kernel against
/// the `f64` oracle — or, with `--twiddles`, regenerate the FFT twiddle
/// ROM fully in-crossbar and gate its MRE against the float ROM.
fn run_math(
    func: Option<apim_compile::MathFn>,
    width: u32,
    lut: bool,
    iters: Option<u32>,
    segments: Option<u32>,
    twiddles: Option<usize>,
) -> Result<String, apim::ApimError> {
    use apim_math::reference as oracle;
    use std::fmt::Write as _;

    let fail = |e: apim_compile::CompileError| apim::ApimError::Runtime(e.to_string());
    let mut out = String::new();

    if let Some(n) = twiddles {
        // The ROM smoke: every entry computed by the compiled 20-bit
        // CORDIC programs, scored against the host float ROM.
        let tw = apim_workloads::mathdags::compiled_twiddles(
            n,
            &apim_compile::CompileOptions::default(),
        )
        .map_err(fail)?;
        let one = f64::from(1i32 << apim_workloads::fft::TW_SHIFT);
        let mut got = Vec::with_capacity(n);
        let mut want = Vec::with_capacity(n);
        for (k, t) in tw.iter().enumerate() {
            let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            got.push(i64::from(t.re));
            got.push(i64::from(t.im));
            want.push((angle.cos() * one).round() as i64);
            want.push((angle.sin() * one).round() as i64);
        }
        let mre = apim_workloads::quality::mean_relative_error(&want, &got);
        let max_abs = got
            .iter()
            .zip(&want)
            .map(|(g, w)| (g - w).abs())
            .max()
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "twiddles  : {n}-point FFT, {} entries from the compiled {}-bit CORDIC (Q{})",
            tw.len(),
            apim_workloads::mathdags::TWIDDLE_WIDTH,
            apim_workloads::fft::TW_SHIFT
        );
        let _ = writeln!(out, "max abs   : {max_abs} LSB vs the float ROM");
        let _ = write!(out, "mre       : {mre:.4} (gate < 0.1000)");
        if mre >= 0.10 {
            return Err(apim::ApimError::Runtime(format!(
                "compiled twiddle ROM exceeds the MRE gate\n{out}"
            )));
        }
        return Ok(out);
    }

    let func = func.expect("parse guarantees --fn when --twiddles is absent");
    let default = apim_math::default_spec(func, width);
    let mode = if lut {
        let cap = apim_math::max_log2_segments(func, width, default.frac);
        apim_compile::MathMode::Lut {
            log2_segments: segments.unwrap_or_else(|| cap.min(3)),
        }
    } else {
        match iters {
            Some(k) => apim_compile::MathMode::Cordic { iters: k },
            None => default.mode,
        }
    };
    let spec = apim_compile::MathSpec { mode, ..default };
    apim_math::validate(width, &spec)
        .map_err(|e| apim::ApimError::Runtime(format!("invalid math spec: {e}")))?;

    let mut dag = apim_compile::Dag::new(width).map_err(fail)?;
    let x = dag.input("x").map_err(fail)?;
    let m = dag.math(x, spec).map_err(fail)?;
    dag.set_root(m).map_err(fail)?;
    let program =
        apim_compile::compile(&dag, &apim_compile::CompileOptions::default()).map_err(fail)?;

    // One gate-level run at the domain's three-quarter point (π/4 for
    // trig) — nonzero, representative, deterministic.
    let sample = oracle::domain_samples(func, width, spec.frac, 5)[3];
    let inputs: std::collections::HashMap<String, u64> = [("x".to_string(), sample)].into();
    let report = program.run(&inputs).map_err(fail)?;
    let x_f = oracle::input_to_f64(func, width, spec.frac, sample);
    let got_f = oracle::output_to_f64(width, spec.frac, report.value);
    let ideal_f = oracle::truth(func, x_f);

    let _ = writeln!(
        out,
        "kernel    : {func} ({width}-bit Q{}, {})",
        spec.frac, spec.mode
    );
    let _ = writeln!(
        out,
        "sample    : {func}({x_f:.4}) = {ideal_f:.4} ideal, {got_f:.4} compiled"
    );
    let _ = writeln!(
        out,
        "cycles    : {} measured / {} predicted ({})",
        report.cycles,
        report.expected_cycles,
        if report.cycles == report.expected_cycles {
            "exact"
        } else {
            "DRIFT"
        }
    );
    let _ = writeln!(out, "energy    : {}", report.energy);
    let _ = writeln!(
        out,
        "verify    : {} micro-ops, all 5 hazard passes clean ({} warning(s))",
        report.trace_len,
        report.lint.warning_count()
    );
    // The symbolic prover replays the whole recorded trace; keep it to the
    // widths where compiled CORDIC traces stay small.
    if width <= 12 {
        let eq = program.verify_equiv(&inputs).map_err(fail)?;
        if !eq.equivalent {
            return Err(apim::ApimError::Runtime(format!(
                "equivalence check FAILED for the compiled {func} kernel\n{}",
                eq.lint
            )));
        }
        let _ = writeln!(
            out,
            "equiv     : proved over the recorded assignment ({})",
            eq.mode
        );
    } else {
        let _ = writeln!(out, "equiv     : skipped (width > 12)");
    }
    let stats = oracle::measure(width, &spec, 129)
        .map_err(|e| apim::ApimError::Runtime(format!("oracle sweep: {e}")))?;
    let _ = write!(
        out,
        "oracle    : max abs {:.3e}, max rel {:.4}, mean rel {:.4} (129 samples)",
        stats.max_abs, stats.max_rel, stats.mean_rel
    );
    Ok(out)
}

/// Builds a pool configuration from optional CLI overrides.
fn pool_config(workers: Option<usize>, queue_depth: Option<usize>) -> apim_serve::PoolConfig {
    let mut config = apim_serve::PoolConfig::default();
    if let Some(workers) = workers {
        config.workers = workers;
    }
    if let Some(depth) = queue_depth {
        config.queue_depth = depth;
    }
    config
}

/// The `verify --equiv` sweep: hand kernels through their recording
/// harnesses, plus — in the full sweep — the compiled sharpen/Sobel DAGs
/// checked through [`apim_compile::CompiledProgram::verify_equiv`] with
/// deterministic input bindings.
fn run_verify_equiv(
    target: Option<apim_verify::EquivTarget>,
    widths: &[u32],
    counterexample: bool,
) -> Result<String, apim::ApimError> {
    use std::collections::HashMap;
    use std::fmt::Write as _;

    struct Row {
        name: &'static str,
        width: u32,
        detail: String,
        report: apim_verify::EquivReport,
    }
    let fail = |e: apim_compile::CompileError| apim::ApimError::Runtime(e.to_string());

    let targets: Vec<apim_verify::EquivTarget> = match target {
        Some(t) => vec![t],
        None => apim_verify::EquivTarget::ALL.to_vec(),
    };
    let mut rows = Vec::new();
    for t in &targets {
        for &w in widths {
            for run in apim_verify::verify_equiv_kernel(*t, w)? {
                rows.push(Row {
                    name: run.target.name(),
                    width: w,
                    detail: run.detail,
                    report: run.report,
                });
            }
        }
    }
    if target.is_none() {
        for &w in widths {
            for (name, dag) in [
                (
                    "sharpen-dag",
                    apim_workloads::dags::sharpen_dag_at(w).map_err(fail)?,
                ),
                (
                    "sobel-dag",
                    apim_workloads::dags::sobel_gradient_dag_at(w).map_err(fail)?,
                ),
            ] {
                let program = apim_compile::compile(&dag, &apim_compile::CompileOptions::default())
                    .map_err(fail)?;
                let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                let names = program.dag().inputs().to_vec();
                let inputs: HashMap<String, u64> = names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.to_string(), (3 * i as u64 + 7) & mask))
                    .collect();
                let report = program.verify_equiv(&inputs).map_err(fail)?;
                rows.push(Row {
                    name,
                    width: w,
                    detail: format!("{} inputs (compiled)", names.len()),
                    report,
                });
            }
        }
        // The transcendental microkernels join the full sweep at a fixed
        // width 8: wide enough to exercise the CORDIC/restoring-isqrt
        // expansions, small enough that replaying their multi-thousand-op
        // traces stays cheap.
        for (name, func, input) in [
            (
                "sin-dag",
                apim_compile::MathFn::Sin,
                apim_math::consts::half_pi_q(5) / 3,
            ),
            (
                "cos-dag",
                apim_compile::MathFn::Cos,
                apim_math::consts::half_pi_q(5) / 5,
            ),
            ("sqrt-dag", apim_compile::MathFn::Sqrt, 100),
        ] {
            let w = 8u32;
            let spec = apim_math::default_spec(func, w);
            let mut dag = apim_compile::Dag::new(w).map_err(fail)?;
            let x = dag.input("x").map_err(fail)?;
            let m = dag.math(x, spec).map_err(fail)?;
            dag.set_root(m).map_err(fail)?;
            let program = apim_compile::compile(&dag, &apim_compile::CompileOptions::default())
                .map_err(fail)?;
            let inputs: HashMap<String, u64> =
                [("x".to_string(), apim_math::to_pattern(input, w))].into();
            let report = program.verify_equiv(&inputs).map_err(fail)?;
            rows.push(Row {
                name,
                width: w,
                detail: format!("{} (compiled)", spec.mode),
                report,
            });
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:<22} {:>5} {:>7} {:<18} verdict",
        "kernel", "width", "detail", "bits", "nodes", "mode"
    );
    let mut failures = 0usize;
    for row in &rows {
        let verdict = if row.report.equivalent {
            "equivalent".to_string()
        } else {
            failures += 1;
            match (&row.report.counterexample, counterexample) {
                (Some(cx), true) => format!("MISMATCH {cx}"),
                (Some(_), false) => "MISMATCH (re-run with --counterexample)".to_string(),
                (None, _) => format!("FAILED ({})", row.report.lint),
            }
        };
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:<22} {:>5} {:>7} {:<18} {}",
            row.name,
            row.width,
            row.detail,
            row.report.input_bits,
            row.report.nodes,
            row.report.mode.to_string(),
            verdict
        );
    }
    if failures > 0 {
        return Err(apim::ArchError::VerificationFailed {
            errors: failures,
            detail: out,
        }
        .into());
    }
    let _ = write!(out, "{} checks, all equivalent", rows.len());
    Ok(out)
}

/// The `faults` command: either a fault-injection campaign over the
/// kernel suite (gated — ECC-on runs must be bit-exact) or the endurance
/// demo (gated — rotation must at least halve hottest-cell wear and the
/// remapped adder must re-verify end to end).
fn run_faults(
    density: f64,
    ecc: EccMode,
    seed: u64,
    trials: usize,
    wear_demo: bool,
) -> Result<String, apim::ApimError> {
    use std::fmt::Write as _;

    let mut out = String::new();
    if wear_demo {
        let wear = apim_reliability::run_wear_demo(36)?;
        let _ = writeln!(out, "wear-leveling: {wear}");
        let remap = apim_reliability::remap_adder_demo(16)?;
        let moved: Vec<String> = remap
            .remapped
            .iter()
            .map(|(worn, spare)| format!("{worn}->{spare}"))
            .collect();
        let _ = writeln!(
            out,
            "row remap    : retired {} worn row(s) [{}]",
            remap.remapped.len(),
            moved.join(", ")
        );
        let _ = write!(
            out,
            "re-certify   : {} hazard error(s), equivalence {}",
            remap.verify_errors,
            if remap.equiv_ok { "proved" } else { "FAILED" }
        );
        if wear.reduction() < 2.0 {
            return Err(apim::ApimError::Runtime(format!(
                "wear-leveling gate: expected >= 2.0x hottest-cell reduction, got {:.1}x",
                wear.reduction()
            )));
        }
        if remap.verify_errors > 0 || !remap.equiv_ok {
            return Err(apim::ApimError::Runtime(format!(
                "remapped adder failed re-certification\n{out}"
            )));
        }
        return Ok(out);
    }

    let modes: &[bool] = match ecc {
        EccMode::On => &[true],
        EccMode::Off => &[false],
        EccMode::Both => &[true, false],
    };
    for &ecc_on in modes {
        let report = apim_reliability::run_campaign(&apim_reliability::CampaignConfig {
            seed,
            density,
            ecc: ecc_on,
            trials,
            ..apim_reliability::CampaignConfig::default()
        })?;
        let _ = write!(out, "{report}");
        // A protected run that still diverges is a broken ECC layer, not a
        // data point — fail loudly. Unprotected divergence is the point of
        // the comparison and is only reported.
        if ecc_on && !report.all_bit_exact() {
            return Err(apim::ApimError::Runtime(format!(
                "ECC-on campaign diverged from the fault-free digests\n{report}"
            )));
        }
    }
    out.pop();
    Ok(out)
}

/// Executes a command, returning the text to print.
///
/// # Errors
///
/// Propagates simulator errors (invalid modes, oversized datasets) as
/// [`apim::ApimError`].
pub fn execute(command: &Command) -> Result<String, apim::ApimError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    match command {
        Command::Help => out.push_str(USAGE),
        Command::Multiply { a, b, mode } => {
            let apim = Apim::default();
            mode.validate(apim.config().operand_bits)
                .map_err(|e| apim::ArchError::InvalidConfig(e.to_string()))?;
            let r = apim.multiply(*a, *b, *mode);
            let exact = u128::from(*a) * u128::from(*b);
            let _ = writeln!(out, "product   : {}", r.product);
            let _ = writeln!(out, "exact     : {exact}");
            let _ = writeln!(
                out,
                "rel error : {:.3e}",
                if exact == 0 {
                    0.0
                } else {
                    r.product.abs_diff(exact) as f64 / exact as f64
                }
            );
            let _ = writeln!(out, "cycles    : {}", r.cost.cycles.get());
            let _ = writeln!(out, "energy    : {}", r.cost.energy);
            let _ = write!(out, "EDP       : {}", r.edp);
        }
        Command::Run { app, size_mb, mode } => {
            let apim = Apim::default();
            let report = apim.run_with_mode(*app, size_mb << 20, *mode)?;
            let _ = write!(out, "{report}");
        }
        Command::Tune { app } => {
            let apim = Apim::default();
            let outcome = apim.tune(*app);
            let report = apim.run_with_mode(*app, 1 << 30, outcome.mode)?;
            let _ = writeln!(
                out,
                "{}: settled on {} after {} trials",
                app.name(),
                outcome.mode,
                outcome.trials
            );
            let _ = write!(out, "at 1 GiB: {}", report.comparison);
        }
        Command::Sweep { app } => {
            let apim = Apim::default();
            let _ = writeln!(
                out,
                "{}: dataset sweep (energy x / speedup vs GPU)",
                app.name()
            );
            for mb in [32u64, 64, 128, 256, 512, 1024] {
                let r = apim.run_with_mode(*app, mb << 20, PrecisionMode::Exact)?;
                let _ = writeln!(
                    out,
                    "{mb:>6} MiB: {:>6.1}x / {:>5.2}x",
                    r.comparison.energy_improvement, r.comparison.speedup
                );
            }
            out.pop();
        }
        Command::SelfTest { samples } => {
            let apim = Apim::default();
            let report = apim.self_test(*samples, 0xA11C)?;
            let _ = writeln!(
                out,
                "self-test: {}/{} multiplications bit-exact vs reference",
                report.samples - report.mismatches,
                report.samples
            );
            let _ = writeln!(
                out,
                "hottest cell absorbed {} writes",
                report.max_cell_writes
            );
            for h in &report.hotspots {
                let _ = writeln!(
                    out,
                    "  hotspot: block {} row {:>2} col {:>3} — {} writes",
                    h.block, h.row, h.col, h.writes
                );
            }
            let _ = write!(
                out,
                "verdict: {}",
                if report.passed() { "PASS" } else { "FAIL" }
            );
        }
        Command::Verify {
            kernel,
            equiv,
            equiv_target,
            width,
            counterexample,
        } => {
            let widths: Vec<u32> = match width {
                Some(w) => vec![*w],
                None => apim_verify::DEFAULT_WIDTHS.to_vec(),
            };
            if *equiv {
                let _ = write!(
                    out,
                    "{}",
                    run_verify_equiv(*equiv_target, &widths, *counterexample)?
                );
            } else {
                let runs = match kernel {
                    Some(kernel) => widths
                        .iter()
                        .map(|&w| apim_verify::verify_kernel(*kernel, w))
                        .collect::<Result<Vec<_>, _>>()?,
                    None => apim_verify::verify_all(&widths)?,
                };
                let errors: usize = runs.iter().map(|r| r.report.error_count()).sum();
                if errors > 0 {
                    return Err(apim::ArchError::VerificationFailed {
                        errors,
                        detail: apim_verify::render(&runs),
                    }
                    .into());
                }
                let _ = write!(out, "{}", apim_verify::render(&runs));
            }
        }
        Command::Compile {
            target,
            bindings,
            compare,
            batch,
        } => {
            out = run_compile(target, bindings, *compare, *batch)?;
        }
        Command::Math {
            func,
            width,
            lut,
            iters,
            segments,
            twiddles,
        } => {
            out = run_math(*func, *width, *lut, *iters, *segments, *twiddles)?;
        }
        Command::Serve {
            path,
            workers,
            queue_depth,
        } => {
            let text = std::fs::read_to_string(path).map_err(|e| {
                apim::ApimError::Runtime(format!("cannot read request file `{path}`: {e}"))
            })?;
            let mut requests = Vec::new();
            for (number, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                requests.push(apim_serve::Request::parse_line(line).map_err(|e| {
                    apim::ApimError::Runtime(format!("{path}:{}: {e}", number + 1))
                })?);
            }
            let pool = apim_serve::Pool::new(pool_config(*workers, *queue_depth))?;
            let responses = pool.run_all(requests)?;
            for response in &responses {
                let verdict = match &response.result {
                    Ok(output) => output.summary(),
                    Err(e) => format!("error: {e}"),
                };
                let _ = writeln!(
                    out,
                    "#{:<4} @{:<3} {:>8.1?}  {verdict}",
                    response.id, response.tenant.0, response.latency
                );
            }
            let _ = write!(out, "{}", pool.metrics().snapshot());
        }
        Command::Loadgen {
            requests,
            workers,
            seed,
            queue_depth,
        } => {
            let report = apim_serve::loadgen::run(&apim_serve::loadgen::LoadgenConfig {
                requests: *requests as u64,
                seed: *seed,
                pool: pool_config(*workers, *queue_depth),
            })?;
            let _ = write!(out, "{report}");
        }
        Command::Node {
            addr,
            workers,
            queue_depth,
            for_secs,
            transport,
        } => {
            let node = apim_cluster::Node::spawn(apim_cluster::NodeConfig {
                addr: addr.clone(),
                pool: pool_config(*workers, *queue_depth),
                transport: *transport,
                ..apim_cluster::NodeConfig::default()
            })
            .map_err(|e| apim::ApimError::Runtime(format!("cannot start node: {e}")))?;
            // The daemon announces its address up front (port 0 resolves
            // to a real port) so scripts can capture it before blocking.
            println!("apim-node listening on {}", node.addr());
            match for_secs {
                Some(secs) => std::thread::sleep(std::time::Duration::from_secs(*secs)),
                None => loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                },
            }
            let snapshot = node.metrics().snapshot();
            node.shutdown();
            let _ = write!(out, "{snapshot}");
        }
        Command::ClusterLoadgen {
            nodes,
            requests,
            seed,
            concurrency,
        } => {
            let report = apim_cluster::loadgen::run(&apim_cluster::loadgen::ClusterLoadgenConfig {
                requests: *requests as u64,
                seed: *seed,
                concurrency: *concurrency,
                cluster: apim_cluster::ClusterConfig::new(nodes.clone()),
            })
            .map_err(|e| apim::ApimError::Runtime(format!("cluster-loadgen: {e}")))?;
            let _ = write!(out, "{report}");
            // Rejections are backpressure doing its job; lost requests mean
            // no node could answer — that is an infrastructure failure.
            if report.lost > 0 {
                return Err(apim::ApimError::Runtime(format!(
                    "cluster-loadgen: {} of {} requests lost\n{report}",
                    report.lost, report.offered
                )));
            }
        }
        Command::ClusterSmoke {
            nodes,
            requests,
            workers,
            seed,
        } => {
            let report = apim_cluster::loadgen::smoke(&apim_cluster::loadgen::SmokeConfig {
                nodes: *nodes,
                requests: *requests as u64,
                seed: *seed,
                workers: workers.unwrap_or(2),
                kill_after: None,
            })
            .map_err(|e| apim::ApimError::Runtime(format!("cluster-smoke: {e}")))?;
            let _ = write!(out, "{report}");
            if !report.passed() {
                return Err(apim::ApimError::Runtime(format!(
                    "cluster-smoke FAILED: {} of {} requests lost or rejected",
                    report.loadgen.lost + report.loadgen.rejected,
                    report.loadgen.offered
                )));
            }
        }
        Command::Faults {
            density,
            ecc,
            seed,
            trials,
            wear_demo,
        } => {
            out = run_faults(*density, *ecc, *seed, *trials, *wear_demo)?;
        }
        Command::Repro { exhibit } => {
            use apim_bench as b;
            let all = exhibit == "all";
            if all || exhibit == "fig4" {
                let _ = writeln!(out, "{}", b::fig4::render(&b::fig4::generate()));
            }
            if all || exhibit == "fig5" {
                let _ = writeln!(out, "{}", b::fig5::render(&b::fig5::generate()));
            }
            if all || exhibit == "fig5sim" {
                let _ = writeln!(out, "{}", b::fig5_sim::render(&b::fig5_sim::generate()));
            }
            if all || exhibit == "fig6" {
                let _ = writeln!(out, "{}", b::fig6::render(&b::fig6::generate()));
            }
            if all || exhibit == "table1" {
                let _ = writeln!(out, "{}", b::table1::render(&b::table1::generate()));
            }
            if all || exhibit == "headline" {
                let _ = writeln!(out, "{}", b::headline::render(&b::headline::generate()));
            }
            if all || exhibit == "ablation" {
                let _ = writeln!(out, "{}", b::ablation::render(&b::ablation::generate()));
            }
            if out.is_empty() {
                out = format!("unknown exhibit `{exhibit}`\n\n{USAGE}");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_multiply_with_modes() {
        assert_eq!(
            parse(&args("multiply 3 5")).unwrap(),
            Command::Multiply {
                a: 3,
                b: 5,
                mode: PrecisionMode::Exact
            }
        );
        assert_eq!(
            parse(&args("multiply 3 5 --relax 16")).unwrap(),
            Command::Multiply {
                a: 3,
                b: 5,
                mode: PrecisionMode::LastStage { relax_bits: 16 }
            }
        );
        assert_eq!(
            parse(&args("multiply 3 5 --mask 4")).unwrap(),
            Command::Multiply {
                a: 3,
                b: 5,
                mode: PrecisionMode::FirstStage { masked_bits: 4 }
            }
        );
    }

    #[test]
    fn parses_all_app_aliases() {
        for (name, app) in [
            ("sobel", App::Sobel),
            ("ROBERT", App::Robert),
            ("fft", App::Fft),
            ("dwt", App::DwtHaar1d),
            ("dwthaar1d", App::DwtHaar1d),
            ("sharpen", App::Sharpen),
            ("quasir", App::QuasiRandom),
        ] {
            assert_eq!(
                parse(&args(&format!("tune {name}"))).unwrap(),
                Command::Tune { app },
                "{name}"
            );
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&args("multiply 3")).is_err());
        assert!(parse(&args("multiply x y")).is_err());
        assert!(parse(&args("run nosuchapp 64")).is_err());
        assert!(parse(&args("run sobel sixtyfour")).is_err());
        assert!(parse(&args("multiply 1 2 --frob 3")).is_err());
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("tune")).is_err());
    }

    #[test]
    fn empty_and_help_yield_usage() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
        let text = execute(&Command::Help).unwrap();
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn multiply_executes_and_reports() {
        let out = execute(&Command::Multiply {
            a: 1000,
            b: 2000,
            mode: PrecisionMode::Exact,
        })
        .unwrap();
        assert!(out.contains("product   : 2000000"));
        assert!(out.contains("cycles"));
    }

    #[test]
    fn run_reports_comparison() {
        let out = execute(&Command::Run {
            app: App::Robert,
            size_mb: 256,
            mode: PrecisionMode::Exact,
        })
        .unwrap();
        assert!(out.contains("Robert"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn oversized_run_errors_cleanly() {
        let err = execute(&Command::Run {
            app: App::Fft,
            size_mb: 1 << 20,
            mode: PrecisionMode::Exact,
        })
        .unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn invalid_mode_reported_not_panicking() {
        let err = execute(&Command::Multiply {
            a: 1,
            b: 2,
            mode: PrecisionMode::LastStage { relax_bits: 65 },
        })
        .unwrap_err();
        assert!(err.to_string().contains("invalid"));
    }

    #[test]
    fn sweep_lists_all_sizes() {
        let out = execute(&Command::Sweep {
            app: App::DwtHaar1d,
        })
        .unwrap();
        for mb in ["32", "64", "128", "256", "512", "1024"] {
            assert!(out.contains(mb), "{mb} missing");
        }
    }

    #[test]
    fn selftest_parses_and_passes() {
        assert_eq!(
            parse(&args("selftest")).unwrap(),
            Command::SelfTest { samples: 16 }
        );
        assert_eq!(
            parse(&args("selftest 4")).unwrap(),
            Command::SelfTest { samples: 4 }
        );
        assert!(parse(&args("selftest four")).is_err());
        let out = execute(&Command::SelfTest { samples: 4 }).unwrap();
        assert!(out.contains("PASS"), "{out}");
    }

    /// The pre-`--equiv` hazard sweep with everything defaulted.
    fn hazard_verify(kernel: Option<apim_verify::Kernel>) -> Command {
        Command::Verify {
            kernel,
            equiv: false,
            equiv_target: None,
            width: None,
            counterexample: false,
        }
    }

    #[test]
    fn verify_parses_and_sweeps_clean() {
        assert_eq!(parse(&args("verify")).unwrap(), hazard_verify(None));
        assert_eq!(parse(&args("verify --all")).unwrap(), hazard_verify(None));
        assert_eq!(
            parse(&args("verify adder")).unwrap(),
            hazard_verify(Some(apim_verify::Kernel::SerialAdder))
        );
        assert!(parse(&args("verify nosuchkernel")).is_err());
        assert!(parse(&args("verify adder csa")).is_err());
        let out = execute(&hazard_verify(Some(apim_verify::Kernel::CsaGroup))).unwrap();
        assert!(out.contains("clean"), "{out}");
        assert_eq!(out.matches("csa").count(), 3, "one row per width: {out}");
    }

    #[test]
    fn verify_equiv_parses_flags() {
        assert_eq!(
            parse(&args("verify --equiv")).unwrap(),
            Command::Verify {
                kernel: None,
                equiv: true,
                equiv_target: None,
                width: None,
                counterexample: false,
            }
        );
        assert_eq!(
            parse(&args("verify --equiv divider --width 8 --counterexample")).unwrap(),
            Command::Verify {
                kernel: None,
                equiv: true,
                equiv_target: Some(apim_verify::EquivTarget::Divider),
                width: Some(8),
                counterexample: true,
            }
        );
        assert_eq!(
            parse(&args("verify adder --width 16")).unwrap(),
            Command::Verify {
                kernel: Some(apim_verify::Kernel::SerialAdder),
                equiv: false,
                equiv_target: None,
                width: Some(16),
                counterexample: false,
            }
        );
        assert!(parse(&args("verify --equiv csa")).is_err(), "no equiv spec");
        assert!(parse(&args("verify --equiv --width 2")).is_err());
        assert!(parse(&args("verify --equiv --width")).is_err());
        assert!(
            parse(&args("verify --counterexample")).is_err(),
            "requires --equiv"
        );
        assert!(parse(&args("verify --frobnicate")).is_err());
    }

    #[test]
    fn verify_equiv_executes_one_target() {
        let out = execute(&Command::Verify {
            kernel: None,
            equiv: true,
            equiv_target: Some(apim_verify::EquivTarget::SerialAdder),
            width: Some(8),
            counterexample: false,
        })
        .unwrap();
        assert!(out.contains("equivalent"), "{out}");
        assert!(out.contains("exhaustive(65536)"), "{out}");
    }

    #[test]
    fn serve_parses_path_and_pool_flags() {
        assert_eq!(
            parse(&args("serve reqs.txt")).unwrap(),
            Command::Serve {
                path: "reqs.txt".into(),
                workers: None,
                queue_depth: None,
            }
        );
        assert_eq!(
            parse(&args("serve reqs.txt --workers 4 --queue-depth 32")).unwrap(),
            Command::Serve {
                path: "reqs.txt".into(),
                workers: Some(4),
                queue_depth: Some(32),
            }
        );
        assert!(parse(&args("serve")).is_err(), "file is mandatory");
        assert!(
            parse(&args("serve --workers 4")).is_err(),
            "flag is no file"
        );
        assert!(parse(&args("serve reqs.txt --workers")).is_err());
        assert!(parse(&args("serve reqs.txt --seed 7")).is_err());
    }

    #[test]
    fn loadgen_parses_defaults_and_overrides() {
        assert_eq!(
            parse(&args("loadgen")).unwrap(),
            Command::Loadgen {
                requests: 200,
                workers: None,
                seed: 7,
                queue_depth: None,
            }
        );
        assert_eq!(
            parse(&args(
                "loadgen --requests 50 --workers 2 --seed 99 --queue-depth 64"
            ))
            .unwrap(),
            Command::Loadgen {
                requests: 50,
                workers: Some(2),
                seed: 99,
                queue_depth: Some(64),
            }
        );
        assert!(parse(&args("loadgen --requests")).is_err());
        assert!(parse(&args("loadgen --frob 3")).is_err());
        assert!(parse(&args("loadgen --seed banana")).is_err());
    }

    #[test]
    fn serve_executes_a_request_file() {
        let dir = std::env::temp_dir().join("apim-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("requests.txt");
        std::fs::write(
            &path,
            "# smoke requests\n\
             multiply 1000 2000\n\
             @1 run quasir 32 --relax 8\n\
             \n\
             mac 3 4 5 6\n\
             @2 compile width 16; in a; out a * 5 + 2\n",
        )
        .unwrap();
        let out = execute(&Command::Serve {
            path: path.to_string_lossy().into_owned(),
            workers: Some(2),
            queue_depth: Some(16),
        })
        .unwrap();
        assert!(out.contains("product 2000000"), "{out}");
        assert!(out.contains("mac x2"), "{out}");
        // Single input `a` defaults to 1: 1·5 + 2 = 7.
        assert!(out.contains("value 7 in"), "{out}");
        assert!(out.contains("apim_serve_completed_total 4"), "{out}");
        assert!(out.contains("apim_serve_failed_total 0"), "{out}");

        let err = execute(&Command::Serve {
            path: dir.join("missing.txt").to_string_lossy().into_owned(),
            workers: None,
            queue_depth: None,
        })
        .unwrap_err();
        assert!(err.to_string().contains("cannot read"), "{err}");
    }

    #[test]
    fn loadgen_executes_and_reports_throughput() {
        let out = execute(&Command::Loadgen {
            requests: 20,
            workers: Some(2),
            seed: 7,
            queue_depth: Some(64),
        })
        .unwrap();
        assert!(out.contains("20 offered"), "{out}");
        assert!(out.contains("req/s"), "{out}");
        assert!(out.contains("apim_serve_completed_total"), "{out}");
        // Tail latency and admission accounting are part of the report.
        assert!(out.contains("latency: p50 "), "{out}");
        assert!(out.contains(" / p95 "), "{out}");
        assert!(out.contains(" / p99 "), "{out}");
        assert!(out.contains("rejected at admission: 0 of 20"), "{out}");
    }

    #[test]
    fn node_parses_defaults_and_overrides() {
        assert_eq!(
            parse(&args("node")).unwrap(),
            Command::Node {
                addr: "127.0.0.1:7751".into(),
                workers: None,
                queue_depth: None,
                for_secs: None,
                transport: apim_cluster::Transport::EventLoop,
            }
        );
        assert_eq!(
            parse(&args(
                "node --addr 0.0.0.0:9000 --workers 4 --queue-depth 32 --for-secs 2 \
                 --transport blocking"
            ))
            .unwrap(),
            Command::Node {
                addr: "0.0.0.0:9000".into(),
                workers: Some(4),
                queue_depth: Some(32),
                for_secs: Some(2),
                transport: apim_cluster::Transport::Blocking,
            }
        );
        assert_eq!(
            parse(&args("node --transport event-loop")).unwrap(),
            Command::Node {
                addr: "127.0.0.1:7751".into(),
                workers: None,
                queue_depth: None,
                for_secs: None,
                transport: apim_cluster::Transport::EventLoop,
            }
        );
        assert!(parse(&args("node --addr")).is_err());
        assert!(parse(&args("node --frob 3")).is_err());
        assert!(parse(&args("node --transport carrier-pigeon")).is_err());
    }

    #[test]
    fn cluster_loadgen_parses_node_list() {
        assert_eq!(
            parse(&args(
                "cluster-loadgen --nodes a:1,b:2 --requests 50 --seed 3"
            ))
            .unwrap(),
            Command::ClusterLoadgen {
                nodes: vec!["a:1".into(), "b:2".into()],
                requests: 50,
                seed: 3,
                concurrency: 8,
            }
        );
        assert!(
            parse(&args("cluster-loadgen --requests 50")).is_err(),
            "--nodes is mandatory"
        );
        assert!(parse(&args("cluster-loadgen --nodes a:1 --workers 2")).is_err());
    }

    #[test]
    fn cluster_smoke_parses_and_passes_the_gate() {
        assert_eq!(
            parse(&args("cluster-smoke")).unwrap(),
            Command::ClusterSmoke {
                nodes: 2,
                requests: 200,
                workers: None,
                seed: 7,
            }
        );
        assert!(parse(&args("cluster-smoke --queue-depth 4")).is_err());
        let out = execute(&Command::ClusterSmoke {
            nodes: 2,
            requests: 60,
            workers: Some(2),
            seed: 7,
        })
        .unwrap();
        assert!(out.contains("zero requests lost — PASS"), "{out}");
        assert!(out.contains("apim_cluster_latency_p99_us"), "{out}");
    }

    #[test]
    fn cluster_loadgen_executes_against_live_nodes() {
        let pool = apim_serve::PoolConfig {
            workers: 2,
            queue_depth: 64,
            ..apim_serve::PoolConfig::default()
        };
        let cluster = apim_cluster::LoopbackCluster::spawn(2, &pool).unwrap();
        let out = execute(&Command::ClusterLoadgen {
            nodes: cluster.addrs().to_vec(),
            requests: 30,
            seed: 7,
            concurrency: 4,
        })
        .unwrap();
        assert!(out.contains("30 offered, 30 succeeded"), "{out}");
        assert!(out.contains("apim_cluster_nodes 2"), "{out}");
        assert!(out.contains("checksum"), "{out}");
        cluster.shutdown();
    }

    #[test]
    fn faults_parses_defaults_and_overrides() {
        assert_eq!(
            parse(&args("faults")).unwrap(),
            Command::Faults {
                density: 1e-4,
                ecc: EccMode::On,
                seed: 7,
                trials: 4,
                wear_demo: false,
            }
        );
        assert_eq!(
            parse(&args(
                "faults --density 0.02 --ecc both --seed 11 --trials 2"
            ))
            .unwrap(),
            Command::Faults {
                density: 0.02,
                ecc: EccMode::Both,
                seed: 11,
                trials: 2,
                wear_demo: false,
            }
        );
        assert_eq!(
            parse(&args("faults --wear-demo")).unwrap(),
            Command::Faults {
                density: 1e-4,
                ecc: EccMode::On,
                seed: 7,
                trials: 4,
                wear_demo: true,
            }
        );
        assert!(parse(&args("faults --density")).is_err());
        assert!(
            parse(&args("faults --density 1.5")).is_err(),
            "out of range"
        );
        assert!(parse(&args("faults --density banana")).is_err());
        assert!(parse(&args("faults --ecc maybe")).is_err());
        assert!(parse(&args("faults --frob 3")).is_err());
    }

    #[test]
    fn math_parses_kernel_and_twiddle_forms() {
        assert_eq!(
            parse(&args("math --fn sin --width 10 --iters 7")).unwrap(),
            Command::Math {
                func: Some(apim_compile::MathFn::Sin),
                width: 10,
                lut: false,
                iters: Some(7),
                segments: None,
                twiddles: None,
            }
        );
        assert_eq!(
            parse(&args("math --fn sqrt --mode lut --segments 2")).unwrap(),
            Command::Math {
                func: Some(apim_compile::MathFn::Sqrt),
                width: 16,
                lut: true,
                iters: None,
                segments: Some(2),
                twiddles: None,
            }
        );
        assert_eq!(
            parse(&args("math --twiddles 8")).unwrap(),
            Command::Math {
                func: None,
                width: 16,
                lut: false,
                iters: None,
                segments: None,
                twiddles: Some(8),
            }
        );
    }

    #[test]
    fn math_rejects_malformed_requests() {
        assert!(parse(&args("math")).is_err(), "needs --fn or --twiddles");
        assert!(parse(&args("math --fn tan")).is_err());
        assert!(parse(&args("math --fn sin --width 3")).is_err());
        assert!(parse(&args("math --fn sin --width")).is_err());
        assert!(
            parse(&args("math --fn sin --segments 2")).is_err(),
            "--segments needs --mode lut"
        );
        assert!(
            parse(&args("math --fn sin --mode lut --iters 3")).is_err(),
            "--iters is cordic-only"
        );
        assert!(
            parse(&args("math --fn sin --twiddles 8")).is_err(),
            "exclusive forms"
        );
        assert!(
            parse(&args("math --twiddles 12")).is_err(),
            "power of two required"
        );
        assert!(parse(&args("math --frob 3")).is_err());
    }

    #[test]
    fn math_reports_cost_accuracy_and_proof() {
        let out = execute(&parse(&args("math --fn sin --width 10")).unwrap()).unwrap();
        assert!(
            out.contains("kernel    : sin (10-bit Q7, cordic 7)"),
            "{out}"
        );
        assert!(out.contains("cycles"), "{out}");
        assert!(out.contains("energy"), "{out}");
        assert!(out.contains("all 5 hazard passes clean"), "{out}");
        assert!(out.contains("equiv     : proved"), "{out}");
        assert!(out.contains("mean rel"), "{out}");
    }

    #[test]
    fn math_lut_mode_skips_the_prover_above_width_12() {
        let out = execute(&parse(&args("math --fn sqrt --mode lut --width 16")).unwrap()).unwrap();
        assert!(out.contains("lut"), "{out}");
        assert!(out.contains("equiv     : skipped (width > 12)"), "{out}");
    }

    #[test]
    fn math_twiddle_smoke_passes_its_gate() {
        let out = execute(&parse(&args("math --twiddles 4")).unwrap()).unwrap();
        assert!(out.contains("twiddles  : 4-point FFT"), "{out}");
        assert!(out.contains("mre"), "{out}");
    }

    #[test]
    fn faults_campaign_is_bit_exact_with_ecc_on() {
        let out = execute(&Command::Faults {
            density: 1e-4,
            ecc: EccMode::On,
            seed: 7,
            trials: 2,
            wear_demo: false,
        })
        .unwrap();
        assert!(out.contains("ecc on"), "{out}");
        for kernel in ["adder", "multiplier", "sharpen"] {
            assert!(out.contains(kernel), "{kernel} missing: {out}");
        }
        assert!(out.contains("bit-exact"), "{out}");
        assert!(!out.contains("DIVERGED"), "{out}");
        assert!(out.contains("ecc") && out.contains("cycles"), "{out}");
    }

    #[test]
    fn faults_both_sweeps_protected_and_raw() {
        let out = execute(&Command::Faults {
            density: 1e-4,
            ecc: EccMode::Both,
            seed: 7,
            trials: 2,
            wear_demo: false,
        })
        .unwrap();
        assert!(out.contains("ecc on"), "{out}");
        assert!(out.contains("ecc off"), "{out}");
    }

    #[test]
    fn faults_raw_sweep_reports_degradation_without_failing() {
        // At 2% density the unprotected sweep must visibly degrade, and
        // that is a *measurement*, not a command failure.
        let out = execute(&Command::Faults {
            density: 0.02,
            ecc: EccMode::Off,
            seed: 7,
            trials: 2,
            wear_demo: false,
        })
        .unwrap();
        assert!(out.contains("DIVERGED"), "{out}");
        assert!(out.contains("rel_err"), "{out}");
    }

    #[test]
    fn faults_wear_demo_passes_both_gates() {
        let out = execute(&Command::Faults {
            density: 1e-4,
            ecc: EccMode::On,
            seed: 7,
            trials: 4,
            wear_demo: true,
        })
        .unwrap();
        assert!(out.contains("x reduction"), "{out}");
        assert!(out.contains("retired"), "{out}");
        assert!(out.contains("0 hazard error(s)"), "{out}");
        assert!(out.contains("equivalence proved"), "{out}");
    }

    #[test]
    fn selftest_surfaces_wear_hotspots() {
        let out = execute(&Command::SelfTest { samples: 4 }).unwrap();
        assert_eq!(out.matches("hotspot:").count(), 3, "{out}");
        assert!(out.contains("writes"), "{out}");
    }

    #[test]
    fn repro_unknown_exhibit_prints_usage() {
        let out = execute(&Command::Repro {
            exhibit: "fig99".into(),
        })
        .unwrap();
        assert!(out.contains("unknown exhibit"));
    }

    #[test]
    fn repro_fig6_renders() {
        let out = execute(&Command::Repro {
            exhibit: "fig6".into(),
        })
        .unwrap();
        assert!(out.contains("Figure 6"));
    }

    #[test]
    fn repro_ablation_renders() {
        let out = execute(&Command::Repro {
            exhibit: "ablation".into(),
        })
        .unwrap();
        assert!(out.contains("Ablation 1"));
    }

    #[test]
    fn compile_parses_targets_and_flags() {
        assert_eq!(
            parse(&args("compile sharpen")).unwrap(),
            Command::Compile {
                target: "sharpen".into(),
                bindings: vec![],
                compare: false,
                batch: 1,
            }
        );
        assert_eq!(
            parse(&args("compile sobel --compare --set l0=4096 --set r0=8192")).unwrap(),
            Command::Compile {
                target: "sobel".into(),
                bindings: vec![("l0".into(), 4096), ("r0".into(), 8192)],
                compare: true,
                batch: 1,
            }
        );
        assert!(parse(&args("compile")).is_err(), "target is mandatory");
        assert!(
            parse(&args("compile --compare")).is_err(),
            "flag is no target"
        );
        assert!(parse(&args("compile sharpen --set")).is_err());
        assert!(parse(&args("compile sharpen --set c")).is_err(), "needs =");
        assert!(parse(&args("compile sharpen --set c=abc")).is_err());
        assert!(parse(&args("compile sharpen --frob")).is_err());
    }

    #[test]
    fn compile_parses_batch_lane_counts() {
        assert_eq!(
            parse(&args("compile sharpen --batch 64")).unwrap(),
            Command::Compile {
                target: "sharpen".into(),
                bindings: vec![],
                compare: false,
                batch: 64,
            }
        );
        assert_eq!(
            parse(&args("compile sobel --batch 1 --compare")).unwrap(),
            Command::Compile {
                target: "sobel".into(),
                bindings: vec![],
                compare: true,
                batch: 1,
            }
        );
        assert!(parse(&args("compile sharpen --batch")).is_err(), "needs N");
        assert!(parse(&args("compile sharpen --batch 0")).is_err());
        assert!(parse(&args("compile sharpen --batch 65")).is_err());
        assert!(parse(&args("compile sharpen --batch many")).is_err());
    }

    #[test]
    fn compile_batch_runs_all_lanes_bit_exact() {
        let out = execute(&Command::Compile {
            target: "sharpen".into(),
            bindings: vec![("c".into(), 5 << 12)],
            compare: true,
            batch: 8,
        })
        .unwrap();
        assert!(out.contains("x8 lanes"), "{out}");
        assert!(
            out.contains("8 lane(s), all bit-exact vs per-lane references"),
            "{out}"
        );
        assert!(out.contains("(exact) for the whole batch"), "{out}");
        assert!(out.contains("hazard passes clean"), "{out}");
        assert!(out.contains("x per instance"), "{out}");
    }

    #[test]
    fn compile_builtin_reports_compare_gap() {
        let out = execute(&Command::Compile {
            target: "sharpen".into(),
            bindings: vec![("c".into(), 5 << 12)],
            compare: true,
            batch: 1,
        })
        .unwrap();
        assert!(out.contains("bit-exact"), "{out}");
        assert!(out.contains("(exact)"), "{out}");
        assert!(out.contains("hazard passes clean"), "{out}");
        assert!(out.contains("c=20480"), "{out}");
        assert!(out.contains("% gap"), "{out}");
    }

    #[test]
    fn compile_rejects_unknown_input_binding() {
        let err = execute(&Command::Compile {
            target: "sobel".into(),
            bindings: vec![("nosuch".into(), 1)],
            compare: false,
            batch: 1,
        })
        .unwrap_err();
        assert!(err.to_string().contains("no input `nosuch`"), "{err}");
    }

    #[test]
    fn compile_runs_a_program_file_round_trip() {
        let dir = std::env::temp_dir().join("apim-cli-compile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dot2.apim");
        let text = "# two-tap dot product\n\
                    width 16\n\
                    in a\n\
                    in b\n\
                    let p = a * 3 + b * 5\n\
                    out (p << 2) >> 1\n";
        std::fs::write(&path, text).unwrap();

        // The program file parses to the same DAG the library parser builds,
        // and the compiled result matches the reference evaluator.
        let direct = apim_compile::parse_program(text).unwrap();
        let rendered = apim_compile::render_program(&direct);
        assert_eq!(
            apim_compile::parse_program(&rendered).unwrap().dag,
            direct.dag
        );

        let out = execute(&Command::Compile {
            target: path.to_string_lossy().into_owned(),
            bindings: vec![("a".into(), 100), ("b".into(), 7)],
            compare: false,
            batch: 1,
        })
        .unwrap();
        // (100·3 + 7·5) << 2 >> 1 = 335·2 = 670
        assert!(out.contains("value     : 670"), "{out}");
        assert!(out.contains("bit-exact"), "{out}");

        let compared = execute(&Command::Compile {
            target: path.to_string_lossy().into_owned(),
            bindings: vec![],
            compare: true,
            batch: 1,
        })
        .unwrap();
        assert!(compared.contains("no hand-written baseline"), "{compared}");
    }

    #[test]
    fn compile_surfaces_parse_errors_with_position() {
        let dir = std::env::temp_dir().join("apim-cli-compile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.apim");
        std::fs::write(&path, "width 16\nout 1 +\n").unwrap();
        let err = execute(&Command::Compile {
            target: path.to_string_lossy().into_owned(),
            bindings: vec![],
            compare: false,
            batch: 1,
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("broken.apim:2:"), "{msg}");

        let missing = execute(&Command::Compile {
            target: dir.join("nope.apim").to_string_lossy().into_owned(),
            bindings: vec![],
            compare: false,
            batch: 1,
        })
        .unwrap_err();
        assert!(missing.to_string().contains("cannot read"), "{missing}");
    }
}
