//! Command layer of the `apim-cli` binary.
//!
//! Parsing and execution are plain functions over strings so the whole
//! surface is unit-testable; `src/bin/main.rs` is a thin shell around
//! [`parse`] + [`execute`].
//!
//! ```text
//! apim-cli multiply 1000003 2000029 --relax 16
//! apim-cli run sobel 512 --relax 8
//! apim-cli tune fft
//! apim-cli sweep robert
//! apim-cli repro table1
//! ```

#![deny(missing_docs)]

use apim::prelude::*;
use apim::App;
use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// In-memory multiplication of two operands.
    Multiply {
        /// Multiplicand.
        a: u64,
        /// Multiplier.
        b: u64,
        /// Precision mode.
        mode: PrecisionMode,
    },
    /// One application over a resident dataset.
    Run {
        /// The application.
        app: App,
        /// Dataset size in MiB.
        size_mb: u64,
        /// Precision mode.
        mode: PrecisionMode,
    },
    /// The §4.1 adaptive QoS loop for one application.
    Tune {
        /// The application.
        app: App,
    },
    /// Dataset-size sweep (the Figure 5 view) for one application.
    Sweep {
        /// The application.
        app: App,
    },
    /// Regenerate a paper exhibit (`fig4|fig5|fig6|table1|headline|all`).
    Repro {
        /// The exhibit name.
        exhibit: String,
    },
    /// Gate-level device self-test.
    SelfTest {
        /// Number of random multiplications to verify.
        samples: u32,
    },
    /// Static hazard analysis of the gate-level microprograms.
    Verify {
        /// Kernel to lint; `None` sweeps them all.
        kernel: Option<apim_verify::Kernel>,
    },
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
apim-cli — the APIM (DAC'17) processing-in-memory simulator

USAGE:
  apim-cli multiply <a> <b> [--relax M | --mask F]
  apim-cli run <app> <size-mb> [--relax M | --mask F]
  apim-cli tune <app>
  apim-cli sweep <app>
  apim-cli repro <fig4|fig5|fig5sim|fig6|table1|headline|ablation|all>
  apim-cli selftest [samples]
  apim-cli verify [--all | gates|adder|csa|wallace|multiplier|mac]
  apim-cli help

APPS: sobel | robert | fft | dwt | sharpen | quasir";

fn parse_app(name: &str) -> Result<App, ParseError> {
    match name.to_ascii_lowercase().as_str() {
        "sobel" => Ok(App::Sobel),
        "robert" => Ok(App::Robert),
        "fft" => Ok(App::Fft),
        "dwt" | "dwthaar1d" => Ok(App::DwtHaar1d),
        "sharpen" => Ok(App::Sharpen),
        "quasir" | "quasirandom" => Ok(App::QuasiRandom),
        other => Err(ParseError(format!(
            "unknown app `{other}` (expected sobel|robert|fft|dwt|sharpen|quasir)"
        ))),
    }
}

fn parse_mode(rest: &[String]) -> Result<PrecisionMode, ParseError> {
    match rest {
        [] => Ok(PrecisionMode::Exact),
        [flag, value] if flag == "--relax" => {
            let m: u8 = value
                .parse()
                .map_err(|_| ParseError(format!("invalid relax bits `{value}`")))?;
            Ok(PrecisionMode::LastStage { relax_bits: m })
        }
        [flag, value] if flag == "--mask" => {
            let f: u8 = value
                .parse()
                .map_err(|_| ParseError(format!("invalid mask bits `{value}`")))?;
            Ok(PrecisionMode::FirstStage { masked_bits: f })
        }
        other => Err(ParseError(format!("unexpected arguments: {other:?}"))),
    }
}

fn parse_u64(value: &str, what: &str) -> Result<u64, ParseError> {
    value
        .parse()
        .map_err(|_| ParseError(format!("invalid {what} `{value}`")))
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] with a user-facing message for anything the
/// grammar above rejects.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    match args {
        [] => Ok(Command::Help),
        [cmd, rest @ ..] => match cmd.as_str() {
            "help" | "--help" | "-h" => Ok(Command::Help),
            "multiply" => match rest {
                [a, b, mode @ ..] => Ok(Command::Multiply {
                    a: parse_u64(a, "multiplicand")?,
                    b: parse_u64(b, "multiplier")?,
                    mode: parse_mode(mode)?,
                }),
                _ => Err(ParseError("multiply needs two operands".into())),
            },
            "run" => match rest {
                [app, size, mode @ ..] => Ok(Command::Run {
                    app: parse_app(app)?,
                    size_mb: parse_u64(size, "dataset size")?,
                    mode: parse_mode(mode)?,
                }),
                _ => Err(ParseError("run needs an app and a size in MiB".into())),
            },
            "tune" => match rest {
                [app] => Ok(Command::Tune {
                    app: parse_app(app)?,
                }),
                _ => Err(ParseError("tune needs exactly one app".into())),
            },
            "sweep" => match rest {
                [app] => Ok(Command::Sweep {
                    app: parse_app(app)?,
                }),
                _ => Err(ParseError("sweep needs exactly one app".into())),
            },
            "selftest" => match rest {
                [] => Ok(Command::SelfTest { samples: 16 }),
                [n] => Ok(Command::SelfTest {
                    samples: parse_u64(n, "sample count")?.min(10_000) as u32,
                }),
                _ => Err(ParseError("selftest takes at most a sample count".into())),
            },
            "verify" => match rest {
                [] => Ok(Command::Verify { kernel: None }),
                [flag] if flag == "--all" => Ok(Command::Verify { kernel: None }),
                [name] => match apim_verify::Kernel::from_name(name) {
                    Some(kernel) => Ok(Command::Verify {
                        kernel: Some(kernel),
                    }),
                    None => Err(ParseError(format!(
                        "unknown kernel `{name}` (expected gates|adder|csa|wallace|multiplier|mac)"
                    ))),
                },
                _ => Err(ParseError("verify takes at most one kernel".into())),
            },
            "repro" => match rest {
                [exhibit] => Ok(Command::Repro {
                    exhibit: exhibit.clone(),
                }),
                [] => Ok(Command::Repro {
                    exhibit: "all".into(),
                }),
                _ => Err(ParseError("repro takes at most one exhibit".into())),
            },
            other => Err(ParseError(format!("unknown command `{other}`"))),
        },
    }
}

/// Executes a command, returning the text to print.
///
/// # Errors
///
/// Propagates simulator errors (invalid modes, oversized datasets) as
/// [`apim::ApimError`].
pub fn execute(command: &Command) -> Result<String, apim::ApimError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    match command {
        Command::Help => out.push_str(USAGE),
        Command::Multiply { a, b, mode } => {
            let apim = Apim::default();
            mode.validate(apim.config().operand_bits)
                .map_err(|e| apim::ArchError::InvalidConfig(e.to_string()))?;
            let r = apim.multiply(*a, *b, *mode);
            let exact = u128::from(*a) * u128::from(*b);
            let _ = writeln!(out, "product   : {}", r.product);
            let _ = writeln!(out, "exact     : {exact}");
            let _ = writeln!(
                out,
                "rel error : {:.3e}",
                if exact == 0 {
                    0.0
                } else {
                    r.product.abs_diff(exact) as f64 / exact as f64
                }
            );
            let _ = writeln!(out, "cycles    : {}", r.cost.cycles.get());
            let _ = writeln!(out, "energy    : {}", r.cost.energy);
            let _ = write!(out, "EDP       : {}", r.edp);
        }
        Command::Run { app, size_mb, mode } => {
            let apim = Apim::default();
            let report = apim.run_with_mode(*app, size_mb << 20, *mode)?;
            let _ = write!(out, "{report}");
        }
        Command::Tune { app } => {
            let apim = Apim::default();
            let outcome = apim.tune(*app);
            let report = apim.run_with_mode(*app, 1 << 30, outcome.mode)?;
            let _ = writeln!(
                out,
                "{}: settled on {} after {} trials",
                app.name(),
                outcome.mode,
                outcome.trials
            );
            let _ = write!(out, "at 1 GiB: {}", report.comparison);
        }
        Command::Sweep { app } => {
            let apim = Apim::default();
            let _ = writeln!(
                out,
                "{}: dataset sweep (energy x / speedup vs GPU)",
                app.name()
            );
            for mb in [32u64, 64, 128, 256, 512, 1024] {
                let r = apim.run_with_mode(*app, mb << 20, PrecisionMode::Exact)?;
                let _ = writeln!(
                    out,
                    "{mb:>6} MiB: {:>6.1}x / {:>5.2}x",
                    r.comparison.energy_improvement, r.comparison.speedup
                );
            }
            out.pop();
        }
        Command::SelfTest { samples } => {
            let apim = Apim::default();
            let report = apim.self_test(*samples, 0xA11C)?;
            let _ = writeln!(
                out,
                "self-test: {}/{} multiplications bit-exact vs reference",
                report.samples - report.mismatches,
                report.samples
            );
            let _ = writeln!(
                out,
                "hottest cell absorbed {} writes",
                report.max_cell_writes
            );
            let _ = write!(
                out,
                "verdict: {}",
                if report.passed() { "PASS" } else { "FAIL" }
            );
        }
        Command::Verify { kernel } => {
            let runs = match kernel {
                Some(kernel) => apim_verify::DEFAULT_WIDTHS
                    .iter()
                    .map(|&w| apim_verify::verify_kernel(*kernel, w))
                    .collect::<Result<Vec<_>, _>>()?,
                None => apim_verify::verify_all(&apim_verify::DEFAULT_WIDTHS)?,
            };
            let errors: usize = runs.iter().map(|r| r.report.error_count()).sum();
            if errors > 0 {
                return Err(apim::ArchError::VerificationFailed {
                    errors,
                    detail: apim_verify::render(&runs),
                }
                .into());
            }
            let _ = write!(out, "{}", apim_verify::render(&runs));
        }
        Command::Repro { exhibit } => {
            use apim_bench as b;
            let all = exhibit == "all";
            if all || exhibit == "fig4" {
                let _ = writeln!(out, "{}", b::fig4::render(&b::fig4::generate()));
            }
            if all || exhibit == "fig5" {
                let _ = writeln!(out, "{}", b::fig5::render(&b::fig5::generate()));
            }
            if all || exhibit == "fig5sim" {
                let _ = writeln!(out, "{}", b::fig5_sim::render(&b::fig5_sim::generate()));
            }
            if all || exhibit == "fig6" {
                let _ = writeln!(out, "{}", b::fig6::render(&b::fig6::generate()));
            }
            if all || exhibit == "table1" {
                let _ = writeln!(out, "{}", b::table1::render(&b::table1::generate()));
            }
            if all || exhibit == "headline" {
                let _ = writeln!(out, "{}", b::headline::render(&b::headline::generate()));
            }
            if all || exhibit == "ablation" {
                let _ = writeln!(out, "{}", b::ablation::render(&b::ablation::generate()));
            }
            if out.is_empty() {
                out = format!("unknown exhibit `{exhibit}`\n\n{USAGE}");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_multiply_with_modes() {
        assert_eq!(
            parse(&args("multiply 3 5")).unwrap(),
            Command::Multiply {
                a: 3,
                b: 5,
                mode: PrecisionMode::Exact
            }
        );
        assert_eq!(
            parse(&args("multiply 3 5 --relax 16")).unwrap(),
            Command::Multiply {
                a: 3,
                b: 5,
                mode: PrecisionMode::LastStage { relax_bits: 16 }
            }
        );
        assert_eq!(
            parse(&args("multiply 3 5 --mask 4")).unwrap(),
            Command::Multiply {
                a: 3,
                b: 5,
                mode: PrecisionMode::FirstStage { masked_bits: 4 }
            }
        );
    }

    #[test]
    fn parses_all_app_aliases() {
        for (name, app) in [
            ("sobel", App::Sobel),
            ("ROBERT", App::Robert),
            ("fft", App::Fft),
            ("dwt", App::DwtHaar1d),
            ("dwthaar1d", App::DwtHaar1d),
            ("sharpen", App::Sharpen),
            ("quasir", App::QuasiRandom),
        ] {
            assert_eq!(
                parse(&args(&format!("tune {name}"))).unwrap(),
                Command::Tune { app },
                "{name}"
            );
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&args("multiply 3")).is_err());
        assert!(parse(&args("multiply x y")).is_err());
        assert!(parse(&args("run nosuchapp 64")).is_err());
        assert!(parse(&args("run sobel sixtyfour")).is_err());
        assert!(parse(&args("multiply 1 2 --frob 3")).is_err());
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("tune")).is_err());
    }

    #[test]
    fn empty_and_help_yield_usage() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
        let text = execute(&Command::Help).unwrap();
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn multiply_executes_and_reports() {
        let out = execute(&Command::Multiply {
            a: 1000,
            b: 2000,
            mode: PrecisionMode::Exact,
        })
        .unwrap();
        assert!(out.contains("product   : 2000000"));
        assert!(out.contains("cycles"));
    }

    #[test]
    fn run_reports_comparison() {
        let out = execute(&Command::Run {
            app: App::Robert,
            size_mb: 256,
            mode: PrecisionMode::Exact,
        })
        .unwrap();
        assert!(out.contains("Robert"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn oversized_run_errors_cleanly() {
        let err = execute(&Command::Run {
            app: App::Fft,
            size_mb: 1 << 20,
            mode: PrecisionMode::Exact,
        })
        .unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn invalid_mode_reported_not_panicking() {
        let err = execute(&Command::Multiply {
            a: 1,
            b: 2,
            mode: PrecisionMode::LastStage { relax_bits: 65 },
        })
        .unwrap_err();
        assert!(err.to_string().contains("invalid"));
    }

    #[test]
    fn sweep_lists_all_sizes() {
        let out = execute(&Command::Sweep {
            app: App::DwtHaar1d,
        })
        .unwrap();
        for mb in ["32", "64", "128", "256", "512", "1024"] {
            assert!(out.contains(mb), "{mb} missing");
        }
    }

    #[test]
    fn selftest_parses_and_passes() {
        assert_eq!(
            parse(&args("selftest")).unwrap(),
            Command::SelfTest { samples: 16 }
        );
        assert_eq!(
            parse(&args("selftest 4")).unwrap(),
            Command::SelfTest { samples: 4 }
        );
        assert!(parse(&args("selftest four")).is_err());
        let out = execute(&Command::SelfTest { samples: 4 }).unwrap();
        assert!(out.contains("PASS"), "{out}");
    }

    #[test]
    fn verify_parses_and_sweeps_clean() {
        assert_eq!(
            parse(&args("verify")).unwrap(),
            Command::Verify { kernel: None }
        );
        assert_eq!(
            parse(&args("verify --all")).unwrap(),
            Command::Verify { kernel: None }
        );
        assert_eq!(
            parse(&args("verify adder")).unwrap(),
            Command::Verify {
                kernel: Some(apim_verify::Kernel::SerialAdder)
            }
        );
        assert!(parse(&args("verify nosuchkernel")).is_err());
        assert!(parse(&args("verify adder csa")).is_err());
        let out = execute(&Command::Verify {
            kernel: Some(apim_verify::Kernel::CsaGroup),
        })
        .unwrap();
        assert!(out.contains("clean"), "{out}");
        assert_eq!(out.matches("csa").count(), 3, "one row per width: {out}");
    }

    #[test]
    fn repro_unknown_exhibit_prints_usage() {
        let out = execute(&Command::Repro {
            exhibit: "fig99".into(),
        })
        .unwrap();
        assert!(out.contains("unknown exhibit"));
    }

    #[test]
    fn repro_fig6_renders() {
        let out = execute(&Command::Repro {
            exhibit: "fig6".into(),
        })
        .unwrap();
        assert!(out.contains("Figure 6"));
    }

    #[test]
    fn repro_ablation_renders() {
        let out = execute(&Command::Repro {
            exhibit: "ablation".into(),
        })
        .unwrap();
        assert!(out.contains("Ablation 1"));
    }
}
