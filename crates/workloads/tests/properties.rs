//! Property-based tests for the workload kernels and quality metrics.

use apim_logic::PrecisionMode;
use apim_workloads::image::{synthetic_image, Image};
use apim_workloads::quality::{psnr_u8, relative_rms_error};
use apim_workloads::{dwt, fft, quasirandom, robert, sharpen, sobel};
use apim_workloads::{ApimArith, Arith, ExactArith, FX_ONE, FX_SHIFT};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sobel_of_any_flat_image_is_zero(level in 0u8..=255, side in 4usize..16) {
        let pixels = vec![level; side * side];
        let img = Image::from_u8(side, side, &pixels);
        let out = sobel::sobel(&img, &mut ExactArith::new());
        prop_assert!(out.samples().iter().all(|&s| s == 0));
    }

    #[test]
    fn robert_of_any_flat_image_is_zero(level in 0u8..=255) {
        let img = Image::from_u8(6, 6, &[level; 36]);
        let out = robert::robert(&img, &mut ExactArith::new());
        prop_assert!(out.samples().iter().all(|&s| s == 0));
    }

    #[test]
    fn sharpen_preserves_any_flat_image(level in 0u8..=255) {
        let img = Image::from_u8(6, 6, &[level; 36]);
        let out = sharpen::sharpen(&img, &mut ExactArith::new());
        prop_assert_eq!(out.to_u8(), vec![level; 36]);
    }

    #[test]
    fn exact_apim_backend_is_transparent(seed: u64) {
        let img = synthetic_image(10, 10, seed);
        prop_assert_eq!(
            sobel::sobel(&img, &mut ExactArith::new()),
            sobel::sobel(&img, &mut ApimArith::new(PrecisionMode::Exact))
        );
    }

    #[test]
    fn fft_parseval_holds_for_random_signals(seed in 0u64..500) {
        let signal: Vec<i32> = (0..64)
            .map(|i| {
                let x = seed.wrapping_mul(6364136223846793005).wrapping_add(i * 104729);
                ((x % 200) as i32 - 100) << 8
            })
            .collect();
        let spec = fft::fft_real(&signal, &mut ExactArith::new());
        let time_e: f64 = signal.iter().map(|&s| f64::from(s).powi(2)).sum();
        let freq_e: f64 = spec
            .iter()
            .map(|c| f64::from(c.re).powi(2) + f64::from(c.im).powi(2))
            .sum::<f64>()
            / 64.0;
        if time_e > 1e6 {
            let ratio = freq_e / time_e;
            prop_assert!((0.85..1.15).contains(&ratio), "Parseval ratio {}", ratio);
        }
    }

    #[test]
    fn dwt_single_level_preserves_energy(seed in 0u64..500) {
        let signal: Vec<i32> = (0..64)
            .map(|i| {
                let x = seed.wrapping_mul(2862933555777941757).wrapping_add(i * 9973);
                ((x % 512) as i32 - 256) << 8
            })
            .collect();
        let (a, d) = dwt::haar_level(&signal, &mut ExactArith::new());
        let e_in: f64 = signal.iter().map(|&s| f64::from(s).powi(2)).sum();
        let e_out: f64 = a.iter().chain(&d).map(|&s| f64::from(s).powi(2)).sum();
        if e_in > 1e6 {
            let ratio = e_out / e_in;
            prop_assert!((0.95..1.05).contains(&ratio), "orthonormality {}", ratio);
        }
    }

    #[test]
    fn quasirandom_points_in_shifted_unit_square(n in 1usize..200) {
        let run = quasirandom::quasi_random(n, &mut ExactArith::new());
        let one = quasirandom::QR_ONE;
        for &(x, y) in &run.points {
            prop_assert!((one..2 * one).contains(&x));
            prop_assert!((one..2 * one).contains(&y));
        }
        prop_assert_eq!(run.products.len(), n);
    }

    #[test]
    fn relaxed_kernel_error_shrinks_with_fewer_relax_bits(seed: u64) {
        let img = synthetic_image(8, 8, seed);
        let golden = sharpen::sharpen(&img, &mut ExactArith::new());
        let heavy = sharpen::sharpen(
            &img,
            &mut ApimArith::new(PrecisionMode::LastStage { relax_bits: 32 }),
        );
        let light = sharpen::sharpen(
            &img,
            &mut ApimArith::new(PrecisionMode::LastStage { relax_bits: 8 }),
        );
        let g: Vec<i64> = golden.samples().iter().map(|&s| i64::from(s)).collect();
        let h: Vec<i64> = heavy.samples().iter().map(|&s| i64::from(s)).collect();
        let l: Vec<i64> = light.samples().iter().map(|&s| i64::from(s)).collect();
        prop_assert!(relative_rms_error(&g, &l) <= relative_rms_error(&g, &h) + 1e-12);
    }

    #[test]
    fn psnr_identity_and_symmetry(pixels in proptest::collection::vec(0u8..=255, 16)) {
        prop_assert!(psnr_u8(&pixels, &pixels).is_infinite());
        let other: Vec<u8> = pixels.iter().map(|&p| p.wrapping_add(1)).collect();
        let a = psnr_u8(&pixels, &other);
        let b = psnr_u8(&other, &pixels);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn mul_fx_matches_float_reference(a in -1000i32..1000, b in -1000i32..1000) {
        let mut arith = ExactArith::new();
        let got = arith.mul_fx(a * FX_ONE / 100, b * FX_ONE / 100);
        let expect = (f64::from(a) / 100.0) * (f64::from(b) / 100.0);
        let got_f = f64::from(got) / f64::from(FX_ONE);
        prop_assert!((got_f - expect).abs() < 0.01, "{} vs {}", got_f, expect);
    }

    #[test]
    fn images_round_trip_all_pixel_values(pixels in proptest::collection::vec(0u8..=255, 25)) {
        let img = Image::from_u8(5, 5, &pixels);
        prop_assert_eq!(img.to_u8(), pixels);
        let _ = FX_SHIFT; // scale constant participates in the round trip
    }
}
