//! Pluggable arithmetic: exact vs bit-exact APIM approximation.
//!
//! Every kernel in this crate is generic over [`Arith`], so one kernel body
//! yields both the golden output ([`ExactArith`]) and the approximate
//! output under any [`PrecisionMode`] ([`ApimArith`]), while counting the
//! operations the cost executor needs.

use apim_logic::functional::multiply_signed;
use apim_logic::PrecisionMode;

/// Fixed-point fraction bits used by all workloads (Q12).
pub const FX_SHIFT: u32 = 12;

/// The fixed-point representation of 1.0.
pub const FX_ONE: i32 = 1 << FX_SHIFT;

/// Operation counters accumulated by an [`Arith`] implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Multiplications performed.
    pub muls: u64,
    /// Additions/subtractions performed.
    pub adds: u64,
}

impl OpCounts {
    /// Total operations.
    pub fn total(&self) -> u64 {
        self.muls + self.adds
    }

    /// Fraction of operations that are multiplications.
    pub fn mul_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.muls as f64 / self.total() as f64
        }
    }
}

/// The arithmetic backend a kernel executes on.
///
/// Values are Q12 fixed point. `mul` returns the full Q24 product;
/// [`Arith::mul_fx`] renormalizes back to Q12 (the shift is free on APIM —
/// it rides the configurable interconnect).
pub trait Arith {
    /// Full-precision (Q24) product of two Q12 values.
    fn mul(&mut self, a: i32, b: i32) -> i64;

    /// Addition (APIM adds exactly; counted for the cost model).
    fn add(&mut self, a: i64, b: i64) -> i64;

    /// Operation counters so far.
    fn counts(&self) -> OpCounts;

    /// Clears the counters.
    fn reset_counts(&mut self);

    /// Q12 × Q12 → Q12 convenience.
    fn mul_fx(&mut self, a: i32, b: i32) -> i32 {
        (self.mul(a, b) >> FX_SHIFT) as i32
    }

    /// Subtraction, counted as an addition.
    fn sub(&mut self, a: i64, b: i64) -> i64 {
        self.add(a, -b)
    }
}

/// Exact arithmetic — the golden reference.
#[derive(Debug, Clone, Default)]
pub struct ExactArith {
    counts: OpCounts,
}

impl ExactArith {
    /// A fresh exact backend.
    pub fn new() -> Self {
        ExactArith::default()
    }
}

impl Arith for ExactArith {
    fn mul(&mut self, a: i32, b: i32) -> i64 {
        self.counts.muls += 1;
        i64::from(a) * i64::from(b)
    }

    fn add(&mut self, a: i64, b: i64) -> i64 {
        self.counts.adds += 1;
        a + b
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
    }
}

/// APIM arithmetic: multiplications follow the bit-exact in-memory
/// semantics of [`apim_logic::functional::multiply_signed`] under the
/// configured [`PrecisionMode`]; additions are exact (APIM approximates
/// only the multiplier's final stage).
///
/// ```
/// use apim_workloads::{ApimArith, Arith};
/// use apim_logic::PrecisionMode;
///
/// let mut exact = ApimArith::new(PrecisionMode::Exact);
/// assert_eq!(exact.mul(4096, 4096), 4096 * 4096);
/// let mut approx = ApimArith::new(PrecisionMode::LastStage { relax_bits: 20 });
/// let p = approx.mul(123_456, 234_567);
/// assert_ne!(p, 0);
/// assert!((p - 123_456i64 * 234_567).unsigned_abs() < 1 << 20);
/// ```
#[derive(Debug, Clone)]
pub struct ApimArith {
    mode: PrecisionMode,
    counts: OpCounts,
}

impl ApimArith {
    /// A backend running at the given precision.
    pub fn new(mode: PrecisionMode) -> Self {
        ApimArith {
            mode,
            counts: OpCounts::default(),
        }
    }

    /// The precision mode in force.
    pub fn mode(&self) -> PrecisionMode {
        self.mode
    }
}

impl Arith for ApimArith {
    fn mul(&mut self, a: i32, b: i32) -> i64 {
        self.counts.muls += 1;
        multiply_signed(i64::from(a), i64::from(b), 32, self.mode) as i64
    }

    fn add(&mut self, a: i64, b: i64) -> i64 {
        self.counts.adds += 1;
        a + b
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_backends_agree() {
        let mut e = ExactArith::new();
        let mut a = ApimArith::new(PrecisionMode::Exact);
        for (x, y) in [(4096i32, 4096i32), (-123_456, 78_901), (0, 5), (-1, -1)] {
            assert_eq!(e.mul(x, y), a.mul(x, y), "{x}*{y}");
        }
        assert_eq!(e.counts().muls, 4);
        assert_eq!(a.counts().muls, 4);
    }

    #[test]
    fn adds_are_exact_everywhere() {
        let mut a = ApimArith::new(PrecisionMode::LastStage { relax_bits: 32 });
        assert_eq!(a.add(1 << 40, 12345), (1i64 << 40) + 12345);
        assert_eq!(a.sub(100, 250), -150);
        assert_eq!(a.counts().adds, 2);
    }

    #[test]
    fn mul_fx_renormalizes() {
        let mut e = ExactArith::new();
        // 2.0 * 3.0 = 6.0 in Q12.
        assert_eq!(e.mul_fx(2 * FX_ONE, 3 * FX_ONE), 6 * FX_ONE);
        // 0.5 * 0.5 = 0.25.
        assert_eq!(e.mul_fx(FX_ONE / 2, FX_ONE / 2), FX_ONE / 4);
    }

    #[test]
    fn approximate_error_is_bounded() {
        let m = 16u8;
        let mut a = ApimArith::new(PrecisionMode::LastStage { relax_bits: m });
        for (x, y) in [(123_456i32, 654_321i32), (-99_999, 88_888), (4096, -4096)] {
            let approx = a.mul(x, y);
            let exact = i64::from(x) * i64::from(y);
            assert!(
                (approx - exact).unsigned_abs() < 1 << m,
                "{x}*{y}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn reset_clears_counters() {
        let mut a = ApimArith::new(PrecisionMode::Exact);
        a.mul(1, 2);
        a.add(1, 2);
        a.reset_counts();
        assert_eq!(a.counts(), OpCounts::default());
    }

    #[test]
    fn mul_fraction_computed() {
        let mut a = ExactArith::new();
        a.mul(1, 1);
        a.add(1, 1);
        a.add(1, 1);
        a.mul(2, 2);
        assert!((a.counts().mul_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(OpCounts::default().mul_fraction(), 0.0);
    }
}
