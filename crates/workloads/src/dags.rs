//! The Sobel and Sharpen inner loops as compiler input DAGs.
//!
//! Each function mirrors its hand-written kernel **literally** — one
//! multiplication per nonzero tap, accumulated left to right — so under
//! [`PrecisionMode::Exact`] a compiled gate-level execution must match the
//! [`crate::sharpen::sharpen`] / [`crate::sobel::sobel`] output bit for
//! bit. The negative tap weights are plain negative constants: recovering
//! the cheap form (`x·|c|` + flipped accumulate) is the compiler's
//! strength-reduction job, not the DAG author's.
//!
//! Words are 64-bit because the hand kernels accumulate in `i64`: the
//! Q12×Q12 products are Q24 and must not wrap during accumulation.
//!
//! The `*_hand_cycles` functions price the op stream the hand-written
//! kernel would issue per pixel on APIM (multiplier magnitudes — the
//! sign rides the complement row, as in
//! [`apim_logic::functional::multiply_signed`]) so callers can compare a
//! compiled program's cycle cost against the hand baseline
//! (`apim-cli compile <kernel> --compare`).

use std::collections::HashMap;

use apim_compile::{
    compile, compile_batched, BatchCompiledProgram, CompileError, CompileOptions, CompiledProgram,
    Dag,
};
use apim_logic::{CostModel, PrecisionMode};

use crate::arith::FX_SHIFT;
use crate::image::Image;

/// DAG word width: the hand kernels accumulate Q24 products in `i64`.
pub const DAG_WIDTH: u32 = 64;

/// Q12 sharpening center weight (`5 << FX_SHIFT`).
const SHARPEN_CENTER: i64 = 5 << FX_SHIFT;
/// Q12 sharpening cross weight (`-1 << FX_SHIFT`).
const SHARPEN_CROSS: i64 = -(1 << FX_SHIFT);
/// Q12 Sobel unit weight (1/6 normalization, as in [`crate::sobel`]).
const SOBEL_W1: i64 = (1 << FX_SHIFT) / 6;
/// Q12 Sobel double weight.
const SOBEL_W2: i64 = 2 * SOBEL_W1;

fn const_node(dag: &mut Dag, value: i64) -> apim_compile::NodeId {
    dag.constant(value as u64)
}

/// Fixed-point shift for a `width`-bit build of the workload DAGs: the
/// full Q12 weights need 64-bit accumulation, so narrower builds (used by
/// the `--equiv` sweep) scale the format down to keep every tap nonzero.
/// At [`DAG_WIDTH`] this is exactly [`FX_SHIFT`].
pub fn fx_shift_for(width: u32) -> u32 {
    FX_SHIFT.min(width / 4)
}

/// The sharpen inner loop: `(5c - n - s - w - e) << fx >> fx` over inputs
/// `c` (center) and `n`/`s`/`w`/`e` (4-neighborhood), exactly as
/// [`crate::sharpen::sharpen`] issues it — five tap multiplications and a
/// running sum, then the renormalizing shift (`fx` is
/// [`fx_shift_for(width)`](fx_shift_for); Q12 at full width). The host
/// clamps to pixel range afterwards, like the hand kernel.
///
/// # Errors
///
/// Rejects widths outside the crossbar-supported `4..=64` range.
pub fn sharpen_dag_at(width: u32) -> Result<Dag, CompileError> {
    let mut dag = Dag::new(width)?;
    let fx = fx_shift_for(width);
    let center = 5i64 << fx;
    let cross = -(1i64 << fx);
    let mut acc = None;
    // The center tap leads the accumulation: an Add can absorb only one
    // negated product, so pairing two cross taps first would leave one
    // multiplication stuck with its expensive negative constant.
    for (name, weight) in [
        ("c", center),
        ("n", cross),
        ("w", cross),
        ("e", cross),
        ("s", cross),
    ] {
        let tap = dag.input(name)?;
        let weight = const_node(&mut dag, weight);
        let product = dag.mul(tap, weight, PrecisionMode::Exact)?;
        acc = Some(match acc {
            None => product,
            Some(prev) => dag.add(prev, product)?,
        });
    }
    let renorm = dag.shr(acc.expect("five taps"), fx)?;
    dag.set_root(renorm)?;
    Ok(dag)
}

/// [`sharpen_dag_at`] at the hand kernel's full [`DAG_WIDTH`].
///
/// # Panics
///
/// Never — the DAG is statically well-formed.
pub fn sharpen_dag() -> Dag {
    sharpen_dag_at(DAG_WIDTH).expect("full-width sharpen DAG is well-formed")
}

/// One Sobel gradient (the horizontal one; the vertical is the same DAG
/// over transposed samples): six weighted taps accumulated in the hand
/// kernel's order. Inputs `l0..l2` are the left kernel column
/// (weights −1,−2,−1 × w) and `r0..r2` the right (+1,+2,+1 × w), row by
/// row, where `w` is the 1/6-normalized unit weight of the width's
/// fixed-point format. The root is the full-precision gradient —
/// magnitude and renormalization stay on the host, as in
/// [`crate::sobel::sobel`].
///
/// # Errors
///
/// Rejects widths outside the crossbar-supported `4..=64` range.
pub fn sobel_gradient_dag_at(width: u32) -> Result<Dag, CompileError> {
    let mut dag = Dag::new(width)?;
    // Keep the unit weight nonzero even where the narrowed fixed-point
    // one (`1 << fx`) is smaller than the 1/6 normalizer.
    let w1 = ((1i64 << fx_shift_for(width)) / 6).max(1);
    let w2 = 2 * w1;
    let mut acc = None;
    for (name, weight) in [
        ("l0", -w1),
        ("r0", w1),
        ("l1", -w2),
        ("r1", w2),
        ("l2", -w1),
        ("r2", w1),
    ] {
        let tap = dag.input(name)?;
        let weight = const_node(&mut dag, weight);
        let product = dag.mul(tap, weight, PrecisionMode::Exact)?;
        acc = Some(match acc {
            None => product,
            Some(prev) => dag.add(prev, product)?,
        });
    }
    dag.set_root(acc.expect("six taps"))?;
    Ok(dag)
}

/// [`sobel_gradient_dag_at`] at the hand kernel's full [`DAG_WIDTH`].
///
/// # Panics
///
/// Never — the DAG is statically well-formed.
pub fn sobel_gradient_dag() -> Dag {
    sobel_gradient_dag_at(DAG_WIDTH).expect("full-width Sobel DAG is well-formed")
}

/// Analytic per-pixel cycle cost of the hand-written sharpen inner loop:
/// five constant-multiplier products (center `5<<12` has two set bits,
/// the cross magnitudes one), five serial accumulates and the final
/// renormalizing shift.
pub fn sharpen_hand_cycles(model: &CostModel) -> u64 {
    let mode = PrecisionMode::Exact;
    let center = (SHARPEN_CENTER as u64).count_ones();
    let cross = (SHARPEN_CROSS.unsigned_abs()).count_ones();
    let mut cycles = model
        .multiply_trunc_with_ones(DAG_WIDTH, center, mode)
        .cycles
        .get();
    cycles += 4 * model
        .multiply_trunc_with_ones(DAG_WIDTH, cross, mode)
        .cycles
        .get();
    cycles += 5 * model.serial_add(DAG_WIDTH).cycles.get();
    cycles += model.shift_copy(DAG_WIDTH, -(FX_SHIFT as i32)).cycles.get();
    cycles
}

/// Analytic per-pixel cycle cost of one hand-written Sobel gradient: six
/// weighted taps and six serial accumulates.
pub fn sobel_gradient_hand_cycles(model: &CostModel) -> u64 {
    let mode = PrecisionMode::Exact;
    let w1 = (SOBEL_W1 as u64).count_ones();
    let w2 = (SOBEL_W2 as u64).count_ones();
    let mut cycles = 4 * model
        .multiply_trunc_with_ones(DAG_WIDTH, w1, mode)
        .cycles
        .get();
    cycles += 2 * model
        .multiply_trunc_with_ones(DAG_WIDTH, w2, mode)
        .cycles
        .get();
    cycles += 6 * model.serial_add(DAG_WIDTH).cycles.get();
    cycles
}

fn bind(pairs: &[(&str, i64)]) -> HashMap<String, u64> {
    pairs
        .iter()
        .map(|&(name, v)| (name.to_string(), v as u64))
        .collect()
}

/// Runs the sharpening filter with every pixel's inner loop executed by
/// the compiled [`sharpen_dag`] at the gate level — the compiler-driven
/// twin of [`crate::sharpen::sharpen`]. The program is compiled once and
/// re-run per pixel.
///
/// # Errors
///
/// Propagates compile/placement/verification errors from `apim-compile`.
pub fn sharpen_via_dag(input: &Image) -> Result<Image, CompileError> {
    let program = compile(&sharpen_dag(), &CompileOptions::default())?;
    let (w, h) = (input.width(), input.height());
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let inputs = bind(&[
                ("c", i64::from(input.get_clamped(x, y))),
                ("n", i64::from(input.get_clamped(x, y - 1))),
                ("s", i64::from(input.get_clamped(x, y + 1))),
                ("w", i64::from(input.get_clamped(x - 1, y))),
                ("e", i64::from(input.get_clamped(x + 1, y))),
            ]);
            let acc = program.run(&inputs)?.value as i64;
            out.push(acc.clamp(0, i64::from(255 << FX_SHIFT)) as i32);
        }
    }
    Ok(Image::new(w, h, out))
}

/// The two per-pixel gradient values computed by [`sobel_gradient_dag`]
/// at the gate level: `(gx, gy)` in Q24, matching the tap order of
/// [`crate::sobel::sobel`].
///
/// # Errors
///
/// Propagates compile/placement/verification errors from `apim-compile`.
pub fn sobel_gradients_via_dag(
    program: &CompiledProgram,
    input: &Image,
    x: isize,
    y: isize,
) -> Result<(i64, i64), CompileError> {
    let tap = |dx: isize, dy: isize| i64::from(input.get_clamped(x + dx - 1, y + dy - 1));
    // Horizontal: left/right kernel columns, row by row.
    let gx = program.run(&bind(&[
        ("l0", tap(0, 0)),
        ("l1", tap(0, 1)),
        ("l2", tap(0, 2)),
        ("r0", tap(2, 0)),
        ("r1", tap(2, 1)),
        ("r2", tap(2, 2)),
    ]))?;
    // Vertical: the transpose — top/bottom kernel rows.
    let gy = program.run(&bind(&[
        ("l0", tap(0, 0)),
        ("l1", tap(1, 0)),
        ("l2", tap(2, 0)),
        ("r0", tap(0, 2)),
        ("r1", tap(1, 2)),
        ("r2", tap(2, 2)),
    ]))?;
    Ok((gx.value as i64, gy.value as i64))
}

/// Runs one pixel tile through a lane-batched program: pads a partial
/// tile by repeating its last binding (lanes are independent, so padding
/// lanes just recompute a pixel whose result is discarded) and returns
/// only the `bindings.len()` live lane values.
fn run_tile(
    program: &BatchCompiledProgram,
    mut bindings: Vec<HashMap<String, u64>>,
) -> Result<Vec<u64>, CompileError> {
    let used = bindings.len();
    let pad = bindings.last().expect("tiles are non-empty").clone();
    bindings.resize(program.lanes(), pad);
    let mut values = program.run(&bindings)?.values;
    values.truncate(used);
    Ok(values)
}

/// The sharpen tap bindings for pixel `(x, y)` — identical to the serial
/// [`sharpen_via_dag`] loop body.
fn sharpen_taps(input: &Image, x: isize, y: isize) -> HashMap<String, u64> {
    bind(&[
        ("c", i64::from(input.get_clamped(x, y))),
        ("n", i64::from(input.get_clamped(x, y - 1))),
        ("s", i64::from(input.get_clamped(x, y + 1))),
        ("w", i64::from(input.get_clamped(x - 1, y))),
        ("e", i64::from(input.get_clamped(x + 1, y))),
    ])
}

/// Lane-batched [`sharpen_via_dag`]: the same compiled microprogram, but
/// run once per `lanes`-pixel tile instead of once per pixel — every lane
/// carries one pixel's five taps, and a single gate-level pass produces
/// the whole tile (§3.1's column parallelism across *instances*). The
/// serial path remains the differential oracle; outputs are bit-identical.
///
/// # Errors
///
/// Propagates compile/placement/verification errors from `apim-compile`,
/// including [`CompileError::BatchUnsupported`] for lane counts outside
/// `1..=64`.
pub fn sharpen_via_dag_batched(input: &Image, lanes: usize) -> Result<Image, CompileError> {
    let program = compile_batched(&sharpen_dag(), &CompileOptions::default(), lanes)?;
    let (w, h) = (input.width(), input.height());
    let coords: Vec<(isize, isize)> = (0..h as isize)
        .flat_map(|y| (0..w as isize).map(move |x| (x, y)))
        .collect();
    let mut out = Vec::with_capacity(w * h);
    for tile in coords.chunks(lanes) {
        let bindings = tile
            .iter()
            .map(|&(x, y)| sharpen_taps(input, x, y))
            .collect();
        for acc in run_tile(&program, bindings)? {
            out.push((acc as i64).clamp(0, i64::from(255 << FX_SHIFT)) as i32);
        }
    }
    Ok(Image::new(w, h, out))
}

/// Lane-batched Sobel: gradient magnitudes for the whole image with each
/// `lanes`-pixel tile computed in two gate-level passes (one per gradient
/// direction) of the compiled [`sobel_gradient_dag`], instead of two
/// passes *per pixel*. Magnitude and renormalization stay on the host,
/// exactly as in [`crate::sobel::sobel`] — outputs are bit-identical to
/// the hand kernel.
///
/// # Errors
///
/// Propagates compile/placement/verification errors from `apim-compile`,
/// including [`CompileError::BatchUnsupported`] for lane counts outside
/// `1..=64`.
pub fn sobel_via_dag_batched(input: &Image, lanes: usize) -> Result<Image, CompileError> {
    let program = compile_batched(&sobel_gradient_dag(), &CompileOptions::default(), lanes)?;
    let (w, h) = (input.width(), input.height());
    let coords: Vec<(isize, isize)> = (0..h as isize)
        .flat_map(|y| (0..w as isize).map(move |x| (x, y)))
        .collect();
    let mut out = Vec::with_capacity(w * h);
    for tile in coords.chunks(lanes) {
        let tap = |x: isize, y: isize, dx: isize, dy: isize| {
            i64::from(input.get_clamped(x + dx - 1, y + dy - 1))
        };
        let gx_bindings = tile
            .iter()
            .map(|&(x, y)| {
                bind(&[
                    ("l0", tap(x, y, 0, 0)),
                    ("l1", tap(x, y, 0, 1)),
                    ("l2", tap(x, y, 0, 2)),
                    ("r0", tap(x, y, 2, 0)),
                    ("r1", tap(x, y, 2, 1)),
                    ("r2", tap(x, y, 2, 2)),
                ])
            })
            .collect();
        let gy_bindings = tile
            .iter()
            .map(|&(x, y)| {
                bind(&[
                    ("l0", tap(x, y, 0, 0)),
                    ("l1", tap(x, y, 1, 0)),
                    ("l2", tap(x, y, 2, 0)),
                    ("r0", tap(x, y, 0, 2)),
                    ("r1", tap(x, y, 1, 2)),
                    ("r2", tap(x, y, 2, 2)),
                ])
            })
            .collect();
        let gxs = run_tile(&program, gx_bindings)?;
        let gys = run_tile(&program, gy_bindings)?;
        for (gx, gy) in gxs.into_iter().zip(gys) {
            let (gx, gy) = (gx as i64, gy as i64);
            let mag = ((gx.abs() + gy.abs()) >> FX_SHIFT).clamp(0, i64::from(i32::MAX));
            out.push(mag as i32);
        }
    }
    Ok(Image::new(w, h, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{Arith, ExactArith};
    use crate::image::synthetic_image;
    use crate::sharpen::sharpen;
    use crate::sobel::sobel;
    use apim_device::DeviceParams;

    #[test]
    fn sharpen_via_dag_is_bit_identical_to_hand_kernel() {
        let img = synthetic_image(6, 6, 42);
        let hand = sharpen(&img, &mut ExactArith::new());
        let compiled = sharpen_via_dag(&img).unwrap();
        assert_eq!(hand, compiled);
    }

    #[test]
    fn sobel_gradients_match_hand_taps() {
        let img = synthetic_image(6, 6, 7);
        let program = compile(&sobel_gradient_dag(), &CompileOptions::default()).unwrap();
        let mut arith = ExactArith::new();
        for (x, y) in [(0isize, 0isize), (3, 2), (5, 5), (1, 4)] {
            let (gx, gy) = sobel_gradients_via_dag(&program, &img, x, y).unwrap();
            // Recompute with the hand kernel's own tap loop.
            let (mut hx, mut hy) = (0i64, 0i64);
            for (dy, row) in [[-1i64, 0, 1], [-2, 0, 2], [-1, 0, 1]].iter().enumerate() {
                for (dx, &c) in row.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let weight = (c * SOBEL_W1) as i32;
                    let s = img.get_clamped(x + dx as isize - 1, y + dy as isize - 1);
                    let px = arith.mul(s, weight);
                    hx = arith.add(hx, px);
                    let st = img.get_clamped(x + dy as isize - 1, y + dx as isize - 1);
                    let py = arith.mul(st, weight);
                    hy = arith.add(hy, py);
                }
            }
            assert_eq!((gx, gy), (hx, hy), "pixel ({x},{y})");
        }
    }

    #[test]
    fn sobel_magnitude_from_dag_matches_hand_image() {
        let img = synthetic_image(5, 5, 3);
        let hand = sobel(&img, &mut ExactArith::new());
        let program = compile(&sobel_gradient_dag(), &CompileOptions::default()).unwrap();
        for y in 0..5isize {
            for x in 0..5isize {
                let (gx, gy) = sobel_gradients_via_dag(&program, &img, x, y).unwrap();
                let mag = ((gx.abs() + gy.abs()) >> FX_SHIFT).clamp(0, i64::from(i32::MAX));
                assert_eq!(
                    mag as i32,
                    hand.samples()[(y * 5 + x) as usize],
                    "pixel ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn compiled_cost_is_within_quarter_of_hand_baseline() {
        let model = CostModel::new(&DeviceParams::default());
        for (dag, hand, name) in [
            (sharpen_dag(), sharpen_hand_cycles(&model), "sharpen"),
            (
                sobel_gradient_dag(),
                sobel_gradient_hand_cycles(&model),
                "sobel",
            ),
        ] {
            let program = compile(&dag, &CompileOptions::default()).unwrap();
            let inputs: HashMap<String, u64> = program
                .dag()
                .inputs()
                .iter()
                .enumerate()
                .map(|(i, name)| (name.to_string(), (i as u64 + 1) << FX_SHIFT))
                .collect();
            let report = program.run(&inputs).unwrap();
            let gap = (report.cycles as f64 - hand as f64).abs() / hand as f64;
            assert!(
                gap <= 0.25,
                "{name}: compiled {} vs hand {hand} cycles ({:.1}% gap)",
                report.cycles,
                gap * 100.0
            );
        }
    }

    #[test]
    fn narrow_dags_verify_equivalent_symbolically() {
        for width in [8u32, 16, 32] {
            for (dag, name) in [
                (sharpen_dag_at(width).unwrap(), "sharpen"),
                (sobel_gradient_dag_at(width).unwrap(), "sobel"),
            ] {
                let program = compile(&dag, &CompileOptions::default()).unwrap();
                let mask = (1u64 << width) - 1;
                let inputs: HashMap<String, u64> = program
                    .dag()
                    .inputs()
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.to_string(), (3 * i as u64 + 7) & mask))
                    .collect();
                let report = program.verify_equiv(&inputs).unwrap();
                assert!(report.equivalent, "{name}@{width}: {}", report.lint);
            }
        }
    }

    #[test]
    fn batched_sharpen_is_bit_identical_to_the_hand_kernel() {
        let img = synthetic_image(6, 6, 42);
        let hand = sharpen(&img, &mut ExactArith::new());
        // 36 pixels, 64 lanes: one padded tile covers the whole image.
        let batched = sharpen_via_dag_batched(&img, 64).unwrap();
        assert_eq!(hand, batched);
    }

    #[test]
    fn batched_sobel_matches_hand_image_across_tile_boundaries() {
        let img = synthetic_image(5, 5, 3);
        let hand = sobel(&img, &mut ExactArith::new());
        // 25 pixels at 16 lanes: one full tile plus a padded partial one.
        let batched = sobel_via_dag_batched(&img, 16).unwrap();
        assert_eq!(hand, batched);
    }

    #[test]
    fn a_full_tile_costs_one_serial_pass() {
        // 64 pixels through the batched sharpen program charge (almost)
        // the cycles one serial pixel does — the 64x throughput claim.
        let serial = compile(&sharpen_dag(), &CompileOptions::default()).unwrap();
        let inputs: HashMap<String, u64> = serial
            .dag()
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), i as u64 + 11))
            .collect();
        let serial_cycles = serial.run(&inputs).unwrap().cycles;

        let lanes = 64;
        let batched = compile_batched(&sharpen_dag(), &CompileOptions::default(), lanes).unwrap();
        let bindings: Vec<HashMap<String, u64>> = (0..lanes as u64)
            .map(|j| {
                batched
                    .dag()
                    .inputs()
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.to_string(), 3 * i as u64 + j))
                    .collect()
            })
            .collect();
        let report = batched.run(&bindings).unwrap();
        assert_eq!(report.values, report.references);
        // The batched Shr pays one extra cycle for its in-array sign fill.
        assert_eq!(report.cycles, serial_cycles + 1);
        let speedup = (lanes as f64 * serial_cycles as f64) / report.cycles as f64;
        assert!(speedup > 60.0, "cycles-per-pixel speedup {speedup:.1}");
    }

    #[test]
    fn strength_reduction_rewrites_every_negative_tap() {
        let mut dag = sharpen_dag();
        assert_eq!(dag.strength_reduce_negated_constants(), 4);
        let mut dag = sobel_gradient_dag();
        assert_eq!(dag.strength_reduce_negated_constants(), 3);
    }
}
