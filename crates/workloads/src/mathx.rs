//! Derived math on the in-memory add/multiply primitives.
//!
//! §4.1: "The other common operations such as square root has been
//! approximated by these two functions in OpenCL code." This module is
//! that approximation: a Newton–Raphson square root built purely from the
//! [`Arith`] backend's additions and multiplications, so it runs (and
//! approximates) exactly like the rest of an APIM kernel.

use crate::arith::{Arith, FX_SHIFT};

/// Newton iterations for the inverse square root — quadratic convergence
/// makes five plenty across the Q12 range.
const ITERATIONS: u32 = 5;

/// Fixed-point (Q12) square root of a non-negative Q12 value, computed
/// entirely with the backend's additions and multiplications.
///
/// Internally this is Newton–Raphson on the *inverse* square root —
/// `z ← z · (3 − x·z²) / 2` — which is division-free (the `/2` is a shift,
/// free on APIM's interconnect), followed by `√x = x · z`. The reciprocal
/// estimate is kept in Q16 for precision.
///
/// ```
/// use apim_workloads::{mathx::sqrt_fx, ExactArith, FX_ONE};
/// let mut arith = ExactArith::new();
/// // sqrt(4.0) = 2.0 in Q12.
/// let y = sqrt_fx(4 * FX_ONE, &mut arith);
/// assert!((y - 2 * FX_ONE).abs() <= 4);
/// ```
pub fn sqrt_fx<A: Arith>(x: i32, arith: &mut A) -> i32 {
    if x <= 0 {
        return 0;
    }
    // The Newton recurrence itself lives in `apim-math` (shared with the
    // compiler's transcendental kernels); every multiply/subtract still
    // routes through this backend, so op counts and approximate-mode
    // behavior are unchanged.
    apim_math::sqrt_nr_q(
        x,
        FX_SHIFT,
        ITERATIONS,
        arith,
        |a, p, q| a.mul(p, q),
        |a, p, q| a.sub(p, q),
    )
}

/// L2 gradient magnitude `sqrt(gx² + gy²)` in Q12, entirely on the
/// backend's add/mul — the "true" Sobel magnitude the OpenCL original
/// computes before the paper's approximation treatment.
pub fn magnitude_fx<A: Arith>(gx: i32, gy: i32, arith: &mut A) -> i32 {
    let gx2 = arith.mul_fx(gx, gx);
    let gy2 = arith.mul_fx(gy, gy);
    let sum = arith.add(i64::from(gx2), i64::from(gy2)) as i32;
    sqrt_fx(sum, arith)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{ApimArith, ExactArith, FX_ONE};
    use apim_logic::PrecisionMode;

    fn to_f(q: i32) -> f64 {
        f64::from(q) / f64::from(FX_ONE)
    }

    #[test]
    fn matches_float_sqrt_across_range() {
        let mut arith = ExactArith::new();
        for v in [0.0625f64, 0.25, 1.0, 2.0, 4.0, 10.0, 100.0, 255.0, 4000.0] {
            let x = (v * f64::from(FX_ONE)) as i32;
            let y = to_f(sqrt_fx(x, &mut arith));
            let expect = v.sqrt();
            assert!(
                (y - expect).abs() / expect < 0.01,
                "sqrt({v}) = {y}, expected {expect}"
            );
        }
    }

    #[test]
    fn zero_and_negative_inputs_are_zero() {
        let mut arith = ExactArith::new();
        assert_eq!(sqrt_fx(0, &mut arith), 0);
        assert_eq!(sqrt_fx(-100, &mut arith), 0);
    }

    #[test]
    fn uses_only_add_and_mul() {
        let mut arith = ExactArith::new();
        sqrt_fx(7 * FX_ONE, &mut arith);
        let counts = arith.counts();
        assert!(counts.muls >= ITERATIONS as u64 * 2);
        assert!(counts.adds >= ITERATIONS as u64);
    }

    #[test]
    fn magnitude_is_euclidean() {
        let mut arith = ExactArith::new();
        // 3-4-5 triangle in Q12.
        let m = magnitude_fx(3 * FX_ONE, 4 * FX_ONE, &mut arith);
        assert!((to_f(m) - 5.0).abs() < 0.05, "got {}", to_f(m));
    }

    #[test]
    fn approximate_backend_stays_close() {
        let mut exact = ExactArith::new();
        let mut approx = ApimArith::new(PrecisionMode::LastStage { relax_bits: 16 });
        for v in [1.0f64, 9.0, 144.0] {
            let x = (v * f64::from(FX_ONE)) as i32;
            let a = to_f(sqrt_fx(x, &mut exact));
            let b = to_f(sqrt_fx(x, &mut approx));
            assert!((a - b).abs() / a < 0.02, "sqrt({v}): {a} vs {b}");
        }
    }

    #[test]
    fn monotone_over_the_pixel_range() {
        let mut arith = ExactArith::new();
        let mut last = -1;
        for p in (0..=255).step_by(5) {
            let y = sqrt_fx(p << FX_SHIFT, &mut arith);
            assert!(y >= last, "sqrt must be monotone at {p}");
            last = y;
        }
    }
}
