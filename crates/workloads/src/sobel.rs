//! Sobel 3×3 edge detection.
//!
//! Two 3×3 convolutions (horizontal/vertical gradients) followed by the
//! magnitude. As in the paper's OpenCL port, the square root is
//! approximated with add/multiply-friendly arithmetic — here the standard
//! `|gx| + |gy|` L1 magnitude. Weights carry the common 1/6 normalization,
//! which also makes them non-dyadic: a power-of-two weight would have a
//! single-bit multiplier and bypass the approximate final stage entirely.

use crate::arith::{Arith, FX_SHIFT};
use crate::image::Image;

/// Q12 Sobel kernel weights (horizontal gradient; the vertical one is its
/// transpose).
const GX: [[i32; 3]; 3] = [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]];

/// Q12 representation of the 1/6 kernel normalization.
const WEIGHT_SCALE: i32 = (1 << FX_SHIFT) / 6;

/// Runs Sobel edge detection, returning the gradient-magnitude image.
pub fn sobel<A: Arith>(input: &Image, arith: &mut A) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let mut gx = 0i64;
            let mut gy = 0i64;
            for (dy, row) in GX.iter().enumerate() {
                for (dx, &c) in row.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let s = input.get_clamped(x + dx as isize - 1, y + dy as isize - 1);
                    let weight = c * WEIGHT_SCALE;
                    let px = arith.mul(s, weight);
                    gx = arith.add(gx, px);
                    // The vertical kernel is the transpose.
                    let st = input.get_clamped(x + dy as isize - 1, y + dx as isize - 1);
                    let py = arith.mul(st, weight);
                    gy = arith.add(gy, py);
                }
            }
            // L1 magnitude, renormalized from Q24 to Q12.
            let mag = arith.add(gx.abs(), gy.abs()) >> FX_SHIFT;
            out.push(mag.clamp(0, i64::from(i32::MAX)) as i32);
        }
    }
    Image::new(w, h, out)
}

/// Sobel with the *Euclidean* magnitude `√(gx² + gy²)`, computed by the
/// Newton–Raphson square root of [`crate::mathx`] — i.e. the paper's
/// "square root approximated by [add and multiply]" path, end to end on
/// the arithmetic backend. Costs ~3× the multiplications of [`sobel`].
pub fn sobel_l2<A: Arith>(input: &Image, arith: &mut A) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let mut gx = 0i64;
            let mut gy = 0i64;
            for (dy, row) in GX.iter().enumerate() {
                for (dx, &c) in row.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let s = input.get_clamped(x + dx as isize - 1, y + dy as isize - 1);
                    let weight = c * WEIGHT_SCALE;
                    let px = arith.mul(s, weight);
                    gx = arith.add(gx, px);
                    let st = input.get_clamped(x + dy as isize - 1, y + dx as isize - 1);
                    let py = arith.mul(st, weight);
                    gy = arith.add(gy, py);
                }
            }
            let mag =
                crate::mathx::magnitude_fx((gx >> FX_SHIFT) as i32, (gy >> FX_SHIFT) as i32, arith);
            out.push(mag.max(0));
        }
    }
    Image::new(w, h, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::ExactArith;
    use crate::image::synthetic_image;

    #[test]
    fn flat_image_has_zero_gradient() {
        let img = Image::from_u8(8, 8, &[100u8; 64]);
        let mut arith = ExactArith::new();
        let out = sobel(&img, &mut arith);
        assert!(out.samples().iter().all(|&s| s == 0));
    }

    #[test]
    fn vertical_edge_detected() {
        // Left half dark, right half bright: strong response at the seam.
        let mut px = vec![0u8; 64];
        for y in 0..8 {
            for x in 4..8 {
                px[y * 8 + x] = 200;
            }
        }
        let img = Image::from_u8(8, 8, &px);
        let out = sobel(&img, &mut ExactArith::new());
        let seam = out.samples()[3 * 8 + 4];
        let flat = out.samples()[3 * 8 + 1];
        assert!(seam > 30 << FX_SHIFT, "seam response {seam}");
        assert_eq!(flat, 0);
    }

    #[test]
    fn op_counts_scale_with_pixels() {
        let img = synthetic_image(16, 16, 3);
        let mut arith = ExactArith::new();
        sobel(&img, &mut arith);
        // 12 nonzero taps per pixel (6 per direction) + magnitude add.
        assert_eq!(arith.counts().muls, 16 * 16 * 12);
        assert_eq!(arith.counts().adds, 16 * 16 * 13);
    }

    #[test]
    fn l2_magnitude_is_euclidean_on_a_seam() {
        // Left/right halves at 0/200: gx dominates, gy = 0 at mid-seam
        // rows, so the L2 and L1 magnitudes agree there.
        let mut px = vec![0u8; 64];
        for y in 0..8 {
            for x in 4..8 {
                px[y * 8 + x] = 200;
            }
        }
        let img = Image::from_u8(8, 8, &px);
        let l1 = sobel(&img, &mut ExactArith::new());
        let l2 = sobel_l2(&img, &mut ExactArith::new());
        let idx = 3 * 8 + 4;
        let a = l1.samples()[idx] as f64;
        let b = l2.samples()[idx] as f64;
        assert!((a - b).abs() / a < 0.05, "seam: L1 {a} vs L2 {b}");
        // Where both gradients fire (corners of the seam), L2 < L1.
        let corner = 0;
        assert!(l2.samples()[corner] <= l1.samples()[corner]);
    }

    #[test]
    fn l2_exact_apim_matches_golden() {
        use crate::arith::ApimArith;
        use apim_logic::PrecisionMode;
        let img = synthetic_image(10, 10, 7);
        assert_eq!(
            sobel_l2(&img, &mut ExactArith::new()),
            sobel_l2(&img, &mut ApimArith::new(PrecisionMode::Exact))
        );
    }

    #[test]
    fn approximate_exact_mode_matches_golden() {
        use crate::arith::ApimArith;
        use apim_logic::PrecisionMode;
        let img = synthetic_image(12, 12, 5);
        let golden = sobel(&img, &mut ExactArith::new());
        let apim = sobel(&img, &mut ApimArith::new(PrecisionMode::Exact));
        assert_eq!(golden, apim);
    }
}
