//! The six evaluation workloads of the APIM paper (§4.1) and their quality
//! framework.
//!
//! The paper runs Sobel, Robert, FFT, DwtHaar1D, Sharpen and Quasi Random
//! as OpenCL kernels; this crate re-implements them in Rust over a
//! pluggable arithmetic trait ([`Arith`]) so the *same kernel code* runs
//! both exactly (golden reference) and through the bit-exact APIM
//! approximate-multiplier semantics
//! ([`arith::ApimArith`] → [`apim_logic::functional`]).
//!
//! All kernels use Q12 fixed point (`value · 4096`): the scale places a
//! 32×32-bit product's meaningful bits where the paper's 0–32 "relax bits"
//! sweep bites gradually (see `DESIGN.md` §4.4).
//!
//! Inputs are synthetic: seeded structured images ([`image::synthetic_image`],
//! a stand-in for the Caltech-101 photos) and seeded random signals, exactly
//! as the paper generates non-image inputs randomly.
//!
//! # Example
//!
//! ```
//! use apim_workloads::{App, run_app, RunConfig};
//! use apim_logic::PrecisionMode;
//!
//! let run = run_app(App::Sobel, &RunConfig {
//!     mode: PrecisionMode::LastStage { relax_bits: 8 },
//!     ..RunConfig::default()
//! });
//! assert!(run.quality.acceptable, "8 relax bits keep Sobel above 30 dB");
//! assert!(run.ops.muls > 0);
//! ```

#![deny(missing_docs)]

pub mod apps;
pub mod arith;
pub mod dags;
pub mod dwt;
pub mod fft;
pub mod image;
pub mod mathdags;
pub mod mathx;
pub mod pgm;
pub mod quality;
pub mod quasirandom;
pub mod robert;
pub mod sharpen;
pub mod sobel;

pub use apps::{run_app, App, AppRun, RunConfig};
pub use arith::{ApimArith, Arith, ExactArith, OpCounts, FX_ONE, FX_SHIFT};
pub use image::Image;
pub use quality::QualityReport;
