//! FFT twiddles and DwtHaar1D scaling as compiled transcendental DAGs.
//!
//! The hand-written [`crate::fft`] and [`crate::dwt`] kernels take their
//! constants from host floating point (a `sin`/`cos` twiddle ROM, a
//! `round(32768/√2)` scale). This module re-derives both **in-crossbar**:
//! `sin`/`cos`/`sqrt` expression DAGs compile through `apim-compile` into
//! MAGIC NOR microprograms (CORDIC / restoring-isqrt expansions from
//! `apim-math`), execute at the gate level, and the read-back words become
//! the tables. All angle bookkeeping is integer Q-format arithmetic on the
//! crate's Q45 constants — no `f64` appears anywhere on this path, only in
//! the tests that score it.
//!
//! * [`TrigPrograms`] — `sin(angle)` / `cos(angle)` compiled once at
//!   [`TWIDDLE_WIDTH`] bits, run per table entry with quadrant folding.
//! * [`compiled_twiddles`] — the Q15 twiddle table for an `n`-point FFT,
//!   a drop-in for the float ROM via [`crate::fft::fft_with`].
//! * [`compiled_inv_sqrt2`] — `⌊√2^29⌋ = 23170`, the Haar Q15 scale, from
//!   a compiled integer square root.
//! * [`haar_level_via_dag`] — one Haar analysis level where every
//!   `(a ± b) · scale >> 15` pair runs as a compiled program, bit-identical
//!   to [`crate::dwt::haar_level`] under the exact backend.

use std::collections::HashMap;

use apim_compile::{compile, CompileError, CompileOptions, CompiledProgram, Dag};
use apim_logic::PrecisionMode;
use apim_math::consts::{half_pi_q, round_shift, PI_Q45, TWO_PI_Q45};
use apim_math::{from_pattern, to_pattern, MathFn, MathMode, MathSpec};

use crate::dwt::SCALE_SHIFT;
use crate::fft::{Complex, TW_SHIFT};

/// Word width of the twiddle trig programs: Q15 values with CORDIC
/// headroom (intermediate rotation state reaches ±2.4, needing two
/// integer bits plus sign above the 15 fraction bits, with margin).
pub const TWIDDLE_WIDTH: u32 = 20;

/// CORDIC iterations for the twiddle programs — enough to push the
/// rotation residual below the Q15 quantization step.
pub const TWIDDLE_ITERS: u32 = 16;

/// Word width of the compiled Haar pair programs: like
/// [`crate::dags::DAG_WIDTH`], the Q12×Q15 products span ~35 bits and
/// must not wrap before the renormalizing shift.
pub const HAAR_WIDTH: u32 = 64;

/// `sin`/`cos` compiled once against the default crossbar geometry and
/// reused for every table entry.
pub struct TrigPrograms {
    sin: CompiledProgram,
    cos: CompiledProgram,
}

fn trig_program(func: MathFn, options: &CompileOptions) -> Result<CompiledProgram, CompileError> {
    let mut dag = Dag::new(TWIDDLE_WIDTH)?;
    let x = dag.input("angle")?;
    let spec = MathSpec {
        func,
        mode: MathMode::Cordic {
            iters: TWIDDLE_ITERS,
        },
        frac: TW_SHIFT,
    };
    let m = dag.math(x, spec)?;
    dag.set_root(m)?;
    compile(&dag, options)
}

impl TrigPrograms {
    /// Compiles the two programs.
    ///
    /// # Errors
    ///
    /// Propagates compile/placement errors from `apim-compile`.
    pub fn new(options: &CompileOptions) -> Result<Self, CompileError> {
        Ok(TrigPrograms {
            sin: trig_program(MathFn::Sin, options)?,
            cos: trig_program(MathFn::Cos, options)?,
        })
    }

    /// `(sin φ, cos φ)` in Q15 for any Q15 angle, each from one gate-level
    /// run of the compiled CORDIC. The host only folds the angle into the
    /// kernel's `[-π/2, π/2]` domain (integer compares and subtracts) and
    /// applies the fold's sign to the read-back word.
    ///
    /// # Errors
    ///
    /// Propagates crossbar/verification errors from the compiled runs.
    pub fn sin_cos(&self, angle_q15: i64) -> Result<(i64, i64), CompileError> {
        let pi = round_shift(PI_Q45, 45, TW_SHIFT);
        let two_pi = round_shift(TWO_PI_Q45, 45, TW_SHIFT);
        let hpi = half_pi_q(TW_SHIFT);
        // Normalize into (-π, π], then fold the outer quadrants through
        // sin(π - r) = sin(r), cos(π - r) = -cos(r).
        let mut phi = angle_q15 % two_pi;
        if phi > pi {
            phi -= two_pi;
        } else if phi < -pi {
            phi += two_pi;
        }
        let (r, cos_sign) = if phi > hpi {
            (pi - phi, -1)
        } else if phi < -hpi {
            (-pi - phi, -1)
        } else {
            (phi, 1)
        };
        let inputs: HashMap<String, u64> =
            [("angle".to_string(), to_pattern(r, TWIDDLE_WIDTH))].into();
        let sin = from_pattern(self.sin.run(&inputs)?.value, TWIDDLE_WIDTH);
        let cos = from_pattern(self.cos.run(&inputs)?.value, TWIDDLE_WIDTH);
        Ok((sin, cos_sign * cos))
    }
}

/// The Q15 twiddle table `e^{-2πi k/n}`, `k < n/2`, every entry computed
/// by the compiled in-crossbar CORDIC — a drop-in replacement for the
/// float ROM of [`crate::fft::fft`] via [`crate::fft::fft_with`]. Angles
/// are exact integer arithmetic on the Q45 circle constant.
///
/// # Errors
///
/// Propagates compile/run errors from the trig programs.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn compiled_twiddles(n: usize, options: &CompileOptions) -> Result<Vec<Complex>, CompileError> {
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    let programs = TrigPrograms::new(options)?;
    (0..n / 2)
        .map(|k| {
            // φ_k = 2πk/n, rounded once at Q45 then once to Q15.
            let phi45 = (i128::from(TWO_PI_Q45) * k as i128 + (n as i128) / 2) / n as i128;
            let phi = round_shift(phi45 as i64, 45, TW_SHIFT);
            let (sin, cos) = programs.sin_cos(-phi)?;
            Ok(Complex {
                re: cos as i32,
                im: sin as i32,
            })
        })
        .collect()
}

/// `⌊√2^29⌋ = 23170`, the Haar Q15 scale `1/√2`, computed by compiling
/// and running an integer square-root microprogram (width 32, the
/// radicand is a `Const` node — no runtime inputs at all).
///
/// # Errors
///
/// Propagates compile/run errors.
pub fn compiled_inv_sqrt2(options: &CompileOptions) -> Result<i32, CompileError> {
    let width = 32;
    let mut dag = Dag::new(width)?;
    let x = dag.constant(1 << (2 * SCALE_SHIFT - 1));
    let spec = MathSpec {
        func: MathFn::Sqrt,
        mode: MathMode::Cordic {
            iters: apim_math::isqrt_bits(width),
        },
        frac: 0,
    };
    let m = dag.math(x, spec)?;
    dag.set_root(m)?;
    let program = compile(&dag, options)?;
    Ok(program.run(&HashMap::new())?.value as i32)
}

/// One compiled Haar pair program: `(a ± b) · scale >> SCALE_SHIFT` at
/// [`HAAR_WIDTH`] bits, mirroring [`crate::dwt::haar_level`]'s op
/// sequence exactly (the scale is a constant multiplier, so its set-bit
/// count is known to the §3.3 cost model).
fn haar_pair_dag(sum: bool, scale: i32) -> Result<Dag, CompileError> {
    let mut dag = Dag::new(HAAR_WIDTH)?;
    let a = dag.input("a")?;
    let b = dag.input("b")?;
    let combined = if sum { dag.add(a, b)? } else { dag.sub(a, b)? };
    let c = dag.constant(scale as u64);
    let product = dag.mul(combined, c, PrecisionMode::Exact)?;
    let out = dag.shr(product, SCALE_SHIFT)?;
    dag.set_root(out)?;
    Ok(dag)
}

/// One Haar analysis level with both pair programs executed at the gate
/// level per input pair — the compiler-driven twin of
/// [`crate::dwt::haar_level`], bit-identical to it when `scale` is
/// [`crate::dwt::INV_SQRT2`].
///
/// # Errors
///
/// Propagates compile/run errors.
///
/// # Panics
///
/// Panics if the input length is odd.
pub fn haar_level_via_dag(
    input: &[i32],
    scale: i32,
    options: &CompileOptions,
) -> Result<(Vec<i32>, Vec<i32>), CompileError> {
    assert!(
        input.len().is_multiple_of(2),
        "Haar level needs an even length"
    );
    let approx_prog = compile(&haar_pair_dag(true, scale)?, options)?;
    let detail_prog = compile(&haar_pair_dag(false, scale)?, options)?;
    let mut approx = Vec::with_capacity(input.len() / 2);
    let mut detail = Vec::with_capacity(input.len() / 2);
    for pair in input.chunks_exact(2) {
        let inputs: HashMap<String, u64> = [
            ("a".to_string(), pair[0] as i64 as u64),
            ("b".to_string(), pair[1] as i64 as u64),
        ]
        .into();
        approx.push(approx_prog.run(&inputs)?.value as i32);
        detail.push(detail_prog.run(&inputs)?.value as i32);
    }
    Ok((approx, detail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::ExactArith;
    use crate::dwt::{haar_level, INV_SQRT2};
    use crate::fft::{fft_real, fft_with};
    use crate::quality::{mean_relative_error, numeric_quality};

    #[test]
    fn compiled_inv_sqrt2_matches_the_hand_constant() {
        assert_eq!(
            compiled_inv_sqrt2(&CompileOptions::default()).unwrap(),
            INV_SQRT2
        );
    }

    #[test]
    fn compiled_twiddles_track_the_float_rom() {
        let n = 16;
        let tw = compiled_twiddles(n, &CompileOptions::default()).unwrap();
        assert_eq!(tw.len(), n / 2);
        let one = f64::from(1 << TW_SHIFT);
        for (k, t) in tw.iter().enumerate() {
            let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            let re_err = (f64::from(t.re) / one - angle.cos()).abs();
            let im_err = (f64::from(t.im) / one - angle.sin()).abs();
            assert!(re_err < 0.005, "re[{k}]: {re_err}");
            assert!(im_err < 0.005, "im[{k}]: {im_err}");
        }
        // Anchors: W^0 = 1, W^{n/4} = -i (±2 LSB of CORDIC residual).
        assert!(i64::from(tw[0].im).abs() <= 2);
        assert!((i64::from(tw[0].re) - (1 << TW_SHIFT)).abs() <= 2);
        assert!(i64::from(tw[n / 4].re).abs() <= 2);
        assert!((i64::from(tw[n / 4].im) + (1 << TW_SHIFT)).abs() <= 2);
    }

    #[test]
    fn fft_with_compiled_twiddles_stays_below_the_mre_gate() {
        let n = 16;
        let tw = compiled_twiddles(n, &CompileOptions::default()).unwrap();
        let signal: Vec<i32> = (0..n)
            .map(|i| (((i * 37) % 256) as i32 - 128) << 6)
            .collect();
        let golden = fft_real(&signal, &mut ExactArith::new());
        let mut data: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0)).collect();
        fft_with(&mut data, &mut ExactArith::new(), &tw);
        let flat = |spec: &[Complex]| -> Vec<i64> {
            spec.iter()
                .flat_map(|c| [i64::from(c.re), i64::from(c.im)])
                .collect()
        };
        let quality = numeric_quality(&flat(&golden), &flat(&data));
        assert!(
            quality.acceptable,
            "compiled-twiddle FFT rel RMS {:.4}",
            quality.mean_rel_err
        );
        assert!(mean_relative_error(&flat(&golden), &flat(&data)) < 0.10);
    }

    #[test]
    fn haar_level_via_dag_is_bit_identical_to_hand_kernel() {
        let signal: Vec<i32> = (0..8).map(|i| ((i * 53) % 211 - 100) << 10).collect();
        let (ha, hd) = haar_level(&signal, &mut ExactArith::new());
        let (ca, cd) = haar_level_via_dag(&signal, INV_SQRT2, &CompileOptions::default()).unwrap();
        assert_eq!(ha, ca);
        assert_eq!(hd, cd);
    }
}
