//! Fixed-point images and the synthetic scene generator.
//!
//! The paper draws test images from Caltech-101; this repo substitutes
//! seeded synthetic scenes with comparable structure (smooth gradients,
//! hard edges from geometric shapes, texture and sensor-like noise), which
//! is what edge detectors and sharpening filters actually respond to.

use crate::arith::FX_SHIFT;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A grayscale image in Q12 fixed point.
///
/// ```
/// use apim_workloads::Image;
/// let img = Image::from_u8(2, 2, &[0, 128, 255, 64]);
/// assert_eq!(img.to_u8()[1], 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<i32>,
}

impl Image {
    /// Builds an image from Q12 samples.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn new(width: usize, height: usize, data: Vec<i32>) -> Self {
        assert_eq!(data.len(), width * height, "image dimensions mismatch");
        Image {
            width,
            height,
            data,
        }
    }

    /// Builds an image from 8-bit pixels (scaled to Q12).
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    pub fn from_u8(width: usize, height: usize, pixels: &[u8]) -> Self {
        let data = pixels.iter().map(|&p| i32::from(p) << FX_SHIFT).collect();
        Image::new(width, height, data)
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The raw Q12 samples, row-major.
    pub fn samples(&self) -> &[i32] {
        &self.data
    }

    /// Sample with clamped (replicated) borders.
    pub fn get_clamped(&self, x: isize, y: isize) -> i32 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.data[y * self.width + x]
    }

    /// Converts back to 8-bit pixels (rounding, clamping).
    pub fn to_u8(&self) -> Vec<u8> {
        self.data
            .iter()
            .map(|&s| ((s + (1 << (FX_SHIFT - 1))) >> FX_SHIFT).clamp(0, 255) as u8)
            .collect()
    }
}

/// Generates a deterministic synthetic scene: a diagonal illumination
/// gradient, several filled circles and a rectangle (hard edges), a
/// checkerboard texture patch, and mild sensor noise.
pub fn synthetic_image(width: usize, height: usize, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pixels = vec![0u8; width * height];

    // Illumination gradient.
    for y in 0..height {
        for x in 0..width {
            let g = (x * 96 / width.max(1)) + (y * 96 / height.max(1));
            pixels[y * width + x] = 40 + g as u8;
        }
    }

    // Circles.
    for _ in 0..4 {
        let cx = rng.gen_range(0..width) as isize;
        let cy = rng.gen_range(0..height) as isize;
        let r = rng.gen_range(width.min(height) / 8..width.min(height) / 3) as isize;
        let level: u8 = rng.gen_range(120..=255);
        for y in 0..height as isize {
            for x in 0..width as isize {
                if (x - cx).pow(2) + (y - cy).pow(2) <= r * r {
                    pixels[y as usize * width + x as usize] = level;
                }
            }
        }
    }

    // A dark rectangle.
    let rx = rng.gen_range(0..width / 2);
    let ry = rng.gen_range(0..height / 2);
    for y in ry..(ry + height / 4).min(height) {
        for x in rx..(rx + width / 4).min(width) {
            pixels[y * width + x] = 15;
        }
    }

    // Checkerboard texture patch in the lower-right quadrant.
    for y in height / 2..height {
        for x in width / 2..width {
            if (x / 4 + y / 4) % 2 == 0 {
                let p = &mut pixels[y * width + x];
                *p = p.saturating_add(40);
            }
        }
    }

    // Sensor noise.
    for p in &mut pixels {
        let noise: i16 = rng.gen_range(-6..=6);
        *p = (i16::from(*p) + noise).clamp(0, 255) as u8;
    }

    Image::from_u8(width, height, &pixels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u8() {
        let px = [0u8, 1, 127, 254, 255];
        let img = Image::from_u8(5, 1, &px);
        assert_eq!(img.to_u8(), px.to_vec());
    }

    #[test]
    #[should_panic(expected = "dimensions mismatch")]
    fn dimension_mismatch_panics() {
        let _ = Image::new(3, 3, vec![0; 8]);
    }

    #[test]
    fn clamped_access_replicates_borders() {
        let img = Image::from_u8(2, 2, &[10, 20, 30, 40]);
        assert_eq!(img.get_clamped(-5, -5), img.get_clamped(0, 0));
        assert_eq!(img.get_clamped(99, 0), img.get_clamped(1, 0));
        assert_eq!(img.get_clamped(0, 99), img.get_clamped(0, 1));
    }

    #[test]
    fn synthetic_is_deterministic_per_seed() {
        let a = synthetic_image(32, 32, 7);
        let b = synthetic_image(32, 32, 7);
        let c = synthetic_image(32, 32, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_has_dynamic_range_and_edges() {
        let img = synthetic_image(64, 64, 1);
        let px = img.to_u8();
        let min = *px.iter().min().unwrap();
        let max = *px.iter().max().unwrap();
        assert!(max - min > 100, "needs contrast for edge detectors");
        // Count strong horizontal gradients as an edge proxy.
        let mut edges = 0;
        for y in 0..64 {
            for x in 1..64 {
                if (i32::from(px[y * 64 + x]) - i32::from(px[y * 64 + x - 1])).abs() > 50 {
                    edges += 1;
                }
            }
        }
        assert!(edges > 20, "synthetic scene should contain hard edges");
    }
}
