//! PGM (portable graymap) image I/O — feed real photographs to the
//! kernels without any external dependency.
//!
//! Both the binary (`P5`) and ASCII (`P2`) variants are supported for
//! reading; writing emits `P5`. The paper evaluates on Caltech-101
//! photos; converting any of them with `convert photo.jpg photo.pgm`
//! (ImageMagick) yields a file this module loads directly.

use crate::image::Image;
use std::error::Error;
use std::fmt;

/// A PGM parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePgmError(String);

impl fmt::Display for ParsePgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid PGM: {}", self.0)
    }
}

impl Error for ParsePgmError {}

fn err(msg: impl Into<String>) -> ParsePgmError {
    ParsePgmError(msg.into())
}

/// Tokenizer for the PGM header: whitespace-separated tokens with
/// `#`-comments, returning the byte offset after the last token consumed.
fn header_tokens(data: &[u8], count: usize) -> Result<(Vec<String>, usize), ParsePgmError> {
    let mut tokens = Vec::new();
    let mut i = 0;
    while tokens.len() < count {
        // Skip whitespace and comments.
        while i < data.len() {
            match data[i] {
                b' ' | b'\t' | b'\r' | b'\n' => i += 1,
                b'#' => {
                    while i < data.len() && data[i] != b'\n' {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        if i >= data.len() {
            return Err(err("truncated header"));
        }
        let start = i;
        while i < data.len() && !data[i].is_ascii_whitespace() {
            i += 1;
        }
        tokens.push(
            std::str::from_utf8(&data[start..i])
                .map_err(|_| err("non-ASCII header"))?
                .to_string(),
        );
    }
    // One whitespace byte separates the header from binary pixel data.
    if i < data.len() && data[i].is_ascii_whitespace() {
        i += 1;
    }
    Ok((tokens, i))
}

/// Parses a PGM file (binary `P5` or ASCII `P2`) into an [`Image`].
///
/// Maxval up to 65535 is accepted; samples are rescaled to 8-bit before
/// the Q12 conversion, matching the kernels' pixel model.
///
/// # Errors
///
/// Returns [`ParsePgmError`] for malformed headers, truncated pixel data
/// or unsupported magic numbers.
pub fn from_pgm(data: &[u8]) -> Result<Image, ParsePgmError> {
    let (tokens, body_start) = header_tokens(data, 4)?;
    let magic = tokens[0].as_str();
    let width: usize = tokens[1].parse().map_err(|_| err("bad width"))?;
    let height: usize = tokens[2].parse().map_err(|_| err("bad height"))?;
    let maxval: u32 = tokens[3].parse().map_err(|_| err("bad maxval"))?;
    if width == 0 || height == 0 {
        return Err(err("zero dimensions"));
    }
    if maxval == 0 || maxval > 65535 {
        return Err(err("maxval out of range"));
    }
    let rescale = |v: u32| ((v.min(maxval) * 255 + maxval / 2) / maxval) as u8;
    let pixels: Vec<u8> = match magic {
        "P5" => {
            let body = &data[body_start..];
            if maxval < 256 {
                if body.len() < width * height {
                    return Err(err("truncated P5 pixel data"));
                }
                body[..width * height]
                    .iter()
                    .map(|&b| rescale(b.into()))
                    .collect()
            } else {
                if body.len() < 2 * width * height {
                    return Err(err("truncated 16-bit P5 pixel data"));
                }
                body[..2 * width * height]
                    .chunks_exact(2)
                    .map(|c| rescale(u32::from(c[0]) << 8 | u32::from(c[1])))
                    .collect()
            }
        }
        "P2" => {
            let text = std::str::from_utf8(&data[body_start..])
                .map_err(|_| err("non-ASCII P2 pixel data"))?;
            let values: Result<Vec<u32>, _> = text
                .split_whitespace()
                .take(width * height)
                .map(str::parse)
                .collect();
            let values = values.map_err(|_| err("bad P2 sample"))?;
            if values.len() < width * height {
                return Err(err("truncated P2 pixel data"));
            }
            values.into_iter().map(rescale).collect()
        }
        other => return Err(err(format!("unsupported magic `{other}`"))),
    };
    Ok(Image::from_u8(width, height, &pixels))
}

/// Serializes an [`Image`] as binary PGM (`P5`, maxval 255).
pub fn to_pgm(image: &Image) -> Vec<u8> {
    let mut out = format!("P5\n{} {}\n255\n", image.width(), image.height()).into_bytes();
    out.extend(image.to_u8());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::synthetic_image;

    #[test]
    fn binary_round_trip() {
        let img = synthetic_image(24, 16, 3);
        let bytes = to_pgm(&img);
        let back = from_pgm(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn ascii_p2_parses() {
        let pgm = b"P2\n# a comment\n3 2\n255\n0 128 255\n10 20 30\n";
        let img = from_pgm(pgm).unwrap();
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.to_u8(), vec![0, 128, 255, 10, 20, 30]);
    }

    #[test]
    fn comments_and_whitespace_in_header() {
        let pgm = b"P5 # binary\n# size next\n 2\t2 \n255\n\x00\x40\x80\xFF";
        let img = from_pgm(pgm).unwrap();
        assert_eq!(img.to_u8(), vec![0, 64, 128, 255]);
    }

    #[test]
    fn sixteen_bit_maxval_rescales() {
        let mut pgm = b"P5\n2 1\n65535\n".to_vec();
        pgm.extend([0xFF, 0xFF, 0x00, 0x00]); // 65535, 0
        let img = from_pgm(&pgm).unwrap();
        assert_eq!(img.to_u8(), vec![255, 0]);
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        assert!(from_pgm(b"P6\n1 1\n255\nX").is_err(), "PPM rejected");
        assert!(from_pgm(b"P5\n0 4\n255\n").is_err(), "zero dims");
        assert!(from_pgm(b"P5\n2 2\n255\n\x00").is_err(), "truncated");
        assert!(from_pgm(b"P5\n2 2\n0\n....").is_err(), "bad maxval");
        assert!(from_pgm(b"P2\n2 1\n255\n12").is_err(), "short P2");
        assert!(from_pgm(b"").is_err(), "empty");
    }

    #[test]
    fn kernels_accept_loaded_images() {
        use crate::arith::ExactArith;
        use crate::sobel::sobel;
        let img = from_pgm(&to_pgm(&synthetic_image(16, 16, 8))).unwrap();
        let out = sobel(&img, &mut ExactArith::new());
        assert_eq!(out.width(), 16);
    }
}
