//! Quasi-random (low-discrepancy) sequence generation — the paper's
//! "Quasi Random" OpenCL benchmark.
//!
//! Generates a 2-D Halton-style point set (van der Corput radical inverse
//! in bases 2 and 3) over the unit square shifted to `[1, 2)²` and uses it
//! for a QMC estimate of `∫∫ x·y dx dy = 9/4`; the per-point products
//! `x · y` are the arithmetic APIM accelerates. The shift keeps every
//! product in the top octaves of the 32-bit range, where the paper's
//! relax-bit sweep degrades gracefully.

use crate::arith::Arith;

/// Fraction bits of the generated points (Q16: products fill ~32 bits so
/// the relax-bit sweep bites gradually).
pub const QR_SHIFT: u32 = 16;

/// 1.0 in the point representation.
pub const QR_ONE: i32 = 1 << QR_SHIFT;

/// Radical inverse of `index` in the given base, as a Q16 fraction.
pub fn radical_inverse(mut index: u64, base: u64) -> i32 {
    let mut inv = 0.0f64;
    let mut f = 1.0 / base as f64;
    while index > 0 {
        inv += (index % base) as f64 * f;
        index /= base;
        f /= base as f64;
    }
    (inv * f64::from(QR_ONE)) as i32
}

/// Output of the quasi-random benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuasiRun {
    /// The generated (x, y) points, Q16 in `[1, 2)`.
    pub points: Vec<(i32, i32)>,
    /// Per-point products `x · y` (Q16) — the benchmark's output vector.
    pub products: Vec<i32>,
    /// QMC estimate of `∫∫ x·y` over `[1,2)²` (Q16; exact value is 9/4).
    pub integral_estimate: i32,
}

/// Generates `n` Halton points and evaluates the QMC product integral
/// through the given arithmetic backend.
pub fn quasi_random<A: Arith>(n: usize, arith: &mut A) -> QuasiRun {
    let mut points = Vec::with_capacity(n);
    let mut products = Vec::with_capacity(n);
    let mut acc = 0i64;
    for i in 0..n {
        let x = QR_ONE + radical_inverse(i as u64 + 1, 2);
        let y = QR_ONE + radical_inverse(i as u64 + 1, 3);
        points.push((x, y));
        let p = (arith.mul(x, y) >> QR_SHIFT) as i32;
        products.push(p);
        acc = arith.add(acc, i64::from(p));
    }
    let estimate = if n == 0 { 0 } else { (acc / n as i64) as i32 };
    QuasiRun {
        points,
        products,
        integral_estimate: estimate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{ApimArith, ExactArith};
    use apim_logic::PrecisionMode;

    #[test]
    fn radical_inverse_base2_bit_reverses() {
        // 1 -> 0.5, 2 -> 0.25, 3 -> 0.75
        assert_eq!(radical_inverse(1, 2), QR_ONE / 2);
        assert_eq!(radical_inverse(2, 2), QR_ONE / 4);
        assert_eq!(radical_inverse(3, 2), 3 * QR_ONE / 4);
        assert_eq!(radical_inverse(0, 2), 0);
    }

    #[test]
    fn points_stay_in_unit_square() {
        let run = quasi_random(256, &mut ExactArith::new());
        for &(x, y) in &run.points {
            assert!((QR_ONE..2 * QR_ONE).contains(&x));
            assert!((QR_ONE..2 * QR_ONE).contains(&y));
        }
    }

    #[test]
    fn integral_estimate_approaches_quarter() {
        let run = quasi_random(1024, &mut ExactArith::new());
        let estimate = f64::from(run.integral_estimate) / f64::from(QR_ONE);
        assert!(
            (estimate - 2.25).abs() < 0.05,
            "QMC estimate {estimate} should be near 9/4"
        );
    }

    #[test]
    fn low_discrepancy_beats_worst_case() {
        // The first 2^k base-2 points are perfectly stratified: every
        // half-open dyadic interval of width 1/8 contains exactly n/8.
        let run = quasi_random(64, &mut ExactArith::new());
        let mut buckets = [0usize; 8];
        for &(x, _) in &run.points {
            buckets[((x - QR_ONE) / (QR_ONE / 8)).clamp(0, 7) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert_eq!(b, 8, "bucket {i} has {b}");
        }
    }

    #[test]
    fn one_mul_and_add_per_point() {
        let mut arith = ExactArith::new();
        quasi_random(100, &mut arith);
        assert_eq!(arith.counts().muls, 100);
        assert_eq!(arith.counts().adds, 100);
    }

    #[test]
    fn exact_apim_matches_golden() {
        assert_eq!(
            quasi_random(128, &mut ExactArith::new()),
            quasi_random(128, &mut ApimArith::new(PrecisionMode::Exact))
        );
    }

    #[test]
    fn empty_run_is_well_defined() {
        let run = quasi_random(0, &mut ExactArith::new());
        assert_eq!(run.integral_estimate, 0);
        assert!(run.points.is_empty());
    }
}
