//! Roberts cross 2×2 edge detection.
//!
//! The lightest of the paper's image kernels: two diagonal differences per
//! pixel, each scaled by the 1/√2 Roberts normalization (a non-dyadic Q12
//! weight, so the approximate multiplier is actually exercised), combined
//! with the L1 magnitude.

/// `1/√2` in Q15 (finer than the Q12 data so difference products span the
/// bit range the relax sweep targets).
const INV_SQRT2: i32 = 23170;

/// Fraction bits of the weight.
const WEIGHT_SHIFT: u32 = 15;

use crate::arith::Arith;
use crate::image::Image;

/// Runs the Roberts cross operator.
pub fn robert<A: Arith>(input: &Image, arith: &mut A) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let p00 = input.get_clamped(x, y);
            let p11 = input.get_clamped(x + 1, y + 1);
            let p01 = input.get_clamped(x + 1, y);
            let p10 = input.get_clamped(x, y + 1);
            let d1 = arith.sub(i64::from(p00), i64::from(p11));
            let g1 = arith.mul(d1 as i32, INV_SQRT2);
            let d2 = arith.sub(i64::from(p01), i64::from(p10));
            let g2 = arith.mul(d2 as i32, INV_SQRT2);
            let mag = arith.add(g1.abs(), g2.abs()) >> WEIGHT_SHIFT;
            out.push(mag.clamp(0, i64::from(i32::MAX)) as i32);
        }
    }
    Image::new(w, h, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{ApimArith, ExactArith, FX_SHIFT};
    use crate::image::synthetic_image;
    use apim_logic::PrecisionMode;

    #[test]
    fn flat_regions_are_silent() {
        let img = Image::from_u8(6, 6, &[77u8; 36]);
        let out = robert(&img, &mut ExactArith::new());
        assert!(out.samples().iter().all(|&s| s == 0));
    }

    #[test]
    fn diagonal_edge_strongest() {
        let mut px = vec![0u8; 36];
        for y in 0..6 {
            for x in 0..6 {
                if x > y {
                    px[y * 6 + x] = 220;
                }
            }
        }
        let img = Image::from_u8(6, 6, &px);
        let out = robert(&img, &mut ExactArith::new());
        assert!(out.samples().iter().any(|&s| s > 100 << FX_SHIFT));
    }

    #[test]
    fn op_counts() {
        let img = synthetic_image(10, 10, 2);
        let mut arith = ExactArith::new();
        robert(&img, &mut arith);
        assert_eq!(arith.counts().muls, 100 * 2);
        assert_eq!(arith.counts().adds, 100 * 3);
    }

    #[test]
    fn exact_apim_matches_golden() {
        let img = synthetic_image(9, 9, 11);
        assert_eq!(
            robert(&img, &mut ExactArith::new()),
            robert(&img, &mut ApimArith::new(PrecisionMode::Exact))
        );
    }
}
