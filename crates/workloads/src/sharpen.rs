//! 3×3 unsharp-style sharpening convolution.

use crate::arith::{Arith, FX_SHIFT};
use crate::image::Image;

/// Q12-scaled sharpening kernel (center 5, cross −1).
const KERNEL: [[i32; 3]; 3] = [[0, -1, 0], [-1, 5, -1], [0, -1, 0]];

/// Runs the sharpening filter.
pub fn sharpen<A: Arith>(input: &Image, arith: &mut A) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let mut acc = 0i64;
            for (dy, row) in KERNEL.iter().enumerate() {
                for (dx, &c) in row.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let s = input.get_clamped(x + dx as isize - 1, y + dy as isize - 1);
                    let p = arith.mul(s, c << FX_SHIFT);
                    acc = arith.add(acc, p);
                }
            }
            let v = (acc >> FX_SHIFT).clamp(0, i64::from(255 << FX_SHIFT)) as i32;
            out.push(v);
        }
    }
    Image::new(w, h, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{ApimArith, ExactArith};
    use crate::image::synthetic_image;
    use apim_logic::PrecisionMode;

    #[test]
    fn flat_image_unchanged() {
        let img = Image::from_u8(8, 8, &[90u8; 64]);
        let out = sharpen(&img, &mut ExactArith::new());
        assert_eq!(out.to_u8(), vec![90u8; 64]);
    }

    #[test]
    fn edges_gain_contrast() {
        let mut px = vec![50u8; 64];
        for y in 0..8 {
            for x in 4..8 {
                px[y * 8 + x] = 150;
            }
        }
        let img = Image::from_u8(8, 8, &px);
        let out = sharpen(&img, &mut ExactArith::new()).to_u8();
        // The bright side of the seam overshoots, the dark side undershoots.
        assert!(out[3 * 8 + 4] > 150);
        assert!(out[3 * 8 + 3] < 50);
    }

    #[test]
    fn op_counts() {
        let img = synthetic_image(12, 12, 4);
        let mut arith = ExactArith::new();
        sharpen(&img, &mut arith);
        assert_eq!(arith.counts().muls, 144 * 5);
        assert_eq!(arith.counts().adds, 144 * 5);
    }

    #[test]
    fn exact_apim_matches_golden() {
        let img = synthetic_image(10, 10, 21);
        assert_eq!(
            sharpen(&img, &mut ExactArith::new()),
            sharpen(&img, &mut ApimArith::new(PrecisionMode::Exact))
        );
    }

    #[test]
    fn output_clamped_to_pixel_range() {
        let img = synthetic_image(16, 16, 9);
        let out = sharpen(&img, &mut ExactArith::new());
        for &s in out.samples() {
            assert!((0..=255 << FX_SHIFT).contains(&s));
        }
    }
}
