//! Radix-2 decimation-in-time FFT in Q12 fixed point.
//!
//! Twiddle factors are a quantized ROM table (built once with host floats,
//! as any fixed-point FFT implementation would); all runtime arithmetic
//! goes through the [`Arith`] backend, so the approximate multiplier is
//! exercised in every butterfly.

use crate::arith::Arith;

/// Twiddle-factor fraction bits (Q15: finer than the Q12 data so butterfly
/// products span ~35 bits, the range the paper's relax-bit sweep targets).
pub const TW_SHIFT: u32 = 15;

/// A Q12 complex sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Complex {
    /// Real part (Q12).
    pub re: i32,
    /// Imaginary part (Q12).
    pub im: i32,
}

impl Complex {
    /// Builds a complex sample.
    pub fn new(re: i32, im: i32) -> Self {
        Complex { re, im }
    }
}

/// Builds the Q12 twiddle table `e^{-2πi k / n}` for `k < n/2`.
fn twiddles(n: usize) -> Vec<Complex> {
    (0..n / 2)
        .map(|k| {
            let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            Complex {
                re: (angle.cos() * f64::from(1 << TW_SHIFT)).round() as i32,
                im: (angle.sin() * f64::from(1 << TW_SHIFT)).round() as i32,
            }
        })
        .collect()
}

/// In-place radix-2 DIT FFT over `data` (length must be a power of two),
/// using the host-float twiddle ROM.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft<A: Arith>(data: &mut [Complex], arith: &mut A) {
    fft_with(data, arith, &twiddles(data.len()));
}

/// [`fft`] with a caller-supplied Q15 twiddle table (`tw[k] = e^{-2πi
/// k/n}` for `k < n/2`) — the entry point for tables produced by the
/// compiled in-crossbar CORDIC of [`crate::mathdags`], keeping host
/// floating point out of the whole pipeline.
///
/// # Panics
///
/// Panics if the length is not a power of two or the table is not `n/2`
/// entries.
pub fn fft_with<A: Arith>(data: &mut [Complex], arith: &mut A, tw: &[Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n < 2 {
        return;
    }
    assert_eq!(tw.len(), n / 2, "twiddle table must hold n/2 factors");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = tw[k * step];
                let b = data[start + k + half];
                // t = w * b (complex, Q12 renormalized).
                let re1 = arith.mul(w.re, b.re);
                let re2 = arith.mul(w.im, b.im);
                let t_re = (arith.sub(re1, re2) >> TW_SHIFT) as i32;
                let im1 = arith.mul(w.re, b.im);
                let im2 = arith.mul(w.im, b.re);
                let t_im = (arith.add(im1, im2) >> TW_SHIFT) as i32;
                let a = data[start + k];
                data[start + k] = Complex {
                    re: arith.add(i64::from(a.re), i64::from(t_re)) as i32,
                    im: arith.add(i64::from(a.im), i64::from(t_im)) as i32,
                };
                data[start + k + half] = Complex {
                    re: arith.sub(i64::from(a.re), i64::from(t_re)) as i32,
                    im: arith.sub(i64::from(a.im), i64::from(t_im)) as i32,
                };
            }
        }
        len *= 2;
    }
}

/// FFT of a real Q12 signal, returning the complex spectrum.
pub fn fft_real<A: Arith>(signal: &[i32], arith: &mut A) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0)).collect();
    fft(&mut data, arith);
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{ApimArith, ExactArith, FX_ONE, FX_SHIFT};
    use apim_logic::PrecisionMode;

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let signal = vec![FX_ONE; 8];
        let spec = fft_real(&signal, &mut ExactArith::new());
        assert_eq!(spec[0].re, 8 * FX_ONE);
        for bin in &spec[1..] {
            assert!(bin.re.abs() < FX_ONE / 16, "leakage {bin:?}");
            assert!(bin.im.abs() < FX_ONE / 16);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 32;
        let tone = 5;
        let signal: Vec<i32> = (0..n)
            .map(|i| {
                let angle = 2.0 * std::f64::consts::PI * tone as f64 * i as f64 / n as f64;
                (angle.cos() * f64::from(FX_ONE)) as i32
            })
            .collect();
        let spec = fft_real(&signal, &mut ExactArith::new());
        let mags: Vec<i64> = spec
            .iter()
            .map(|c| i64::from(c.re).pow(2) + i64::from(c.im).pow(2))
            .collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by_key(|(_, &m)| m)
            .map(|(i, _)| i)
            .unwrap();
        assert!(peak == tone || peak == n - tone, "peak at {peak}");
    }

    #[test]
    fn parseval_energy_roughly_preserved() {
        let signal: Vec<i32> = (0..64).map(|i| ((i * 37) % 256 - 128) << 6).collect();
        let spec = fft_real(&signal, &mut ExactArith::new());
        let time_energy: f64 = signal.iter().map(|&s| f64::from(s) * f64::from(s)).sum();
        let freq_energy: f64 = spec
            .iter()
            .map(|c| f64::from(c.re).powi(2) + f64::from(c.im).powi(2))
            .sum::<f64>()
            / 64.0;
        let ratio = freq_energy / time_energy;
        assert!((0.9..1.1).contains(&ratio), "Parseval ratio {ratio}");
    }

    #[test]
    fn exact_apim_matches_golden() {
        let signal: Vec<i32> = (0..32).map(|i| ((i * 97) % 200) << FX_SHIFT).collect();
        let golden = fft_real(&signal, &mut ExactArith::new());
        let apim = fft_real(&signal, &mut ApimArith::new(PrecisionMode::Exact));
        assert_eq!(golden, apim);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex::default(); 12];
        fft(&mut data, &mut ExactArith::new());
    }

    #[test]
    fn butterfly_op_counts() {
        let mut arith = ExactArith::new();
        fft_real(&[FX_ONE; 16], &mut arith);
        // n/2 log2(n) butterflies, 4 muls each.
        assert_eq!(arith.counts().muls, 8 * 4 * 4);
    }
}
