//! Unified application runner: golden vs approximate execution + quality.

use apim_logic::PrecisionMode;

use crate::arith::{ApimArith, Arith, ExactArith, OpCounts};
use crate::dwt::dwt_haar1d;
use crate::fft::fft_real;
use crate::image::synthetic_image;
use crate::quality::{numeric_quality, QualityReport};
use crate::quasirandom::quasi_random;
use crate::robert::robert;
use crate::sharpen::sharpen;
use crate::sobel::sobel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The six evaluation applications, in the paper's table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Sobel 3×3 edge detection.
    Sobel,
    /// Roberts cross edge detection.
    Robert,
    /// Radix-2 fixed-point FFT.
    Fft,
    /// 1-D Haar wavelet transform.
    DwtHaar1d,
    /// 3×3 sharpening filter.
    Sharpen,
    /// Quasi-random sequence generation.
    QuasiRandom,
}

impl App {
    /// All six applications, table order.
    pub fn all() -> [App; 6] {
        [
            App::Sobel,
            App::Robert,
            App::Fft,
            App::DwtHaar1d,
            App::Sharpen,
            App::QuasiRandom,
        ]
    }

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            App::Sobel => "Sobel",
            App::Robert => "Robert",
            App::Fft => "FFT",
            App::DwtHaar1d => "DwtHaar1D",
            App::Sharpen => "Sharpen",
            App::QuasiRandom => "QuasiR",
        }
    }

    /// Whether the QoS metric is PSNR (image app) or relative error.
    pub fn is_image(self) -> bool {
        matches!(self, App::Sobel | App::Robert | App::Sharpen)
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Configuration of one quality-evaluation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Precision mode for the approximate pass.
    pub mode: PrecisionMode,
    /// Input-size hint: image side length or signal length (power of two
    /// sizes are enforced where kernels need them).
    pub size: usize,
    /// Input generation seed.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            mode: PrecisionMode::Exact,
            size: 64,
            seed: 0xA917,
        }
    }
}

/// Result of one application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Quality of the approximate output vs the golden output.
    pub quality: QualityReport,
    /// Operation counts of the approximate pass (identical to the golden
    /// pass — same kernel code).
    pub ops: OpCounts,
}

fn random_signal(len: usize, seed: u64) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| rng.gen_range(0..(200 << crate::arith::FX_SHIFT)))
        .collect()
}

/// Runs `app` under `config`: executes the golden (exact) and approximate
/// passes on the same synthetic input and scores the quality.
pub fn run_app(app: App, config: &RunConfig) -> AppRun {
    let mode = config.mode;
    match app {
        App::Sobel | App::Robert | App::Sharpen => {
            let side = config.size.max(8);
            let input = synthetic_image(side, side, config.seed);
            let mut golden_arith = ExactArith::new();
            let mut approx_arith = ApimArith::new(mode);
            let (golden, approx) = match app {
                App::Sobel => (
                    sobel(&input, &mut golden_arith),
                    sobel(&input, &mut approx_arith),
                ),
                App::Robert => (
                    robert(&input, &mut golden_arith),
                    robert(&input, &mut approx_arith),
                ),
                _ => (
                    sharpen(&input, &mut golden_arith),
                    sharpen(&input, &mut approx_arith),
                ),
            };
            AppRun {
                quality: crate::quality::image_quality_sized(
                    &golden.to_u8(),
                    &approx.to_u8(),
                    golden.width(),
                ),
                ops: approx_arith.counts(),
            }
        }
        App::Fft => {
            let len = config.size.next_power_of_two().clamp(64, 1024);
            let signal = random_signal(len, config.seed);
            let mut golden_arith = ExactArith::new();
            let mut approx_arith = ApimArith::new(mode);
            let golden = fft_real(&signal, &mut golden_arith);
            let approx = fft_real(&signal, &mut approx_arith);
            let g: Vec<i64> = golden
                .iter()
                .flat_map(|c| [i64::from(c.re), i64::from(c.im)])
                .collect();
            let a: Vec<i64> = approx
                .iter()
                .flat_map(|c| [i64::from(c.re), i64::from(c.im)])
                .collect();
            AppRun {
                quality: numeric_quality(&g, &a),
                ops: approx_arith.counts(),
            }
        }
        App::DwtHaar1d => {
            let len = config.size.next_power_of_two().clamp(64, 4096);
            let signal = random_signal(len, config.seed);
            let levels = len.trailing_zeros();
            let mut golden_arith = ExactArith::new();
            let mut approx_arith = ApimArith::new(mode);
            let golden = dwt_haar1d(&signal, levels, &mut golden_arith);
            let approx = dwt_haar1d(&signal, levels, &mut approx_arith);
            let g: Vec<i64> = golden
                .coefficients()
                .iter()
                .map(|&c| i64::from(c))
                .collect();
            let a: Vec<i64> = approx
                .coefficients()
                .iter()
                .map(|&c| i64::from(c))
                .collect();
            AppRun {
                quality: numeric_quality(&g, &a),
                ops: approx_arith.counts(),
            }
        }
        App::QuasiRandom => {
            let n = config.size.clamp(64, 4096);
            let mut golden_arith = ExactArith::new();
            let mut approx_arith = ApimArith::new(mode);
            let golden = quasi_random(n, &mut golden_arith);
            let approx = quasi_random(n, &mut approx_arith);
            let g: Vec<i64> = golden.products.iter().map(|&p| i64::from(p)).collect();
            let a: Vec<i64> = approx.products.iter().map(|&p| i64::from(p)).collect();
            AppRun {
                quality: numeric_quality(&g, &a),
                ops: approx_arith.counts(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mode_is_lossless_for_every_app() {
        for app in App::all() {
            let run = run_app(app, &RunConfig::default());
            assert!(run.quality.acceptable, "{app} exact must be acceptable");
            assert_eq!(run.quality.qol_percent, 0.0, "{app} exact must be lossless");
        }
    }

    #[test]
    fn moderate_relaxation_is_acceptable_everywhere() {
        let config = RunConfig {
            mode: PrecisionMode::LastStage { relax_bits: 8 },
            ..RunConfig::default()
        };
        for app in App::all() {
            let run = run_app(app, &config);
            assert!(run.quality.acceptable, "{app} @ m=8: {:?}", run.quality);
        }
    }

    #[test]
    fn quality_degrades_monotonically_with_relaxation() {
        for app in App::all() {
            let mut last = -1.0f64;
            for m in [0u8, 8, 16, 24, 32] {
                let run = run_app(
                    app,
                    &RunConfig {
                        mode: PrecisionMode::LastStage { relax_bits: m },
                        ..RunConfig::default()
                    },
                );
                assert!(
                    run.quality.qol_percent >= last - 1e-9,
                    "{app}: QoL at m={m} = {} regressed below {last}",
                    run.quality.qol_percent
                );
                last = run.quality.qol_percent;
            }
        }
    }

    #[test]
    fn image_apps_report_psnr_and_ssim() {
        for app in App::all() {
            let run = run_app(app, &RunConfig::default());
            assert_eq!(run.quality.psnr_db.is_some(), app.is_image(), "{app}");
            assert_eq!(run.quality.ssim.is_some(), app.is_image(), "{app}");
            if let Some(ssim) = run.quality.ssim {
                assert!(
                    (ssim - 1.0).abs() < 1e-9,
                    "{app}: exact run must be identical"
                );
            }
        }
    }

    #[test]
    fn op_counts_are_nonzero_and_deterministic() {
        for app in App::all() {
            let a = run_app(app, &RunConfig::default());
            let b = run_app(app, &RunConfig::default());
            assert!(a.ops.muls > 0, "{app}");
            assert_eq!(a.ops, b.ops, "{app}");
        }
    }

    #[test]
    fn names_and_order_match_paper() {
        let names: Vec<_> = App::all().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            ["Sobel", "Robert", "FFT", "DwtHaar1D", "Sharpen", "QuasiR"]
        );
    }
}
