//! One-dimensional Haar discrete wavelet transform (DwtHaar1D).
//!
//! Each level maps sample pairs to a scaled average (approximation) and
//! scaled difference (detail): `a' = (a + b) · (1/√2)`, `d = (a − b) ·
//! (1/√2)`, with the scale as a Q12 constant — one multiplication per
//! output, matching the AMD OpenCL DwtHaar1D kernel the paper uses.

use crate::arith::Arith;

/// Scale-factor fraction bits (Q15, finer than the Q12 data).
pub const SCALE_SHIFT: u32 = 15;

/// `1/√2` in Q15 — equal to `⌊√2^29⌋`, which is how the compiled
/// in-crossbar path of [`crate::mathdags`] derives it without host floats.
pub const INV_SQRT2: i32 = 23170; // round(32768 / sqrt(2))

/// Output of a full Haar decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaarDecomposition {
    /// Final approximation coefficients (coarsest level).
    pub approximation: Vec<i32>,
    /// Detail coefficients, concatenated finest-to-coarsest.
    pub details: Vec<i32>,
}

impl HaarDecomposition {
    /// All coefficients flattened (details then approximation) — the form
    /// quality metrics compare.
    pub fn coefficients(&self) -> Vec<i32> {
        let mut all = self.details.clone();
        all.extend_from_slice(&self.approximation);
        all
    }
}

/// One Haar analysis level: consumes `input` pairs, producing
/// `(approximations, details)` of half the length.
///
/// # Panics
///
/// Panics if the input length is odd.
pub fn haar_level<A: Arith>(input: &[i32], arith: &mut A) -> (Vec<i32>, Vec<i32>) {
    assert!(
        input.len().is_multiple_of(2),
        "Haar level needs an even length"
    );
    let mut approx = Vec::with_capacity(input.len() / 2);
    let mut detail = Vec::with_capacity(input.len() / 2);
    for pair in input.chunks_exact(2) {
        let sum = arith.add(i64::from(pair[0]), i64::from(pair[1]));
        let diff = arith.sub(i64::from(pair[0]), i64::from(pair[1]));
        approx.push((arith.mul(sum as i32, INV_SQRT2) >> SCALE_SHIFT) as i32);
        detail.push((arith.mul(diff as i32, INV_SQRT2) >> SCALE_SHIFT) as i32);
    }
    (approx, detail)
}

/// Full multi-level decomposition down to `levels` (or as far as the
/// length allows).
///
/// # Panics
///
/// Panics if the signal length is not a power of two.
pub fn dwt_haar1d<A: Arith>(signal: &[i32], levels: u32, arith: &mut A) -> HaarDecomposition {
    assert!(
        signal.len().is_power_of_two(),
        "DwtHaar1D needs a power-of-two length"
    );
    let mut current = signal.to_vec();
    let mut details = Vec::new();
    let max_levels = signal.len().trailing_zeros();
    for _ in 0..levels.min(max_levels) {
        let (approx, detail) = haar_level(&current, arith);
        details.extend(detail);
        current = approx;
    }
    HaarDecomposition {
        approximation: current,
        details,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{ApimArith, ExactArith, FX_ONE, FX_SHIFT};
    use apim_logic::PrecisionMode;

    #[test]
    fn constant_signal_has_zero_details() {
        let signal = vec![3 * FX_ONE; 16];
        let dec = dwt_haar1d(&signal, 4, &mut ExactArith::new());
        assert!(dec.details.iter().all(|&d| d == 0));
        assert_eq!(dec.approximation.len(), 1);
        // After 4 levels of ·√2 scaling, the approximation is 3 · 4 = 12.
        let got = f64::from(dec.approximation[0]) / f64::from(FX_ONE);
        assert!((got - 12.0).abs() < 0.05, "got {got}");
    }

    #[test]
    fn step_produces_one_detail_spike() {
        let mut signal = vec![0i32; 8];
        signal[4..].fill(100 << FX_SHIFT);
        let dec = dwt_haar1d(&signal, 1, &mut ExactArith::new());
        let nonzero = dec.details.iter().filter(|&&d| d != 0).count();
        assert_eq!(nonzero, 0, "step aligned to pair boundary: no detail");
        let dec2 = {
            let mut s = vec![0i32; 8];
            s[3..].fill(100 << FX_SHIFT);
            dwt_haar1d(&s, 1, &mut ExactArith::new())
        };
        assert_eq!(dec2.details.iter().filter(|&&d| d != 0).count(), 1);
    }

    #[test]
    fn energy_preserved_single_level() {
        let signal: Vec<i32> = (0..32).map(|i| ((i * 53) % 97 - 48) << 8).collect();
        let mut arith = ExactArith::new();
        let (a, d) = haar_level(&signal, &mut arith);
        let e_in: f64 = signal.iter().map(|&s| f64::from(s).powi(2)).sum();
        let e_out: f64 = a
            .iter()
            .chain(d.iter())
            .map(|&s| f64::from(s).powi(2))
            .sum();
        let ratio = e_out / e_in;
        assert!(
            (0.98..1.02).contains(&ratio),
            "orthonormality ratio {ratio}"
        );
    }

    #[test]
    fn op_counts_per_level() {
        let mut arith = ExactArith::new();
        haar_level(&[FX_ONE; 32], &mut arith);
        assert_eq!(arith.counts().muls, 32); // 2 per pair
        assert_eq!(arith.counts().adds, 32);
    }

    #[test]
    fn exact_apim_matches_golden() {
        let signal: Vec<i32> = (0..64).map(|i| ((i * 31) % 211) << FX_SHIFT).collect();
        assert_eq!(
            dwt_haar1d(&signal, 6, &mut ExactArith::new()),
            dwt_haar1d(&signal, 6, &mut ApimArith::new(PrecisionMode::Exact))
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        dwt_haar1d(&[0; 12], 1, &mut ExactArith::new());
    }
}
