//! Quality-of-service metrics (§4.1).
//!
//! "For image processing applications, we accept 30 dB peak
//! signal-to-noise ratio as an accuracy metric. For other applications, the
//! acceptable accuracy is defined by having less than 10 % average relative
//! error."

use std::collections::HashMap;

use apim_compile::{evaluate_all, evaluate_all_with, CompileError, Dag, MathSpec, Node, NodeId};
use apim_math::reference::{input_to_f64, output_to_f64, rel_floor, truth};
use apim_math::{from_pattern, to_pattern};

/// PSNR acceptance threshold for image applications, dB.
pub const PSNR_THRESHOLD_DB: f64 = 30.0;

/// Mean-relative-error acceptance threshold for non-image applications.
pub const REL_ERR_THRESHOLD: f64 = 0.10;

/// Quality of one approximate run versus its golden reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// PSNR in dB (`None` for non-image outputs; `f64::INFINITY` when the
    /// outputs are identical).
    pub psnr_db: Option<f64>,
    /// Mean relative error against the golden output.
    pub mean_rel_err: f64,
    /// The paper's "QoL" percentage (quality loss): mean relative error ×
    /// 100 for numeric apps, mean absolute pixel error as a percentage of
    /// full scale for images.
    pub qol_percent: f64,
    /// Structural similarity vs the golden output (image apps with at
    /// least one 8×8 window; `None` otherwise).
    pub ssim: Option<f64>,
    /// Whether the paper's acceptance criterion holds.
    pub acceptable: bool,
}

/// PSNR between two 8-bit images (`f64::INFINITY` if identical).
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn psnr_u8(golden: &[u8], approx: &[u8]) -> f64 {
    assert_eq!(golden.len(), approx.len(), "image size mismatch");
    assert!(!golden.is_empty(), "empty image");
    let mse: f64 = golden
        .iter()
        .zip(approx)
        .map(|(&g, &a)| {
            let d = f64::from(g) - f64::from(a);
            d * d
        })
        .sum::<f64>()
        / golden.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// Relative RMS error `‖approx − golden‖₂ / ‖golden‖₂` — the robust
/// "average relative error" used for the numeric applications (a plain
/// per-element mean is dominated by near-zero golden outputs).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn relative_rms_error(golden: &[i64], approx: &[i64]) -> f64 {
    assert_eq!(golden.len(), approx.len(), "output size mismatch");
    let err: f64 = golden
        .iter()
        .zip(approx)
        .map(|(&g, &a)| ((a - g) as f64).powi(2))
        .sum();
    let norm: f64 = golden.iter().map(|&g| (g as f64).powi(2)).sum();
    if norm == 0.0 {
        if err == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (err / norm).sqrt()
    }
}

/// Mean relative error between integer vectors, ignoring entries whose
/// golden value is zero (standard for relative metrics).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn mean_relative_error(golden: &[i64], approx: &[i64]) -> f64 {
    assert_eq!(golden.len(), approx.len(), "output size mismatch");
    let mut sum = 0.0;
    let mut counted = 0u64;
    for (&g, &a) in golden.iter().zip(approx) {
        if g != 0 {
            sum += (a - g).unsigned_abs() as f64 / g.unsigned_abs() as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f64
    }
}

/// Structural similarity (SSIM) between two equally-sized 8-bit images,
/// computed over 8×8 windows with the standard constants
/// (`C1 = (0.01·255)²`, `C2 = (0.03·255)²`). Returns 1.0 for identical
/// images; perceptually-relevant degradation pulls it toward 0.
///
/// # Panics
///
/// Panics if the images differ in size or are smaller than one window.
pub fn ssim_u8(golden: &[u8], approx: &[u8], width: usize) -> f64 {
    assert_eq!(golden.len(), approx.len(), "image size mismatch");
    assert!(
        width >= 8 && golden.len() / width >= 8,
        "image too small for SSIM"
    );
    let height = golden.len() / width;
    const C1: f64 = (0.01 * 255.0) * (0.01 * 255.0);
    const C2: f64 = (0.03 * 255.0) * (0.03 * 255.0);
    let mut total = 0.0;
    let mut windows = 0u32;
    for wy in (0..height - 7).step_by(8) {
        for wx in (0..width - 7).step_by(8) {
            let (mut sum_a, mut sum_b) = (0.0f64, 0.0f64);
            let (mut sum_a2, mut sum_b2, mut sum_ab) = (0.0f64, 0.0, 0.0);
            for dy in 0..8 {
                for dx in 0..8 {
                    let a = f64::from(golden[(wy + dy) * width + wx + dx]);
                    let b = f64::from(approx[(wy + dy) * width + wx + dx]);
                    sum_a += a;
                    sum_b += b;
                    sum_a2 += a * a;
                    sum_b2 += b * b;
                    sum_ab += a * b;
                }
            }
            let n = 64.0;
            let mu_a = sum_a / n;
            let mu_b = sum_b / n;
            let var_a = sum_a2 / n - mu_a * mu_a;
            let var_b = sum_b2 / n - mu_b * mu_b;
            let cov = sum_ab / n - mu_a * mu_b;
            let ssim = ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
                / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2));
            total += ssim;
            windows += 1;
        }
    }
    total / f64::from(windows.max(1))
}

/// Builds a [`QualityReport`] for an image application.
pub fn image_quality(golden: &[u8], approx: &[u8]) -> QualityReport {
    image_quality_sized(golden, approx, 0)
}

/// [`image_quality`] with the image width supplied, enabling the SSIM
/// field (pass 0 to skip SSIM).
pub fn image_quality_sized(golden: &[u8], approx: &[u8], width: usize) -> QualityReport {
    let psnr = psnr_u8(golden, approx);
    let mean_abs: f64 = golden
        .iter()
        .zip(approx)
        .map(|(&g, &a)| (f64::from(g) - f64::from(a)).abs())
        .sum::<f64>()
        / golden.len() as f64;
    let golden_i: Vec<i64> = golden.iter().map(|&g| i64::from(g)).collect();
    let approx_i: Vec<i64> = approx.iter().map(|&a| i64::from(a)).collect();
    let ssim =
        (width >= 8 && golden.len() / width.max(1) >= 8).then(|| ssim_u8(golden, approx, width));
    QualityReport {
        psnr_db: Some(psnr),
        mean_rel_err: mean_relative_error(&golden_i, &approx_i),
        qol_percent: 100.0 * mean_abs / 255.0,
        ssim,
        acceptable: psnr >= PSNR_THRESHOLD_DB,
    }
}

/// Error attribution for one transcendental node of a compiled DAG.
#[derive(Debug, Clone, Copy)]
pub struct MathNodeError {
    /// The `Node::Math` node this row describes.
    pub node: NodeId,
    /// Its function/mode/precision spec.
    pub spec: MathSpec,
    /// The node's own approximation error at this input: floored relative
    /// error of its fixed-point output against the `f64` oracle.
    pub local_rel_err: f64,
    /// How much the DAG *root* moves (relative, floored at 1.0) when this
    /// node alone is replaced by the ideally-rounded oracle value — the
    /// node's end-to-end contribution, including any downstream masking
    /// or amplification.
    pub root_shift_rel: f64,
}

/// Attributes end-to-end error to each transcendental node of `dag` at one
/// input binding: per node, the local oracle error and the root's movement
/// when that node is idealized ([`apim_compile::evaluate_all_with`]).
/// Nodes whose `root_shift_rel` dwarfs their siblings' are where a
/// precision knob (more CORDIC iterations, more LUT segments) buys the
/// most output quality.
///
/// # Errors
///
/// [`CompileError::NoRoot`] without a designated root, or an unbound-input
/// error.
pub fn math_node_errors(
    dag: &Dag,
    inputs: &HashMap<String, u64>,
) -> Result<Vec<MathNodeError>, CompileError> {
    let root = dag.root().ok_or(CompileError::NoRoot)?;
    let width = dag.width();
    let values = evaluate_all(dag, inputs)?;
    let root_plain = from_pattern(values[root.0], width) as f64;
    let mut rows = Vec::new();
    for (i, node) in dag.nodes().iter().enumerate() {
        let Node::Math { x, spec } = node else {
            continue;
        };
        let id = NodeId(i);
        let x_f = input_to_f64(spec.func, width, spec.frac, values[x.0]);
        let ideal_f = truth(spec.func, x_f);
        let got_f = output_to_f64(width, spec.frac, values[id.0]);
        let local_rel_err =
            (got_f - ideal_f).abs() / ideal_f.abs().max(rel_floor(spec.func, width));
        let ideal_q = (ideal_f * (spec.frac as f64).exp2()).round() as i64;
        let overrides: HashMap<NodeId, u64> = [(id, to_pattern(ideal_q, width))].into();
        let idealized = evaluate_all_with(dag, inputs, &overrides)?;
        let root_ideal = from_pattern(idealized[root.0], width) as f64;
        rows.push(MathNodeError {
            node: id,
            spec: *spec,
            local_rel_err,
            root_shift_rel: (root_ideal - root_plain).abs() / root_plain.abs().max(1.0),
        });
    }
    Ok(rows)
}

/// Builds a [`QualityReport`] for a numeric application (relative RMS
/// error against the < 10 % threshold).
pub fn numeric_quality(golden: &[i64], approx: &[i64]) -> QualityReport {
    let rel = relative_rms_error(golden, approx);
    QualityReport {
        psnr_db: None,
        mean_rel_err: rel,
        qol_percent: 100.0 * rel,
        ssim: None,
        acceptable: rel < REL_ERR_THRESHOLD,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let img = [1u8, 2, 3, 200];
        assert!(psnr_u8(&img, &img).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let golden = [128u8; 256];
        let mut small = golden;
        small[0] = 130;
        let mut big = golden;
        for (i, p) in big.iter_mut().enumerate() {
            *p = (i % 255) as u8;
        }
        assert!(psnr_u8(&golden, &small) > psnr_u8(&golden, &big));
    }

    #[test]
    fn known_psnr_value() {
        // Uniform error of 1 LSB: MSE = 1, PSNR = 20 log10(255) = 48.13 dB.
        let golden = [100u8; 64];
        let approx = [101u8; 64];
        assert!((psnr_u8(&golden, &approx) - 48.1308).abs() < 1e-3);
    }

    #[test]
    fn relative_error_ignores_zero_golden() {
        assert_eq!(mean_relative_error(&[0, 0], &[5, 7]), 0.0);
        let e = mean_relative_error(&[100, 0, 200], &[110, 99, 180]);
        assert!((e - (0.1 + 0.1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn image_quality_thresholds() {
        let golden = [100u8; 100];
        let good = [101u8; 100]; // 48 dB
        assert!(image_quality(&golden, &good).acceptable);
        let mut bad = [0u8; 100];
        bad.iter_mut().step_by(2).for_each(|p| *p = 255);
        assert!(!image_quality(&golden, &bad).acceptable);
    }

    #[test]
    fn numeric_quality_thresholds() {
        assert!(numeric_quality(&[100; 10], &[105; 10]).acceptable); // 5 %
        assert!(!numeric_quality(&[100; 10], &[115; 10]).acceptable); // 15 %
    }

    #[test]
    fn qol_percent_scales() {
        let q = numeric_quality(&[1000; 4], &[1020; 4]);
        assert!((q.qol_percent - 2.0).abs() < 1e-9);
        let qi = image_quality(&[100u8; 4], &[110u8; 4]);
        assert!((qi.qol_percent - 100.0 * 10.0 / 255.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_lengths_panic() {
        psnr_u8(&[1, 2], &[1]);
    }

    #[test]
    fn ssim_identity_is_one() {
        let img: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
        let s = ssim_u8(&img, &img, 16);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_orders_degradation_levels() {
        let golden: Vec<u8> = (0..1024).map(|i| ((i * 7) % 256) as u8).collect();
        let slight: Vec<u8> = golden.iter().map(|&p| p.saturating_add(3)).collect();
        let heavy: Vec<u8> = golden
            .iter()
            .map(|&p| p.wrapping_mul(13).wrapping_add(91))
            .collect();
        let s_slight = ssim_u8(&golden, &slight, 32);
        let s_heavy = ssim_u8(&golden, &heavy, 32);
        assert!(s_slight > 0.9, "slight {s_slight}");
        assert!(s_heavy < s_slight, "{s_heavy} !< {s_slight}");
    }

    #[test]
    fn ssim_tracks_kernel_approximation() {
        use crate::arith::{ApimArith, ExactArith};
        use crate::image::synthetic_image;
        use crate::sharpen::sharpen;
        use apim_logic::PrecisionMode;
        let img = synthetic_image(32, 32, 5);
        let golden = sharpen(&img, &mut ExactArith::new()).to_u8();
        let mild = sharpen(
            &img,
            &mut ApimArith::new(PrecisionMode::LastStage { relax_bits: 16 }),
        )
        .to_u8();
        let severe = sharpen(
            &img,
            &mut ApimArith::new(PrecisionMode::LastStage { relax_bits: 32 }),
        )
        .to_u8();
        let s_mild = ssim_u8(&golden, &mild, 32);
        let s_severe = ssim_u8(&golden, &severe, 32);
        assert!(s_mild >= s_severe);
        assert!(s_mild > 0.99);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn ssim_rejects_tiny_images() {
        ssim_u8(&[0; 16], &[0; 16], 4);
    }

    #[test]
    fn math_node_errors_rank_the_coarse_node_as_dominant() {
        use apim_compile::{MathFn, MathMode};
        // sin(x) + sin(x) with one precise and one deliberately coarse
        // node: the coarse node must show the larger local error AND the
        // larger root shift when idealized.
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let fine = dag
            .math(x, apim_math::default_spec(MathFn::Sin, 16))
            .unwrap();
        let coarse_spec = MathSpec {
            func: MathFn::Sin,
            mode: MathMode::Cordic { iters: 2 },
            frac: 13,
        };
        let coarse = dag.math(x, coarse_spec).unwrap();
        let sum = dag.add(fine, coarse).unwrap();
        dag.set_root(sum).unwrap();
        let angle = apim_math::consts::half_pi_q(13) / 3; // π/6 in Q13
        let inputs: HashMap<String, u64> = [("x".to_string(), to_pattern(angle, 16))].into();
        let rows = math_node_errors(&dag, &inputs).unwrap();
        assert_eq!(rows.len(), 2);
        let (f, c) = (&rows[0], &rows[1]);
        assert_eq!(f.node, fine);
        assert_eq!(c.spec, coarse_spec);
        assert!(f.local_rel_err < 0.01, "fine local {:.4}", f.local_rel_err);
        assert!(
            c.local_rel_err > 2.0 * f.local_rel_err,
            "coarse {:.4} !>> fine {:.4}",
            c.local_rel_err,
            f.local_rel_err
        );
        assert!(c.root_shift_rel > f.root_shift_rel);
    }

    #[test]
    fn math_node_errors_skip_plain_dags() {
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        dag.set_root(x).unwrap();
        let inputs: HashMap<String, u64> = [("x".to_string(), 5u64)].into();
        assert!(math_node_errors(&dag, &inputs).unwrap().is_empty());
    }
}
