//! Execution statistics: cycles, operation counts and energy.

use apim_device::{Cycles, EnergyDelayProduct, Joules, Seconds, TimingModel};
use std::fmt;
use std::ops::Sub;

/// Energy split by physical mechanism — where the joules actually go.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// MAGIC NOR evaluations (output-cell switching + half-select).
    pub nor: Joules,
    /// Cell writes (initialization, write-back, preload).
    pub write: Joules,
    /// Sense-amplifier reads.
    pub read: Joules,
    /// Sense-amplifier majority evaluations.
    pub maj: Joules,
    /// Interconnect switch traversals.
    pub interconnect: Joules,
}

impl EnergyBreakdown {
    /// Sum of all categories (equals [`Stats::energy`]).
    pub fn total(&self) -> Joules {
        self.nor + self.write + self.read + self.maj + self.interconnect
    }

    fn merge(&mut self, other: &EnergyBreakdown) {
        self.nor += other.nor;
        self.write += other.write;
        self.read += other.read;
        self.maj += other.maj;
        self.interconnect += other.interconnect;
    }

    fn sub(self, earlier: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            nor: self.nor - earlier.nor,
            write: self.write - earlier.write,
            read: self.read - earlier.read,
            maj: self.maj - earlier.maj,
            interconnect: self.interconnect - earlier.interconnect,
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nor {} | write {} | read {} | maj {} | icn {}",
            self.nor, self.write, self.read, self.maj, self.interconnect
        )
    }
}

/// Cumulative accounting of everything a [`crate::BlockedCrossbar`] (or a
/// higher-level routine built on it) has executed.
///
/// `Stats` is cheap to copy and supports subtraction, so callers can take a
/// snapshot before a routine and diff afterwards:
///
/// ```
/// use apim_crossbar::{BlockedCrossbar, CrossbarConfig};
///
/// # fn main() -> Result<(), apim_crossbar::CrossbarError> {
/// let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
/// let before = *xbar.stats();
/// let block = xbar.block(0)?;
/// xbar.init_rows(block, &[0], 0..8)?;
/// let delta = *xbar.stats() - before;
/// assert_eq!(delta.cell_writes, 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stats {
    /// MAGIC execution cycles consumed.
    pub cycles: Cycles,
    /// Column- or row-parallel NOR evaluations.
    pub nor_ops: u64,
    /// Individual output cells switched by NOR evaluations.
    pub nor_cells: u64,
    /// Cells written (initialization + write-back + preload).
    pub cell_writes: u64,
    /// Bits read through the sense amplifiers.
    pub reads: u64,
    /// Sense-amplifier majority evaluations.
    pub maj_ops: u64,
    /// Bits moved through the configurable interconnect.
    pub interconnect_bits: u64,
    /// Total energy dissipated.
    pub energy: Joules,
    /// The same energy split by mechanism.
    pub energy_breakdown: EnergyBreakdown,
}

impl Stats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Wall-clock latency of the accounted cycles under `timing`.
    pub fn latency(&self, timing: &TimingModel) -> Seconds {
        timing.cycles_to_time(self.cycles)
    }

    /// Energy-delay product under `timing`.
    pub fn edp(&self, timing: &TimingModel) -> EnergyDelayProduct {
        self.energy * self.latency(timing)
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &Stats) {
        self.cycles += other.cycles;
        self.nor_ops += other.nor_ops;
        self.nor_cells += other.nor_cells;
        self.cell_writes += other.cell_writes;
        self.reads += other.reads;
        self.maj_ops += other.maj_ops;
        self.interconnect_bits += other.interconnect_bits;
        self.energy += other.energy;
        self.energy_breakdown.merge(&other.energy_breakdown);
    }
}

impl Sub for Stats {
    type Output = Stats;

    /// Difference of two snapshots; `self` must be the later one.
    fn sub(self, earlier: Stats) -> Stats {
        Stats {
            cycles: self.cycles - earlier.cycles,
            nor_ops: self.nor_ops - earlier.nor_ops,
            nor_cells: self.nor_cells - earlier.nor_cells,
            cell_writes: self.cell_writes - earlier.cell_writes,
            reads: self.reads - earlier.reads,
            maj_ops: self.maj_ops - earlier.maj_ops,
            interconnect_bits: self.interconnect_bits - earlier.interconnect_bits,
            energy: self.energy - earlier.energy,
            energy_breakdown: self.energy_breakdown.sub(earlier.energy_breakdown),
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | nor: {} ({} cells) | writes: {} | reads: {} | maj: {} | icn bits: {} | {}",
            self.cycles,
            self.nor_ops,
            self.nor_cells,
            self.cell_writes,
            self.reads,
            self.maj_ops,
            self.interconnect_bits,
            self.energy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycles: u64, writes: u64, energy_pj: f64) -> Stats {
        Stats {
            cycles: Cycles::new(cycles),
            nor_ops: cycles,
            nor_cells: cycles * 4,
            cell_writes: writes,
            reads: 1,
            maj_ops: 2,
            interconnect_bits: 8,
            energy: Joules::from_picojoules(energy_pj),
            energy_breakdown: EnergyBreakdown {
                nor: Joules::from_picojoules(energy_pj),
                ..EnergyBreakdown::default()
            },
        }
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = sample(10, 5, 1.0);
        let b = sample(3, 2, 0.5);
        a.merge(&b);
        assert_eq!(a.cycles.get(), 13);
        assert_eq!(a.nor_ops, 13);
        assert_eq!(a.nor_cells, 52);
        assert_eq!(a.cell_writes, 7);
        assert_eq!(a.reads, 2);
        assert_eq!(a.maj_ops, 4);
        assert_eq!(a.interconnect_bits, 16);
        assert!((a.energy.as_picojoules() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn subtraction_is_inverse_of_merge() {
        let a = sample(10, 5, 1.0);
        let mut ab = a;
        let b = sample(3, 2, 0.5);
        ab.merge(&b);
        let diff = ab - a;
        assert_eq!(diff.cycles, b.cycles);
        assert_eq!(diff.cell_writes, b.cell_writes);
        assert!((diff.energy.as_picojoules() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn latency_uses_cycle_time() {
        let timing = TimingModel::default();
        let s = sample(100, 0, 1.0);
        assert!((s.latency(&timing).as_nanos() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn edp_is_energy_times_latency() {
        let timing = TimingModel::default();
        let s = sample(100, 0, 2.0);
        let expected = 2e-12 * 110e-9;
        assert!((s.edp(&timing).as_joule_seconds() - expected).abs() < 1e-25);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!sample(1, 1, 1.0).to_string().is_empty());
        assert!(!sample(1, 1, 1.0).energy_breakdown.to_string().is_empty());
    }

    #[test]
    fn breakdown_merges_and_totals() {
        let mut a = sample(1, 1, 2.0);
        a.merge(&sample(1, 1, 3.0));
        assert!((a.energy_breakdown.nor.as_picojoules() - 5.0).abs() < 1e-12);
        assert!((a.energy_breakdown.total().as_picojoules() - 5.0).abs() < 1e-12);
    }
}
