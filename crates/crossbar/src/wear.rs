//! Endurance reporting.
//!
//! RRAM cells wear out after a bounded number of SET/RESET events, and the
//! MAGIC init-then-evaluate discipline concentrates writes on scratch rows.
//! The wear report exposes the distribution so schedulers can rotate
//! scratch allocations (wear leveling) and lifetime studies can reason
//! about hotspots.

use std::fmt;

/// One entry of a top-K wear ranking: a single cell and its write count.
///
/// Produced by [`crate::BlockedCrossbar::hotspots`] from the two-level
/// (per-word + per-cell) counters; the campaign tooling and `apim-cli`
/// surface these so operators can see *where* endurance is being spent,
/// not just how much.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotSpot {
    /// Block index.
    pub block: usize,
    /// Wordline of the cell.
    pub row: usize,
    /// Bitline of the cell.
    pub col: usize,
    /// Writes absorbed by the cell.
    pub writes: u64,
}

impl fmt::Display for HotSpot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {} row {} col {}: {} writes",
            self.block, self.row, self.col, self.writes
        )
    }
}

/// Per-block wear summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockWear {
    /// Block index.
    pub block: usize,
    /// Writes absorbed by the hottest cell.
    pub max_cell_writes: u64,
    /// Total writes across the block.
    pub total_writes: u64,
    /// Mean writes per cell.
    pub mean_writes: f64,
}

impl BlockWear {
    /// Hotspot factor: how much hotter the worst cell is than the average
    /// (1.0 = perfectly level). Zero-write blocks report 0.
    pub fn hotspot_factor(&self) -> f64 {
        if self.mean_writes == 0.0 {
            0.0
        } else {
            self.max_cell_writes as f64 / self.mean_writes
        }
    }
}

/// Wear summary of the whole memory unit.
#[derive(Debug, Clone, PartialEq)]
pub struct WearReport {
    /// One entry per block.
    pub blocks: Vec<BlockWear>,
}

impl WearReport {
    /// The hottest cell's write count anywhere.
    pub fn max_cell_writes(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.max_cell_writes)
            .max()
            .unwrap_or(0)
    }

    /// Remaining lifetime fraction under a given endurance budget
    /// (writes the weakest cell can still absorb / budget).
    pub fn lifetime_remaining(&self, endurance_writes: u64) -> f64 {
        let used = self.max_cell_writes().min(endurance_writes);
        1.0 - used as f64 / endurance_writes as f64
    }
}

impl fmt::Display for WearReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.blocks {
            writeln!(
                f,
                "block {}: max {} writes/cell, mean {:.2}, hotspot x{:.1}",
                b.block,
                b.max_cell_writes,
                b.mean_writes,
                b.hotspot_factor()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {

    use crate::{BlockedCrossbar, CrossbarConfig};

    #[test]
    fn fresh_crossbar_has_no_wear() {
        let x = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let report = x.wear_report();
        assert_eq!(report.max_cell_writes(), 0);
        assert_eq!(report.blocks.len(), 4);
        assert_eq!(report.lifetime_remaining(1_000_000), 1.0);
    }

    #[test]
    fn writes_show_up_in_the_right_block() {
        let mut x = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let b1 = x.block(1).unwrap();
        for _ in 0..10 {
            x.preload_bit(b1, 2, 2, true).unwrap();
        }
        let report = x.wear_report();
        assert_eq!(report.blocks[1].max_cell_writes, 10);
        assert_eq!(report.blocks[0].max_cell_writes, 0);
        assert!(report.blocks[1].hotspot_factor() > 100.0, "one hot cell");
    }

    #[test]
    fn lifetime_depletes_with_hotspot() {
        let mut x = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let b0 = x.block(0).unwrap();
        for _ in 0..250 {
            x.preload_bit(b0, 0, 0, true).unwrap();
        }
        let life = x.wear_report().lifetime_remaining(1000);
        assert!((life - 0.75).abs() < 1e-9);
        assert_eq!(x.wear_report().lifetime_remaining(100), 0.0);
    }

    #[test]
    fn display_lists_every_block() {
        let x = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let text = x.wear_report().to_string();
        assert_eq!(text.lines().count(), 4);
    }
}
