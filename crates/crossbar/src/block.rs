//! The blocked crossbar memory unit with configurable interconnects.

use apim_device::{Cycles, DeviceParams, EnergyModel, TimingModel};

use crate::array::CrossbarArray;
use crate::cell::Fault;
use crate::error::CrossbarError;
use crate::packed::{self, PackedArray, WORD_BITS};
use crate::semantics;
use crate::stats::Stats;
use crate::trace::{OpTrace, TraceOp};
use crate::Result;

use std::ops::Range;

/// Opaque handle to one block of the crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(usize);

impl BlockId {
    /// The raw block index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The role a block currently plays (§3.1: "the two blocks are structurally
/// the same and can be used interchangeably").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockRole {
    /// Holds resident data.
    Data,
    /// Scratch space for MAGIC execution.
    Processing,
}

/// A reference to one wordline of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowRef {
    /// The block containing the row.
    pub block: BlockId,
    /// The wordline index within the block.
    pub row: usize,
}

impl RowRef {
    /// Creates a row reference.
    pub fn new(block: BlockId, row: usize) -> Self {
        RowRef { block, row }
    }
}

/// Which storage fabric backs the simulated cells.
///
/// Both backends are bit-identical in results, statistics, wear counters
/// and error payloads; the packed backend is the production path, the
/// scalar backend is the reference oracle the differential suites compare
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Bit-packed rows, 64 cells per `u64` word: column-parallel MAGIC NOR
    /// executes as word ops (`!(a | b | …)` with edge masks), the
    /// interconnect shift as a cross-word funnel shift.
    #[default]
    Packed,
    /// One [`crate::Cell`] per coordinate with per-cell loops — the scalar
    /// reference implementation kept as the differential-testing oracle.
    Scalar,
}

/// One block's storage, dispatched on the configured [`Backend`].
#[derive(Debug, Clone)]
enum Store {
    Packed(PackedArray),
    Scalar(CrossbarArray),
}

impl Store {
    fn new(backend: Backend, rows: usize, cols: usize) -> Result<Self> {
        Ok(match backend {
            Backend::Packed => Store::Packed(PackedArray::new(rows, cols)?),
            Backend::Scalar => Store::Scalar(CrossbarArray::new(rows, cols)?),
        })
    }

    fn get(&self, row: usize, col: usize) -> Result<bool> {
        match self {
            Store::Packed(a) => a.get(row, col),
            Store::Scalar(a) => a.get(row, col),
        }
    }

    fn set(&mut self, row: usize, col: usize, bit: bool) -> Result<()> {
        match self {
            Store::Packed(a) => a.set(row, col, bit),
            Store::Scalar(a) => a.set(row, col, bit),
        }
    }

    fn cell_writes(&self, row: usize, col: usize) -> Result<u64> {
        match self {
            Store::Packed(a) => a.cell_writes(row, col),
            Store::Scalar(a) => a.cell_writes(row, col),
        }
    }

    fn max_cell_writes(&self) -> u64 {
        match self {
            Store::Packed(a) => a.max_cell_writes(),
            Store::Scalar(a) => a.max_cell_writes(),
        }
    }

    fn total_cell_writes(&self) -> u64 {
        match self {
            Store::Packed(a) => a.total_cell_writes(),
            Store::Scalar(a) => a.total_cell_writes(),
        }
    }

    fn cell_count(&self) -> usize {
        match self {
            Store::Packed(a) => a.cell_count(),
            Store::Scalar(a) => a.cell_count(),
        }
    }

    fn inject_fault(&mut self, row: usize, col: usize, fault: Option<Fault>) -> Result<()> {
        match self {
            Store::Packed(a) => a.inject_fault(row, col, fault),
            Store::Scalar(a) => a.inject_fault(row, col, fault),
        }
    }

    fn fault_count(&self) -> usize {
        match self {
            Store::Packed(a) => a.fault_count(),
            Store::Scalar(a) => a.fault_count(),
        }
    }

    fn hotspots(&self, k: usize) -> Vec<(usize, usize, u64)> {
        match self {
            Store::Packed(a) => a.hotspots(k),
            Store::Scalar(a) => a.hotspots(k),
        }
    }

    /// Lowest column in `span` of `row` reading OFF, if any (pre-validated
    /// coordinates). The strict-init scan.
    fn first_off(&self, row: usize, span: &Range<usize>) -> Option<usize> {
        match self {
            Store::Packed(a) => a.first_off(row, span),
            Store::Scalar(a) => span
                .clone()
                .find(|&c| !semantics::strict_init_ok(a.get(row, c).expect("span validated"))),
        }
    }

    /// Sets every cell of a pre-validated span of `row` to ON.
    fn fill_on_span(&mut self, row: usize, span: &Range<usize>) {
        match self {
            Store::Packed(a) => a.fill_on_span(row, span),
            Store::Scalar(a) => {
                for col in span.clone() {
                    a.set(row, col, true).expect("span validated");
                }
            }
        }
    }

    /// Stores `bits` LSB-first from `col0` of a pre-validated row.
    fn store_bools(&mut self, row: usize, col0: usize, bits: &[bool]) {
        match self {
            Store::Packed(a) => {
                for (i, chunk) in bits.chunks(WORD_BITS).enumerate() {
                    let mut word = 0u64;
                    for (b, &bit) in chunk.iter().enumerate() {
                        word |= u64::from(bit) << b;
                    }
                    a.store_word_bits(row, col0 + i * WORD_BITS, chunk.len(), word)
                        .expect("span validated");
                }
            }
            Store::Scalar(a) => {
                for (i, &bit) in bits.iter().enumerate() {
                    a.set(row, col0 + i, bit).expect("span validated");
                }
            }
        }
    }

    /// Stores the low `width ≤ 64` bits of `value` from `col0` of a
    /// pre-validated row.
    fn store_word_bits(&mut self, row: usize, col0: usize, width: usize, value: u64) {
        match self {
            Store::Packed(a) => a
                .store_word_bits(row, col0, width, value)
                .expect("span validated"),
            Store::Scalar(a) => {
                for i in 0..width {
                    a.set(row, col0 + i, (value >> i) & 1 == 1)
                        .expect("span validated");
                }
            }
        }
    }

    /// Stores `len` OFF cells from `col0` of a pre-validated row.
    fn store_zeros(&mut self, row: usize, col0: usize, len: usize) {
        match self {
            Store::Packed(a) => {
                for (w, mask) in packed::word_span(&(col0..col0 + len)) {
                    a.store_masked(row, w, 0, mask);
                }
            }
            Store::Scalar(a) => {
                for i in 0..len {
                    a.set(row, col0 + i, false).expect("span validated");
                }
            }
        }
    }

    /// Reads `width ≤ 64` bits LSB-first from `col0` of a pre-validated row.
    fn read_word_bits(&self, row: usize, col0: usize, width: usize) -> u64 {
        match self {
            Store::Packed(a) => a.read_word_bits(row, col0, width).expect("span validated"),
            Store::Scalar(a) => {
                let mut out = 0u64;
                for i in 0..width {
                    out |= u64::from(a.get(row, col0 + i).expect("span validated")) << i;
                }
                out
            }
        }
    }

    /// Same-block column-parallel NOR (`shift == 0`, pre-validated).
    fn nor_same(&mut self, in_rows: &[usize], out_row: usize, span: &Range<usize>) {
        match self {
            Store::Packed(a) => packed::nor_span_same(a, in_rows, out_row, span),
            Store::Scalar(a) => {
                for col in span.clone() {
                    let value = semantics::nor_bits(
                        in_rows
                            .iter()
                            .map(|&r| a.get(r, col).expect("span validated")),
                    );
                    a.set(out_row, col, value).expect("span validated");
                }
            }
        }
    }
}

/// Cross-block column-parallel NOR through the interconnect
/// (pre-validated coordinates; `inp` and `out` are different blocks).
fn nor_cross(
    inp: &Store,
    in_rows: &[usize],
    out: &mut Store,
    out_row: usize,
    in_span: &Range<usize>,
    shift: isize,
) {
    match (inp, out) {
        (Store::Packed(i), Store::Packed(o)) => {
            packed::nor_span_cross(i, in_rows, o, out_row, in_span, shift);
        }
        (Store::Scalar(i), Store::Scalar(o)) => {
            for col in in_span.clone() {
                let out_col = (col as isize + shift) as usize;
                let value = semantics::nor_bits(
                    in_rows
                        .iter()
                        .map(|&r| i.get(r, col).expect("span validated")),
                );
                o.set(out_row, out_col, value).expect("span validated");
            }
        }
        _ => unreachable!("all blocks of one crossbar share a backend"),
    }
}

/// Splits `blocks` into (immutable input, mutable output) at two distinct
/// indices.
///
/// The only caller is `nor_rows_shifted`'s cross-block branch, entered
/// exclusively when `in_block != out.block`, so the distinct-index debug
/// assertion is unreachable from the public API (audit: it documents the
/// split-borrow contract, it does not guard reachable input).
fn pair_mut(blocks: &mut [Store], input: usize, output: usize) -> (&Store, &mut Store) {
    debug_assert_ne!(input, output);
    if input < output {
        let (left, right) = blocks.split_at_mut(output);
        (&left[input], &mut right[0])
    } else {
        let (left, right) = blocks.split_at_mut(input);
        (&right[0], &mut left[output])
    }
}

/// Configuration of a [`BlockedCrossbar`].
///
/// ```
/// use apim_crossbar::{BlockedCrossbar, CrossbarConfig};
/// # fn main() -> Result<(), apim_crossbar::CrossbarError> {
/// let config = CrossbarConfig {
///     blocks: 2,
///     rows: 32,
///     cols: 128,
///     ..CrossbarConfig::default()
/// };
/// let xbar = BlockedCrossbar::new(config)?;
/// assert_eq!(xbar.block_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarConfig {
    /// Number of blocks (≥ 2 for data + processing).
    pub blocks: usize,
    /// Wordlines per block.
    pub rows: usize,
    /// Bitlines per block.
    pub cols: usize,
    /// Device parameters from which energy/timing are derived.
    pub params: DeviceParams,
    /// When `true`, MAGIC NORs verify that output cells were initialized to
    /// the ON state first and fail otherwise — catches scheduling bugs in
    /// higher-level routines.
    pub strict_init: bool,
    /// Storage fabric: bit-packed production path (default) or the scalar
    /// reference oracle.
    pub backend: Backend,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        CrossbarConfig {
            blocks: 4,
            rows: 64,
            cols: 256,
            params: DeviceParams::default(),
            strict_init: true,
            backend: Backend::Packed,
        }
    }
}

/// The APIM memory unit: several crossbar blocks sharing row/column
/// decoders, joined by configurable (barrel-shifter) interconnects, with
/// modified sense amplifiers supporting bitwise reads and the majority
/// function.
///
/// All compute primitives update the embedded [`Stats`]; see the
/// [crate documentation](crate) for the cycle-accounting conventions.
///
/// Every fallible primitive validates its *entire* request — bounds,
/// shift legality and (in strict mode) output initialization — before
/// mutating any cell, so a rejected operation leaves the crossbar exactly
/// as it was.
#[derive(Debug, Clone)]
pub struct BlockedCrossbar {
    blocks: Vec<Store>,
    roles: Vec<BlockRole>,
    stats: Stats,
    energy: EnergyModel,
    timing: TimingModel,
    strict_init: bool,
    backend: Backend,
    rows: usize,
    cols: usize,
    recorder: Option<Vec<TraceOp>>,
}

impl BlockedCrossbar {
    /// Builds the memory unit.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if there are fewer than two
    /// blocks (the blocked design needs at least a data and a processing
    /// block), if a dimension is zero, or if the device parameters are
    /// inconsistent.
    pub fn new(config: CrossbarConfig) -> Result<Self> {
        if config.blocks < 2 {
            return Err(CrossbarError::InvalidConfig(
                "need at least 2 blocks (data + processing)".into(),
            ));
        }
        config
            .params
            .validate()
            .map_err(CrossbarError::InvalidConfig)?;
        let mut blocks = Vec::with_capacity(config.blocks);
        let mut roles = Vec::with_capacity(config.blocks);
        for i in 0..config.blocks {
            blocks.push(Store::new(config.backend, config.rows, config.cols)?);
            roles.push(if i == 0 {
                BlockRole::Data
            } else {
                BlockRole::Processing
            });
        }
        Ok(BlockedCrossbar {
            blocks,
            roles,
            stats: Stats::new(),
            energy: EnergyModel::new(&config.params),
            timing: TimingModel::new(&config.params),
            strict_init: config.strict_init,
            backend: config.backend,
            rows: config.rows,
            cols: config.cols,
            recorder: None,
        })
    }

    // ---------------------------------------------------------------
    // Operation recording (consumed by the `apim-verify` static passes)
    // ---------------------------------------------------------------

    /// Starts recording every primitive into an operation trace,
    /// discarding any previous recording.
    ///
    /// Primitives are recorded as *requests*, before validation — an
    /// operation the runtime rejects still lands in the trace, so static
    /// passes can diagnose the hazard that caused the rejection.
    pub fn start_recording(&mut self) {
        self.recorder = Some(Vec::new());
    }

    /// Whether a recording is in progress.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Stops recording and returns the captured microprogram. Returns an
    /// empty trace if recording was never started.
    pub fn stop_recording(&mut self) -> OpTrace {
        OpTrace {
            blocks: self.blocks.len(),
            rows: self.rows,
            cols: self.cols,
            ops: self.recorder.take().unwrap_or_default(),
        }
    }

    /// Appends to the trace when recording; `op` is only built if armed.
    fn record(&mut self, op: impl FnOnce() -> TraceOp) {
        if let Some(trace) = &mut self.recorder {
            trace.push(op());
        }
    }

    /// Handle to block `index`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::NoSuchBlock`] if `index` is out of range.
    pub fn block(&self, index: usize) -> Result<BlockId> {
        if index >= self.blocks.len() {
            return Err(CrossbarError::NoSuchBlock {
                index,
                blocks: self.blocks.len(),
            });
        }
        Ok(BlockId(index))
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Wordlines per block.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bitlines per block.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The storage fabric in use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The current role of a block.
    pub fn role(&self, block: BlockId) -> BlockRole {
        self.roles[block.0]
    }

    /// Re-assigns a block's role (blocks are interchangeable, §3.1).
    pub fn set_role(&mut self, block: BlockId, role: BlockRole) {
        self.roles[block.0] = role;
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets statistics to zero (cell contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::new();
    }

    /// The timing model in force.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Advances the cycle counter without touching cells — used by
    /// higher-level routines to account latency the primitive set cannot
    /// express (e.g. the non-hideable output initialization of a carry-save
    /// stage).
    pub fn advance_cycles(&mut self, cycles: Cycles) {
        self.record(|| TraceOp::AdvanceCycles {
            cycles: cycles.get(),
        });
        self.stats.cycles += cycles;
    }

    /// Discounts cycles that were charged sequentially but execute in
    /// parallel on the real hardware.
    ///
    /// The simulator executes independent same-stage operations (e.g. the
    /// carry-save groups of one Wallace-tree stage, §3.2) one after the
    /// other, but the paper's hardware runs them concurrently. Callers that
    /// model such parallelism replay the operations sequentially — keeping
    /// every write, read and joule accounted — and then rewind the
    /// serialization overhead. Saturates at zero.
    pub fn rewind_cycles(&mut self, cycles: Cycles) {
        self.record(|| TraceOp::RewindCycles {
            cycles: cycles.get(),
        });
        self.stats.cycles = self.stats.cycles.saturating_sub(cycles);
    }

    fn check_range(&self, cols: &Range<usize>) -> Result<()> {
        if cols.end > self.cols || cols.start >= cols.end {
            return Err(CrossbarError::OutOfBounds {
                what: "col range",
                index: cols.end,
                limit: self.cols,
            });
        }
        Ok(())
    }

    fn check_row(&self, row: usize) -> Result<()> {
        if row >= self.rows {
            return Err(CrossbarError::OutOfBounds {
                what: "row",
                index: row,
                limit: self.rows,
            });
        }
        Ok(())
    }

    fn check_col(&self, col: usize) -> Result<()> {
        if col >= self.cols {
            return Err(CrossbarError::OutOfBounds {
                what: "col",
                index: col,
                limit: self.cols,
            });
        }
        Ok(())
    }

    /// Resolves `cols` shifted by `shift` against the column count,
    /// reporting the first offending output column exactly like the
    /// historical per-column walk did.
    fn shifted_span(&self, cols: &Range<usize>, shift: isize) -> Result<Range<usize>> {
        let start = cols.start as isize + shift;
        let end = cols.end as isize + shift;
        if start < 0 {
            return Err(CrossbarError::OutOfBounds {
                what: "shifted col",
                index: 0,
                limit: self.cols,
            });
        }
        if end as usize > self.cols {
            let first_bad = (self.cols as isize - shift).max(cols.start as isize);
            return Err(CrossbarError::OutOfBounds {
                what: "shifted col",
                index: (first_bad + shift) as usize,
                limit: self.cols,
            });
        }
        Ok(start as usize..end as usize)
    }

    fn charge_writes(&mut self, cells: usize) {
        self.stats.cell_writes += cells as u64;
        let energy = self.energy.write_op(cells);
        self.stats.energy += energy;
        self.stats.energy_breakdown.write += energy;
    }

    // ---------------------------------------------------------------
    // Data movement (no compute cycles)
    // ---------------------------------------------------------------

    /// Stores one bit as resident data: counts the write and its energy but
    /// no compute cycles (datasets are assumed memory-resident, §4.2).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn preload_bit(&mut self, block: BlockId, row: usize, col: usize, bit: bool) -> Result<()> {
        self.record(|| TraceOp::PreloadBit {
            block: block.0,
            row,
            col,
            value: bit,
        });
        self.blocks[block.0].set(row, col, bit)?;
        self.charge_writes(1);
        Ok(())
    }

    /// Stores a word (LSB first) along a row starting at `col0`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] if the word does not fit; the
    /// crossbar is left unchanged.
    pub fn preload_word(
        &mut self,
        block: BlockId,
        row: usize,
        col0: usize,
        bits: &[bool],
    ) -> Result<()> {
        self.record(|| TraceOp::PreloadWord {
            block: block.0,
            row,
            col0,
            bits: bits.to_vec(),
        });
        self.check_word_store(row, col0, bits.len())?;
        self.blocks[block.0].store_bools(row, col0, bits);
        self.charge_writes(bits.len());
        Ok(())
    }

    /// Stores the low `width ≤ 64` bits of `value` (LSB first) along a row
    /// starting at `col0` — the packed fast path of
    /// [`BlockedCrossbar::preload_word`], with identical accounting and
    /// trace recording.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] for `width > 64` and
    /// [`CrossbarError::OutOfBounds`] if the word does not fit.
    pub fn preload_u64(
        &mut self,
        block: BlockId,
        row: usize,
        col0: usize,
        width: usize,
        value: u64,
    ) -> Result<()> {
        self.record(|| TraceOp::PreloadWord {
            block: block.0,
            row,
            col0,
            // Oversized widths are recorded (then rejected below); guard the
            // shift so the request still lands in the trace.
            bits: (0..width)
                .map(|i| i < WORD_BITS && (value >> i) & 1 == 1)
                .collect(),
        });
        if width > WORD_BITS {
            return Err(CrossbarError::InvalidConfig(format!(
                "preload_u64 width {width} exceeds {WORD_BITS} bits"
            )));
        }
        self.check_word_store(row, col0, width)?;
        self.blocks[block.0].store_word_bits(row, col0, width, value);
        self.charge_writes(width);
        Ok(())
    }

    /// Stores `len` OFF cells along a row starting at `col0` (any length) —
    /// the fast path for zeroing accumulator rows, accounted like a
    /// same-length [`BlockedCrossbar::preload_word`].
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] if the span does not fit.
    pub fn preload_zeros(
        &mut self,
        block: BlockId,
        row: usize,
        col0: usize,
        len: usize,
    ) -> Result<()> {
        self.record(|| TraceOp::PreloadWord {
            block: block.0,
            row,
            col0,
            bits: vec![false; len],
        });
        self.check_word_store(row, col0, len)?;
        self.blocks[block.0].store_zeros(row, col0, len);
        self.charge_writes(len);
        Ok(())
    }

    /// Validates a `len`-cell store at `(row, col0..)`, reporting the same
    /// error payloads the historical per-cell walk produced.
    fn check_word_store(&self, row: usize, col0: usize, len: usize) -> Result<()> {
        self.check_row(row)?;
        if col0 + len > self.cols {
            return Err(CrossbarError::OutOfBounds {
                what: "col",
                index: col0.max(self.cols),
                limit: self.cols,
            });
        }
        Ok(())
    }

    /// Debug read of one cell — free of charge, for tests and result
    /// extraction outside the modelled computation.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn peek_bit(&self, block: BlockId, row: usize, col: usize) -> Result<bool> {
        self.blocks[block.0].get(row, col)
    }

    /// Debug read of `len` bits (LSB first) along a row.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] if the range does not fit.
    pub fn peek_word(
        &self,
        block: BlockId,
        row: usize,
        col0: usize,
        len: usize,
    ) -> Result<Vec<bool>> {
        (0..len)
            .map(|i| self.blocks[block.0].get(row, col0 + i))
            .collect()
    }

    /// Debug read of `width ≤ 64` bits (LSB first) along a row as a packed
    /// word — the fast path of [`BlockedCrossbar::peek_word`].
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] for `width > 64` and
    /// [`CrossbarError::OutOfBounds`] if the range does not fit.
    pub fn peek_u64(&self, block: BlockId, row: usize, col0: usize, width: usize) -> Result<u64> {
        if width > WORD_BITS {
            return Err(CrossbarError::InvalidConfig(format!(
                "peek_u64 width {width} exceeds {WORD_BITS} bits"
            )));
        }
        self.check_word_store(row, col0, width)?;
        Ok(self.blocks[block.0].read_word_bits(row, col0, width))
    }

    /// Per-cell write count (endurance proxy) — debug accessor for wear
    /// studies and the differential suites.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn cell_writes(&self, block: BlockId, row: usize, col: usize) -> Result<u64> {
        self.blocks[block.0].cell_writes(row, col)
    }

    // ---------------------------------------------------------------
    // Sense-amplifier reads
    // ---------------------------------------------------------------

    /// Reads one bit through the sense amplifier.
    ///
    /// The 0.3 ns read is sub-cycle and overlapped with MAGIC execution
    /// (§3.3), so it charges energy and a read count but no cycles.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn read_bit(&mut self, block: BlockId, row: usize, col: usize) -> Result<bool> {
        self.record(|| TraceOp::ReadBit {
            block: block.0,
            row,
            col,
        });
        let bit = self.blocks[block.0].get(row, col)?;
        self.stats.reads += 1;
        self.stats.energy += self.energy.read_op(1);
        self.stats.energy_breakdown.read += self.energy.read_op(1);
        Ok(bit)
    }

    /// Evaluates the majority of three cells in one column through the
    /// modified sense amplifier (Figure 3(b)).
    ///
    /// Charged one cycle: the 0.3 ns read + 0.6 ns MAJ fit inside one
    /// 1.1 ns cycle, and the paper accounts MAJ-plus-writeback as 2 cycles
    /// per bit (§3.4) — the write-back is the second cycle, performed with
    /// [`BlockedCrossbar::write_back_bit`].
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn maj_read(&mut self, block: BlockId, cells: [(usize, usize); 3]) -> Result<bool> {
        self.record(|| TraceOp::MajRead {
            block: block.0,
            cells,
        });
        let a = self.blocks[block.0].get(cells[0].0, cells[0].1)?;
        let b = self.blocks[block.0].get(cells[1].0, cells[1].1)?;
        let c = self.blocks[block.0].get(cells[2].0, cells[2].1)?;
        self.stats.maj_ops += 1;
        self.stats.cycles += Cycles::new(1);
        self.stats.energy += self.energy.maj_op(1);
        self.stats.energy_breakdown.maj += self.energy.maj_op(1);
        Ok((a & b) | (b & c) | (c & a))
    }

    /// Writes one bit produced by peripheral logic back into the array:
    /// one cycle, one cell write.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn write_back_bit(
        &mut self,
        block: BlockId,
        row: usize,
        col: usize,
        bit: bool,
    ) -> Result<()> {
        self.record(|| TraceOp::WriteBackBit {
            block: block.0,
            row,
            col,
            value: bit,
        });
        self.blocks[block.0].set(row, col, bit)?;
        self.stats.cell_writes += 1;
        self.stats.cycles += Cycles::new(1);
        self.stats.energy += self.energy.write_op(1);
        self.stats.energy_breakdown.write += self.energy.write_op(1);
        Ok(())
    }

    // ---------------------------------------------------------------
    // MAGIC execution
    // ---------------------------------------------------------------

    /// Initializes output cells to the ON state ahead of MAGIC evaluation.
    ///
    /// Initialization of future output rows is overlapped with ongoing
    /// evaluation on other rows (standard MAGIC scheduling), so it charges
    /// writes and energy but no cycles; routines that cannot hide it call
    /// [`BlockedCrossbar::advance_cycles`] explicitly.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates; the
    /// whole request is validated before any cell is written.
    pub fn init_rows(&mut self, block: BlockId, rows: &[usize], cols: Range<usize>) -> Result<()> {
        self.record(|| TraceOp::InitRows {
            block: block.0,
            rows: rows.to_vec(),
            cols: cols.clone(),
        });
        self.check_range(&cols)?;
        for &row in rows {
            self.check_row(row)?;
        }
        for &row in rows {
            self.blocks[block.0].fill_on_span(row, &cols);
        }
        self.charge_writes(rows.len() * cols.len());
        Ok(())
    }

    /// Initializes scattered cells to the ON state (same accounting as
    /// [`BlockedCrossbar::init_rows`]).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates; the
    /// whole request is validated before any cell is written.
    pub fn init_cells(&mut self, block: BlockId, cells: &[(usize, usize)]) -> Result<()> {
        self.record(|| TraceOp::InitCells {
            block: block.0,
            cells: cells.to_vec(),
        });
        for &(row, col) in cells {
            self.check_row(row)?;
            self.check_col(col)?;
        }
        for &(row, col) in cells {
            self.blocks[block.0]
                .set(row, col, true)
                .expect("cells validated");
        }
        self.charge_writes(cells.len());
        Ok(())
    }

    /// One column-parallel MAGIC NOR: for every column `c` in `cols`,
    /// `out[c + shift] = NOR(inputs[c]…)`. Costs exactly one cycle
    /// regardless of width.
    ///
    /// All inputs must live in one block. If `out` is in the same block the
    /// shift must be zero; crossing into another block goes through the
    /// configurable interconnect, which applies the shift *for free* (§3.1)
    /// while charging interconnect energy.
    ///
    /// On the packed backend the evaluation is word-parallel: inputs fold
    /// with word-OR, the NOR is `!fold` under the span's edge masks, and a
    /// cross-block shift is a cross-word funnel shift.
    ///
    /// The full request — column range, shift legality and (in strict
    /// mode) every output cell's initialization — is validated before any
    /// write, so a rejected NOR leaves the crossbar unchanged.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::InputsSpanBlocks`] if inputs are spread over
    ///   several blocks.
    /// * [`CrossbarError::ShiftWithinBlock`] for a nonzero same-block shift.
    /// * [`CrossbarError::OutOfBounds`] if any coordinate (after shifting)
    ///   falls outside the arrays.
    /// * [`CrossbarError::UninitializedOutput`] in strict mode when an
    ///   output cell was not initialized to ON.
    pub fn nor_rows_shifted(
        &mut self,
        inputs: &[RowRef],
        out: RowRef,
        cols: Range<usize>,
        shift: isize,
    ) -> Result<()> {
        self.record(|| TraceOp::nor_rows(inputs, out, cols.clone(), shift));
        self.check_range(&cols)?;
        let in_block = match inputs {
            [] => {
                return Err(CrossbarError::InvalidConfig(
                    "NOR needs at least one input row".into(),
                ))
            }
            [first, rest @ ..] => {
                if rest.iter().any(|r| r.block != first.block) {
                    return Err(CrossbarError::InputsSpanBlocks);
                }
                first.block
            }
        };
        let cross_block = in_block != out.block;
        if !cross_block && shift != 0 {
            return Err(CrossbarError::ShiftWithinBlock { shift });
        }
        let out_span = self.shifted_span(&cols, shift)?;
        self.check_row(out.row)?;
        for input in inputs {
            self.check_row(input.row)?;
        }
        if self.strict_init {
            if let Some(col) = self.blocks[out.block.0].first_off(out.row, &out_span) {
                return Err(CrossbarError::UninitializedOutput {
                    block: out.block.0,
                    row: out.row,
                    col,
                });
            }
        }
        let width = cols.len();
        // Hot path: gather input rows on the stack (MAGIC fan-in rarely
        // exceeds a handful of rows), spilling to the heap only beyond 8.
        let mut row_buf = [0usize; 8];
        let mut row_spill = Vec::new();
        let in_rows: &[usize] = if inputs.len() <= row_buf.len() {
            for (slot, r) in row_buf.iter_mut().zip(inputs) {
                *slot = r.row;
            }
            &row_buf[..inputs.len()]
        } else {
            row_spill.extend(inputs.iter().map(|r| r.row));
            &row_spill
        };
        if cross_block {
            let (inp, dst) = pair_mut(&mut self.blocks, in_block.0, out.block.0);
            nor_cross(inp, in_rows, dst, out.row, &cols, shift);
        } else {
            self.blocks[in_block.0].nor_same(in_rows, out.row, &cols);
        }
        self.stats.nor_ops += 1;
        self.stats.nor_cells += width as u64;
        self.stats.cycles += Cycles::new(1);
        let nor_energy = self.energy.nor_op(width);
        self.stats.energy += nor_energy;
        self.stats.energy_breakdown.nor += nor_energy;
        if cross_block {
            self.stats.interconnect_bits += width as u64;
            let link_energy = self.energy.interconnect_op(width);
            self.stats.energy += link_energy;
            self.stats.energy_breakdown.interconnect += link_energy;
        }
        Ok(())
    }

    /// One row-parallel MAGIC NOR along *columns*: for every row `r` in
    /// `rows`, `out_col[r] = NOR(input_cols[r]...)` — the transposed twin of
    /// [`BlockedCrossbar::nor_rows_shifted`] ("in case of NOR in a column,
    /// the execution voltage is applied to the wordlines of the outputs").
    /// Costs one cycle regardless of the row count. All cells live in one
    /// block; column layouts do not cross the (bitline-oriented)
    /// interconnect, so no shift is available.
    ///
    /// Like the row-parallel twin, the whole request is validated before
    /// any write.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::InvalidConfig`] for an empty input set.
    /// * [`CrossbarError::OutOfBounds`] for invalid coordinates.
    /// * [`CrossbarError::UninitializedOutput`] in strict mode when an
    ///   output cell was not initialized to ON.
    pub fn nor_cols(
        &mut self,
        block: BlockId,
        input_cols: &[usize],
        out_col: usize,
        rows: Range<usize>,
    ) -> Result<()> {
        self.record(|| TraceOp::NorCols {
            block: block.0,
            input_cols: input_cols.to_vec(),
            out_col,
            rows: rows.clone(),
        });
        if input_cols.is_empty() {
            return Err(CrossbarError::InvalidConfig(
                "NOR needs at least one input column".into(),
            ));
        }
        if rows.end > self.rows || rows.start >= rows.end {
            return Err(CrossbarError::OutOfBounds {
                what: "row range",
                index: rows.end,
                limit: self.rows,
            });
        }
        self.check_col(out_col)?;
        for &col in input_cols {
            self.check_col(col)?;
        }
        if self.strict_init {
            for row in rows.clone() {
                let before = self.blocks[block.0]
                    .get(row, out_col)
                    .expect("rows validated");
                if !semantics::strict_init_ok(before) {
                    return Err(CrossbarError::UninitializedOutput {
                        block: block.0,
                        row,
                        col: out_col,
                    });
                }
            }
        }
        let height = rows.len();
        for row in rows {
            let value = semantics::nor_bits(
                input_cols
                    .iter()
                    .map(|&col| self.blocks[block.0].get(row, col).expect("cols validated")),
            );
            self.blocks[block.0]
                .set(row, out_col, value)
                .expect("cols validated");
        }
        self.stats.nor_ops += 1;
        self.stats.nor_cells += height as u64;
        self.stats.cycles += Cycles::new(1);
        self.stats.energy += self.energy.nor_op(height);
        self.stats.energy_breakdown.nor += self.energy.nor_op(height);
        Ok(())
    }

    /// Initializes a column segment to the ON state (the column twin of
    /// [`BlockedCrossbar::init_rows`]; same zero-cycle accounting).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates; the
    /// whole request is validated before any cell is written.
    pub fn init_cols(&mut self, block: BlockId, cols: &[usize], rows: Range<usize>) -> Result<()> {
        self.record(|| TraceOp::InitCols {
            block: block.0,
            cols: cols.to_vec(),
            rows: rows.clone(),
        });
        if rows.end > self.rows || rows.start >= rows.end {
            return Err(CrossbarError::OutOfBounds {
                what: "row range",
                index: rows.end,
                limit: self.rows,
            });
        }
        for &col in cols {
            self.check_col(col)?;
        }
        for &col in cols {
            for row in rows.clone() {
                self.blocks[block.0].set(row, col, true).expect("validated");
            }
        }
        self.charge_writes(cols.len() * rows.len());
        Ok(())
    }

    /// One single-bit MAGIC NOR over scattered cells of one block (used for
    /// the serial carry chains). Costs one cycle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockedCrossbar::nor_rows_shifted`] where
    /// applicable.
    pub fn nor_cells(
        &mut self,
        block: BlockId,
        inputs: &[(usize, usize)],
        out: (usize, usize),
    ) -> Result<()> {
        self.record(|| TraceOp::NorCells {
            block: block.0,
            inputs: inputs.to_vec(),
            out,
        });
        if inputs.is_empty() {
            return Err(CrossbarError::InvalidConfig(
                "NOR needs at least one input cell".into(),
            ));
        }
        if self.strict_init && !semantics::strict_init_ok(self.blocks[block.0].get(out.0, out.1)?) {
            return Err(CrossbarError::UninitializedOutput {
                block: block.0,
                row: out.0,
                col: out.1,
            });
        }
        for &(row, col) in inputs {
            self.check_row(row)?;
            self.check_col(col)?;
        }
        let value = semantics::nor_bits(
            inputs
                .iter()
                .map(|&(row, col)| self.blocks[block.0].get(row, col).expect("cells validated")),
        );
        self.blocks[block.0].set(out.0, out.1, value)?;
        self.stats.nor_ops += 1;
        self.stats.nor_cells += 1;
        self.stats.cycles += Cycles::new(1);
        self.stats.energy += self.energy.nor_op(1);
        self.stats.energy_breakdown.nor += self.energy.nor_op(1);
        Ok(())
    }

    /// One lane-parallel MAGIC NOR over scattered column *spans* of one
    /// block: for every lane `j < lanes`, the single-bit gate
    /// `(out.0, out.1 + j) = NOR(inputs[i].0, inputs[i].1 + j)` fires.
    /// Costs one cycle regardless of the lane count — each lane's gate
    /// uses its own bitlines, so the `lanes` gates share one voltage
    /// application exactly as the columns of
    /// [`BlockedCrossbar::nor_rows_shifted`] do. This is the SIMD
    /// backbone of lane-batched kernels: the serial adder's carry step
    /// crosses columns *within* a block (which the interconnect shift of
    /// `nor_rows_shifted` cannot express), and `nor_lanes` replicates it
    /// across up to 64 independent operand instances at once.
    ///
    /// Spans must be pairwise identical or disjoint; a partial overlap
    /// would wire one lane's output bitline as another lane's input
    /// bitline inside the same cycle, which no single voltage pattern can
    /// realize.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::InvalidConfig`] for an empty input set or a lane
    ///   count outside `1..=64`.
    /// * [`CrossbarError::OutOfBounds`] if any span falls outside the
    ///   arrays.
    /// * [`CrossbarError::LaneOverlap`] for partially overlapping spans.
    /// * [`CrossbarError::UninitializedOutput`] in strict mode when an
    ///   output cell was not initialized to ON.
    pub fn nor_lanes(
        &mut self,
        block: BlockId,
        inputs: &[(usize, usize)],
        out: (usize, usize),
        lanes: usize,
    ) -> Result<()> {
        self.record(|| TraceOp::NorLanes {
            block: block.0,
            inputs: inputs.to_vec(),
            out,
            lanes,
        });
        if inputs.is_empty() {
            return Err(CrossbarError::InvalidConfig(
                "NOR needs at least one input span".into(),
            ));
        }
        if lanes == 0 || lanes > WORD_BITS {
            return Err(CrossbarError::InvalidConfig(format!(
                "nor_lanes lane count {lanes} outside 1..={WORD_BITS}"
            )));
        }
        self.check_row(out.0)?;
        self.check_word_store(out.0, out.1, lanes)?;
        for &(row, col0) in inputs {
            self.check_row(row)?;
            self.check_word_store(row, col0, lanes)?;
        }
        let disjoint = |a: usize, b: usize| a == b || a.abs_diff(b) >= lanes;
        for (i, &(_, a)) in inputs.iter().enumerate() {
            if !disjoint(a, out.1) {
                return Err(CrossbarError::LaneOverlap { a, b: out.1, lanes });
            }
            for &(_, b) in &inputs[..i] {
                if !disjoint(a, b) {
                    return Err(CrossbarError::LaneOverlap { a, b, lanes });
                }
            }
        }
        if self.strict_init {
            if let Some(col) = self.blocks[block.0].first_off(out.0, &(out.1..out.1 + lanes)) {
                return Err(CrossbarError::UninitializedOutput {
                    block: block.0,
                    row: out.0,
                    col,
                });
            }
        }
        let value = semantics::nor_words(
            inputs
                .iter()
                .map(|&(row, col0)| self.blocks[block.0].read_word_bits(row, col0, lanes)),
        );
        self.blocks[block.0].store_word_bits(out.0, out.1, lanes, value);
        self.stats.nor_ops += 1;
        self.stats.nor_cells += lanes as u64;
        self.stats.cycles += Cycles::new(1);
        let nor_energy = self.energy.nor_op(lanes);
        self.stats.energy += nor_energy;
        self.stats.energy_breakdown.nor += nor_energy;
        Ok(())
    }

    /// Copies a row segment into another block with an optional shift.
    ///
    /// A copy is two successive NOT (single-input NOR) operations; this
    /// helper charges both (2 cycles) and handles intermediate
    /// initialization. Routines that copy one source to *many*
    /// destinations should perform the first NOT once and reuse it — see
    /// the multiplier's partial-product generator in `apim-logic`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockedCrossbar::nor_rows_shifted`].
    pub fn copy_row_shifted(
        &mut self,
        src: RowRef,
        scratch: RowRef,
        dst: RowRef,
        cols: Range<usize>,
        shift: isize,
    ) -> Result<()> {
        self.init_rows(scratch.block, &[scratch.row], cols.clone())?;
        self.nor_rows_shifted(&[src], scratch, cols.clone(), 0)?;
        let shifted = shift_range(&cols, 0);
        self.init_rows(
            dst.block,
            &[dst.row],
            shift_range(&cols, shift).ok_or(CrossbarError::OutOfBounds {
                what: "shifted col",
                index: cols.end,
                limit: self.cols,
            })?,
        )?;
        self.nor_rows_shifted(&[scratch], dst, shifted.expect("zero shift"), shift)?;
        Ok(())
    }

    // ---------------------------------------------------------------
    // Fault injection / endurance (extension)
    // ---------------------------------------------------------------

    /// Injects (or clears) a stuck-at fault.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn inject_fault(
        &mut self,
        block: BlockId,
        row: usize,
        col: usize,
        fault: Option<Fault>,
    ) -> Result<()> {
        self.blocks[block.0].inject_fault(row, col, fault)
    }

    /// Per-block endurance summary.
    pub fn wear_report(&self) -> crate::wear::WearReport {
        crate::wear::WearReport {
            blocks: self
                .blocks
                .iter()
                .enumerate()
                .map(|(i, arr)| {
                    let total = arr.total_cell_writes();
                    crate::wear::BlockWear {
                        block: i,
                        max_cell_writes: arr.max_cell_writes(),
                        total_writes: total,
                        mean_writes: total as f64 / arr.cell_count() as f64,
                    }
                })
                .collect(),
        }
    }

    /// The highest per-cell write count across all blocks (wear hotspot).
    pub fn max_cell_writes(&self) -> u64 {
        self.blocks
            .iter()
            .map(Store::max_cell_writes)
            .max()
            .unwrap_or(0)
    }

    /// The `k` most-written cells across every block, hottest first (ties
    /// broken by coordinate). Built from the same two-level counters as
    /// [`BlockedCrossbar::wear_report`]; never-written cells are omitted.
    pub fn hotspots(&self, k: usize) -> Vec<crate::wear::HotSpot> {
        let mut cells: Vec<crate::wear::HotSpot> = self
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(block, store)| {
                store
                    .hotspots(k)
                    .into_iter()
                    .map(move |(row, col, writes)| crate::wear::HotSpot {
                        block,
                        row,
                        col,
                        writes,
                    })
            })
            .collect();
        cells.sort_by(|a, b| {
            b.writes
                .cmp(&a.writes)
                .then(a.block.cmp(&b.block))
                .then(a.row.cmp(&b.row))
                .then(a.col.cmp(&b.col))
        });
        cells.truncate(k);
        cells
    }

    /// Number of cells currently carrying an injected stuck-at fault,
    /// summed over every block.
    pub fn fault_count(&self) -> usize {
        self.blocks.iter().map(Store::fault_count).sum()
    }
}

/// Shifts a column range, returning `None` on underflow.
fn shift_range(cols: &Range<usize>, shift: isize) -> Option<Range<usize>> {
    let start = cols.start as isize + shift;
    let end = cols.end as isize + shift;
    if start < 0 || end < 0 {
        return None;
    }
    Some(start as usize..end as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xbar() -> BlockedCrossbar {
        BlockedCrossbar::new(CrossbarConfig::default()).unwrap()
    }

    fn scalar_xbar() -> BlockedCrossbar {
        BlockedCrossbar::new(CrossbarConfig {
            backend: Backend::Scalar,
            ..CrossbarConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let bad = CrossbarConfig {
            blocks: 1,
            ..CrossbarConfig::default()
        };
        assert!(BlockedCrossbar::new(bad).is_err());
        let bad = CrossbarConfig {
            rows: 0,
            ..CrossbarConfig::default()
        };
        assert!(BlockedCrossbar::new(bad).is_err());
    }

    #[test]
    fn default_backend_is_packed() {
        assert_eq!(xbar().backend(), Backend::Packed);
        assert_eq!(scalar_xbar().backend(), Backend::Scalar);
    }

    #[test]
    fn roles_default_and_reassign() {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        assert_eq!(x.role(b0), BlockRole::Data);
        assert_eq!(x.role(b1), BlockRole::Processing);
        x.set_role(b1, BlockRole::Data);
        assert_eq!(x.role(b1), BlockRole::Data);
    }

    #[test]
    fn no_such_block() {
        let x = xbar();
        assert!(matches!(
            x.block(99),
            Err(CrossbarError::NoSuchBlock { .. })
        ));
    }

    #[test]
    fn preload_charges_no_cycles() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_word(b, 0, 0, &[true, true, false]).unwrap();
        assert_eq!(x.stats().cycles, Cycles::ZERO);
        assert_eq!(x.stats().cell_writes, 3);
        assert!(x.stats().energy.as_joules() > 0.0);
    }

    #[test]
    fn nor_truth_table() {
        for mut x in [xbar(), scalar_xbar()] {
            let b = x.block(0).unwrap();
            for (a, bb, expected) in [
                (false, false, true),
                (false, true, false),
                (true, false, false),
                (true, true, false),
            ] {
                x.preload_bit(b, 0, 0, a).unwrap();
                x.preload_bit(b, 1, 0, bb).unwrap();
                x.init_rows(b, &[2], 0..1).unwrap();
                x.nor_rows_shifted(
                    &[RowRef::new(b, 0), RowRef::new(b, 1)],
                    RowRef::new(b, 2),
                    0..1,
                    0,
                )
                .unwrap();
                assert_eq!(x.peek_bit(b, 2, 0).unwrap(), expected);
            }
        }
    }

    #[test]
    fn nor_is_width_parallel_one_cycle() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_word(b, 0, 0, &[false; 64]).unwrap();
        x.init_rows(b, &[1], 0..64).unwrap();
        let before = x.stats().cycles;
        x.nor_rows_shifted(&[RowRef::new(b, 0)], RowRef::new(b, 1), 0..64, 0)
            .unwrap();
        assert_eq!((x.stats().cycles - before).get(), 1);
        assert_eq!(x.peek_word(b, 1, 0, 64).unwrap(), vec![true; 64]);
    }

    #[test]
    fn cross_block_shift_applies_offset() {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        x.preload_word(b0, 0, 0, &[false, true, false, false])
            .unwrap();
        x.init_rows(b1, &[0], 3..7).unwrap();
        // NOT with shift +3: out[c+3] = !in[c]
        x.nor_rows_shifted(&[RowRef::new(b0, 0)], RowRef::new(b1, 0), 0..4, 3)
            .unwrap();
        assert_eq!(
            x.peek_word(b1, 0, 3, 4).unwrap(),
            vec![true, false, true, true]
        );
        assert_eq!(x.stats().interconnect_bits, 4);
    }

    #[test]
    fn cross_block_shift_crosses_word_boundaries() {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        let pattern: Vec<bool> = (0..80).map(|i| i % 3 == 0).collect();
        x.preload_word(b0, 0, 20, &pattern).unwrap();
        x.init_rows(b1, &[0], 90..170).unwrap();
        x.nor_rows_shifted(&[RowRef::new(b0, 0)], RowRef::new(b1, 0), 20..100, 70)
            .unwrap();
        let got = x.peek_word(b1, 0, 90, 80).unwrap();
        let expect: Vec<bool> = pattern.iter().map(|&b| !b).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn same_block_shift_rejected() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.init_rows(b, &[1], 0..8).unwrap();
        let err = x
            .nor_rows_shifted(&[RowRef::new(b, 0)], RowRef::new(b, 1), 0..4, 2)
            .unwrap_err();
        assert_eq!(err, CrossbarError::ShiftWithinBlock { shift: 2 });
    }

    #[test]
    fn inputs_must_share_a_block() {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        x.init_rows(b0, &[2], 0..4).unwrap();
        let err = x
            .nor_rows_shifted(
                &[RowRef::new(b0, 0), RowRef::new(b1, 1)],
                RowRef::new(b0, 2),
                0..4,
                0,
            )
            .unwrap_err();
        assert_eq!(err, CrossbarError::InputsSpanBlocks);
    }

    #[test]
    fn strict_init_catches_missing_initialization() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        // Row 1 never initialized: cells read 0 -> strict mode errors.
        let err = x
            .nor_rows_shifted(&[RowRef::new(b, 0)], RowRef::new(b, 1), 0..4, 0)
            .unwrap_err();
        assert!(matches!(err, CrossbarError::UninitializedOutput { .. }));
    }

    #[test]
    fn rejected_nor_leaves_crossbar_unchanged() {
        // Regression for the historical partial-mutation bug: a mid-range
        // strict-init (or bounds) failure used to leave already-visited
        // columns overwritten. The full request is now validated up front.
        for mut x in [xbar(), scalar_xbar()] {
            let b = x.block(0).unwrap();
            x.preload_word(b, 0, 0, &[true; 8]).unwrap();
            // Columns 0..4 initialized, 4..8 NOT initialized: the NOR over
            // 0..8 must fail on column 4 and write nothing.
            x.init_rows(b, &[1], 0..4).unwrap();
            let stats_before = *x.stats();
            let row_before = x.peek_word(b, 1, 0, 8).unwrap();
            let wear_before: Vec<u64> = (0..8).map(|c| x.cell_writes(b, 1, c).unwrap()).collect();
            let err = x
                .nor_rows_shifted(&[RowRef::new(b, 0)], RowRef::new(b, 1), 0..8, 0)
                .unwrap_err();
            assert_eq!(
                err,
                CrossbarError::UninitializedOutput {
                    block: 0,
                    row: 1,
                    col: 4
                }
            );
            assert_eq!(x.peek_word(b, 1, 0, 8).unwrap(), row_before);
            assert_eq!(*x.stats(), stats_before);
            let wear_after: Vec<u64> = (0..8).map(|c| x.cell_writes(b, 1, c).unwrap()).collect();
            assert_eq!(wear_after, wear_before, "no wear on a rejected op");
        }
    }

    #[test]
    fn rejected_shifted_nor_leaves_crossbar_unchanged() {
        for mut x in [xbar(), scalar_xbar()] {
            let b0 = x.block(0).unwrap();
            let b1 = x.block(1).unwrap();
            let cols = 250..256;
            x.init_rows(b1, &[0], cols.clone()).unwrap();
            let before = x.peek_word(b1, 0, 248, 8).unwrap();
            let stats_before = *x.stats();
            let err = x
                .nor_rows_shifted(&[RowRef::new(b0, 0)], RowRef::new(b1, 0), cols, 10)
                .unwrap_err();
            assert!(matches!(err, CrossbarError::OutOfBounds { .. }));
            assert_eq!(x.peek_word(b1, 0, 248, 8).unwrap(), before);
            assert_eq!(*x.stats(), stats_before);
        }
    }

    #[test]
    fn rejected_init_rows_leaves_crossbar_unchanged() {
        for mut x in [xbar(), scalar_xbar()] {
            let b = x.block(0).unwrap();
            let stats_before = *x.stats();
            // Second row out of bounds: nothing (including row 0) is set.
            let err = x.init_rows(b, &[0, 9999], 0..4).unwrap_err();
            assert!(matches!(err, CrossbarError::OutOfBounds { .. }));
            assert_eq!(x.peek_word(b, 0, 0, 4).unwrap(), vec![false; 4]);
            assert_eq!(*x.stats(), stats_before);
        }
    }

    #[test]
    fn non_strict_mode_allows_uninitialized_outputs() {
        let cfg = CrossbarConfig {
            strict_init: false,
            ..CrossbarConfig::default()
        };
        let mut x = BlockedCrossbar::new(cfg).unwrap();
        let b = x.block(0).unwrap();
        x.nor_rows_shifted(&[RowRef::new(b, 0)], RowRef::new(b, 1), 0..4, 0)
            .unwrap();
        assert_eq!(x.peek_word(b, 1, 0, 4).unwrap(), vec![true; 4]);
    }

    #[test]
    fn nor_cells_single_bit() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_bit(b, 0, 0, true).unwrap();
        x.preload_bit(b, 0, 1, false).unwrap();
        x.init_cells(b, &[(0, 2)]).unwrap();
        x.nor_cells(b, &[(0, 0), (0, 1)], (0, 2)).unwrap();
        assert!(!x.peek_bit(b, 0, 2).unwrap());
        assert_eq!(x.stats().cycles.get(), 1);
    }

    #[test]
    fn nor_lanes_matches_per_lane_nor_cells_on_both_backends() {
        for mut x in [xbar(), scalar_xbar()] {
            let b = x.block(0).unwrap();
            let lanes = 8;
            x.preload_u64(b, 0, 0, lanes, 0b1010_0110).unwrap();
            x.preload_u64(b, 1, 0, lanes, 0b1100_0011).unwrap();
            x.init_rows(b, &[2], 16..16 + lanes).unwrap();
            let before = x.stats().cycles;
            x.nor_lanes(b, &[(0, 0), (1, 0)], (2, 16), lanes).unwrap();
            assert_eq!(
                (x.stats().cycles - before).get(),
                1,
                "one cycle, any lane count"
            );
            let expected = !(0b1010_0110u64 | 0b1100_0011) & 0xFF;
            assert_eq!(x.peek_u64(b, 2, 16, lanes).unwrap(), expected);
        }
    }

    #[test]
    fn nor_lanes_allows_equal_spans_and_rejects_partial_overlap() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_u64(b, 0, 0, 8, 0x0F).unwrap();
        x.preload_u64(b, 1, 0, 8, 0x33).unwrap();
        x.init_rows(b, &[2], 8..16).unwrap();
        // Equal input spans are fine (same bitlines, different wordlines).
        x.nor_lanes(b, &[(0, 0), (1, 0)], (2, 8), 8).unwrap();
        // Output span partially overlapping an input span is not.
        x.init_rows(b, &[3], 4..12).unwrap();
        let err = x.nor_lanes(b, &[(0, 0)], (3, 4), 8).unwrap_err();
        assert!(matches!(err, CrossbarError::LaneOverlap { .. }));
        // Two input spans partially overlapping each other, likewise.
        x.init_rows(b, &[3], 16..24).unwrap();
        let err = x.nor_lanes(b, &[(0, 0), (1, 6)], (3, 16), 8).unwrap_err();
        assert!(matches!(err, CrossbarError::LaneOverlap { .. }));
    }

    #[test]
    fn nor_lanes_validates_before_writing() {
        for mut x in [xbar(), scalar_xbar()] {
            let b = x.block(0).unwrap();
            x.init_rows(b, &[2], 0..8).unwrap();
            let stats_before = *x.stats();
            let err = x.nor_lanes(b, &[(9999, 0)], (2, 0), 8).unwrap_err();
            assert!(matches!(err, CrossbarError::OutOfBounds { .. }));
            assert_eq!(x.peek_u64(b, 2, 0, 8).unwrap(), 0xFF, "init kept");
            assert_eq!(*x.stats(), stats_before);
            assert!(x.nor_lanes(b, &[], (2, 0), 8).is_err(), "empty inputs");
            assert!(x.nor_lanes(b, &[(0, 0)], (2, 0), 0).is_err(), "0 lanes");
            assert!(x.nor_lanes(b, &[(0, 0)], (2, 0), 65).is_err(), "65 lanes");
        }
    }

    #[test]
    fn nor_lanes_respects_strict_init() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_u64(b, 0, 0, 4, 0x5).unwrap();
        let err = x.nor_lanes(b, &[(0, 0)], (1, 8), 4).unwrap_err();
        assert!(matches!(err, CrossbarError::UninitializedOutput { .. }));
    }

    #[test]
    fn nor_cols_is_the_transposed_twin() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        // Column 0: bits per row; column 1: bits per row.
        for (row, (a, bb)) in [(false, false), (false, true), (true, false), (true, true)]
            .into_iter()
            .enumerate()
        {
            x.preload_bit(b, row, 0, a).unwrap();
            x.preload_bit(b, row, 1, bb).unwrap();
        }
        x.init_cols(b, &[2], 0..4).unwrap();
        let before = x.stats().cycles;
        x.nor_cols(b, &[0, 1], 2, 0..4).unwrap();
        assert_eq!(
            (x.stats().cycles - before).get(),
            1,
            "one cycle, any height"
        );
        let got: Vec<bool> = (0..4).map(|r| x.peek_bit(b, r, 2).unwrap()).collect();
        assert_eq!(got, vec![true, false, false, false]);
    }

    #[test]
    fn nor_cols_respects_strict_init() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        let err = x.nor_cols(b, &[0], 1, 0..4).unwrap_err();
        assert!(matches!(err, CrossbarError::UninitializedOutput { .. }));
        assert!(x.nor_cols(b, &[], 1, 0..4).is_err());
        assert!(x.nor_cols(b, &[0], 1, 0..9999).is_err());
    }

    #[test]
    fn nor_cols_validates_before_writing() {
        for mut x in [xbar(), scalar_xbar()] {
            let b = x.block(0).unwrap();
            x.init_cols(b, &[2], 0..4).unwrap();
            let stats_before = *x.stats();
            // Input column out of bounds: no row of the output is touched.
            let err = x.nor_cols(b, &[0, 9999], 2, 0..4).unwrap_err();
            assert!(matches!(err, CrossbarError::OutOfBounds { .. }));
            let got: Vec<bool> = (0..4).map(|r| x.peek_bit(b, r, 2).unwrap()).collect();
            assert_eq!(got, vec![true; 4], "outputs keep their init value");
            assert_eq!(*x.stats(), stats_before);
        }
    }

    #[test]
    fn maj_read_majority_function() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        for (bits, expected) in [
            ([false, false, false], false),
            ([true, false, false], false),
            ([true, true, false], true),
            ([true, true, true], true),
        ] {
            for (i, &bit) in bits.iter().enumerate() {
                x.preload_bit(b, i, 0, bit).unwrap();
            }
            let got = x.maj_read(b, [(0, 0), (1, 0), (2, 0)]).unwrap();
            assert_eq!(got, expected, "MAJ{bits:?}");
        }
        assert_eq!(x.stats().maj_ops, 4);
        assert_eq!(x.stats().cycles.get(), 4);
    }

    #[test]
    fn write_back_costs_one_cycle() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.write_back_bit(b, 0, 0, true).unwrap();
        assert_eq!(x.stats().cycles.get(), 1);
        assert!(x.peek_bit(b, 0, 0).unwrap());
    }

    #[test]
    fn copy_row_shifted_moves_and_shifts() {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        let word = [true, false, true, true];
        x.preload_word(b0, 0, 0, &word).unwrap();
        let before = x.stats().cycles;
        x.copy_row_shifted(
            RowRef::new(b0, 0),
            RowRef::new(b0, 10),
            RowRef::new(b1, 0),
            0..4,
            5,
        )
        .unwrap();
        assert_eq!((x.stats().cycles - before).get(), 2, "copy = 2 NOTs");
        assert_eq!(x.peek_word(b1, 0, 5, 4).unwrap(), word.to_vec());
    }

    #[test]
    fn read_bit_counts_energy_not_cycles() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_bit(b, 0, 0, true).unwrap();
        let before = x.stats().energy;
        assert!(x.read_bit(b, 0, 0).unwrap());
        assert_eq!(x.stats().cycles, Cycles::ZERO);
        assert_eq!(x.stats().reads, 1);
        assert!(x.stats().energy.as_joules() > before.as_joules());
    }

    #[test]
    fn shifted_out_of_bounds_rejected() {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        let cols = 250..256;
        x.init_rows(b1, &[0], cols.clone()).unwrap();
        let err = x
            .nor_rows_shifted(&[RowRef::new(b0, 0)], RowRef::new(b1, 0), cols, 10)
            .unwrap_err();
        assert!(matches!(err, CrossbarError::OutOfBounds { .. }));
    }

    #[test]
    fn fault_injection_reaches_reads() {
        for mut x in [xbar(), scalar_xbar()] {
            let b = x.block(0).unwrap();
            x.inject_fault(b, 0, 0, Some(Fault::StuckAtOne)).unwrap();
            assert!(x.peek_bit(b, 0, 0).unwrap());
        }
    }

    #[test]
    fn wear_tracking_reports_hotspot() {
        for mut x in [xbar(), scalar_xbar()] {
            let b = x.block(0).unwrap();
            for _ in 0..7 {
                x.preload_bit(b, 3, 3, true).unwrap();
            }
            assert_eq!(x.max_cell_writes(), 7);
            assert_eq!(x.cell_writes(b, 3, 3).unwrap(), 7);
        }
    }

    #[test]
    fn preload_u64_matches_preload_word() {
        let mut a = xbar();
        let mut b = xbar();
        let blk = a.block(0).unwrap();
        let v = 0xDEAD_BEEF_1234_5678u64;
        let bits: Vec<bool> = (0..64).map(|i| (v >> i) & 1 == 1).collect();
        a.preload_word(blk, 2, 30, &bits).unwrap();
        b.preload_u64(blk, 2, 30, 64, v).unwrap();
        assert_eq!(
            a.peek_word(blk, 2, 30, 64).unwrap(),
            b.peek_word(blk, 2, 30, 64).unwrap()
        );
        assert_eq!(a.stats(), b.stats());
        assert_eq!(b.peek_u64(blk, 2, 30, 64).unwrap(), v);
        // Oversized widths and overflowing spans are rejected.
        assert!(b.preload_u64(blk, 0, 0, 65, 0).is_err());
        assert!(b.preload_u64(blk, 0, 250, 10, 0).is_err());
        assert!(b.peek_u64(blk, 0, 0, 65).is_err());
    }

    #[test]
    fn preload_zeros_clears_a_span() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.init_rows(b, &[0], 0..100).unwrap();
        x.preload_zeros(b, 0, 10, 70).unwrap();
        assert!(x.peek_bit(b, 0, 9).unwrap());
        assert_eq!(x.peek_word(b, 0, 10, 70).unwrap(), vec![false; 70]);
        assert!(x.peek_bit(b, 0, 80).unwrap());
        assert_eq!(x.stats().cell_writes, 170);
        assert!(x.preload_zeros(b, 0, 250, 10).is_err());
    }

    #[test]
    fn reset_stats_clears_accounting() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_bit(b, 0, 0, true).unwrap();
        x.reset_stats();
        assert_eq!(*x.stats(), Stats::new());
    }

    #[test]
    fn advance_cycles_adds_latency() {
        let mut x = xbar();
        x.advance_cycles(Cycles::new(13));
        assert_eq!(x.stats().cycles.get(), 13);
    }

    #[test]
    fn empty_inputs_rejected() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        assert!(x.nor_rows_shifted(&[], RowRef::new(b, 0), 0..4, 0).is_err());
        assert!(x.nor_cells(b, &[], (0, 0)).is_err());
    }

    #[test]
    fn recording_round_trips_the_microprogram() {
        use crate::trace::TraceOp;
        let mut x = xbar();
        let a = x.block(0).unwrap();
        let b = x.block(1).unwrap();
        assert!(!x.is_recording());
        x.preload_bit(a, 0, 0, true).unwrap(); // before arming: not recorded
        x.start_recording();
        assert!(x.is_recording());
        let before = x.stats().cycles;
        x.preload_word(a, 1, 0, &[true, false]).unwrap();
        // Shift 1: the output window is cols 1..3, so initialize that.
        x.init_rows(b, &[0], 1..3).unwrap();
        x.nor_rows_shifted(&[RowRef::new(a, 1)], RowRef::new(b, 0), 0..2, 1)
            .unwrap();
        let trace = x.stop_recording();
        assert!(!x.is_recording());
        assert_eq!(
            trace.ops,
            vec![
                TraceOp::PreloadWord {
                    block: 0,
                    row: 1,
                    col0: 0,
                    bits: vec![true, false]
                },
                TraceOp::InitRows {
                    block: 1,
                    rows: vec![0],
                    cols: 1..3
                },
                TraceOp::NorRowsShifted {
                    inputs: vec![(0, 1)],
                    out: (1, 0),
                    cols: 0..2,
                    shift: 1
                },
            ]
        );
        assert_eq!((trace.blocks, trace.rows, trace.cols), (4, 64, 256));
        assert_eq!(trace.cycles(), (x.stats().cycles - before).get());
        // A fresh recording starts empty.
        x.start_recording();
        assert!(x.stop_recording().is_empty());
    }
}
