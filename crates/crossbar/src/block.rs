//! The blocked crossbar memory unit with configurable interconnects.

use apim_device::{Cycles, DeviceParams, EnergyModel, TimingModel};

use crate::array::CrossbarArray;
use crate::cell::Fault;
use crate::error::CrossbarError;
use crate::stats::Stats;
use crate::trace::{OpTrace, TraceOp};
use crate::Result;

use std::ops::Range;

/// Opaque handle to one block of the crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(usize);

impl BlockId {
    /// The raw block index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The role a block currently plays (§3.1: "the two blocks are structurally
/// the same and can be used interchangeably").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockRole {
    /// Holds resident data.
    Data,
    /// Scratch space for MAGIC execution.
    Processing,
}

/// A reference to one wordline of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowRef {
    /// The block containing the row.
    pub block: BlockId,
    /// The wordline index within the block.
    pub row: usize,
}

impl RowRef {
    /// Creates a row reference.
    pub fn new(block: BlockId, row: usize) -> Self {
        RowRef { block, row }
    }
}

/// Configuration of a [`BlockedCrossbar`].
///
/// ```
/// use apim_crossbar::{BlockedCrossbar, CrossbarConfig};
/// # fn main() -> Result<(), apim_crossbar::CrossbarError> {
/// let config = CrossbarConfig {
///     blocks: 2,
///     rows: 32,
///     cols: 128,
///     ..CrossbarConfig::default()
/// };
/// let xbar = BlockedCrossbar::new(config)?;
/// assert_eq!(xbar.block_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarConfig {
    /// Number of blocks (≥ 2 for data + processing).
    pub blocks: usize,
    /// Wordlines per block.
    pub rows: usize,
    /// Bitlines per block.
    pub cols: usize,
    /// Device parameters from which energy/timing are derived.
    pub params: DeviceParams,
    /// When `true`, MAGIC NORs verify that output cells were initialized to
    /// the ON state first and fail otherwise — catches scheduling bugs in
    /// higher-level routines.
    pub strict_init: bool,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        CrossbarConfig {
            blocks: 4,
            rows: 64,
            cols: 256,
            params: DeviceParams::default(),
            strict_init: true,
        }
    }
}

/// The APIM memory unit: several crossbar blocks sharing row/column
/// decoders, joined by configurable (barrel-shifter) interconnects, with
/// modified sense amplifiers supporting bitwise reads and the majority
/// function.
///
/// All compute primitives update the embedded [`Stats`]; see the
/// [crate documentation](crate) for the cycle-accounting conventions.
#[derive(Debug, Clone)]
pub struct BlockedCrossbar {
    blocks: Vec<CrossbarArray>,
    roles: Vec<BlockRole>,
    stats: Stats,
    energy: EnergyModel,
    timing: TimingModel,
    strict_init: bool,
    rows: usize,
    cols: usize,
    recorder: Option<Vec<TraceOp>>,
}

impl BlockedCrossbar {
    /// Builds the memory unit.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if there are fewer than two
    /// blocks (the blocked design needs at least a data and a processing
    /// block), if a dimension is zero, or if the device parameters are
    /// inconsistent.
    pub fn new(config: CrossbarConfig) -> Result<Self> {
        if config.blocks < 2 {
            return Err(CrossbarError::InvalidConfig(
                "need at least 2 blocks (data + processing)".into(),
            ));
        }
        config
            .params
            .validate()
            .map_err(CrossbarError::InvalidConfig)?;
        let mut blocks = Vec::with_capacity(config.blocks);
        let mut roles = Vec::with_capacity(config.blocks);
        for i in 0..config.blocks {
            blocks.push(CrossbarArray::new(config.rows, config.cols)?);
            roles.push(if i == 0 {
                BlockRole::Data
            } else {
                BlockRole::Processing
            });
        }
        Ok(BlockedCrossbar {
            blocks,
            roles,
            stats: Stats::new(),
            energy: EnergyModel::new(&config.params),
            timing: TimingModel::new(&config.params),
            strict_init: config.strict_init,
            rows: config.rows,
            cols: config.cols,
            recorder: None,
        })
    }

    // ---------------------------------------------------------------
    // Operation recording (consumed by the `apim-verify` static passes)
    // ---------------------------------------------------------------

    /// Starts recording every primitive into an operation trace,
    /// discarding any previous recording.
    ///
    /// Primitives are recorded as *requests*, before validation — an
    /// operation the runtime rejects still lands in the trace, so static
    /// passes can diagnose the hazard that caused the rejection.
    pub fn start_recording(&mut self) {
        self.recorder = Some(Vec::new());
    }

    /// Whether a recording is in progress.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Stops recording and returns the captured microprogram. Returns an
    /// empty trace if recording was never started.
    pub fn stop_recording(&mut self) -> OpTrace {
        OpTrace {
            blocks: self.blocks.len(),
            rows: self.rows,
            cols: self.cols,
            ops: self.recorder.take().unwrap_or_default(),
        }
    }

    /// Appends to the trace when recording; `op` is only built if armed.
    fn record(&mut self, op: impl FnOnce() -> TraceOp) {
        if let Some(trace) = &mut self.recorder {
            trace.push(op());
        }
    }

    /// Handle to block `index`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::NoSuchBlock`] if `index` is out of range.
    pub fn block(&self, index: usize) -> Result<BlockId> {
        if index >= self.blocks.len() {
            return Err(CrossbarError::NoSuchBlock {
                index,
                blocks: self.blocks.len(),
            });
        }
        Ok(BlockId(index))
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Wordlines per block.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bitlines per block.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The current role of a block.
    pub fn role(&self, block: BlockId) -> BlockRole {
        self.roles[block.0]
    }

    /// Re-assigns a block's role (blocks are interchangeable, §3.1).
    pub fn set_role(&mut self, block: BlockId, role: BlockRole) {
        self.roles[block.0] = role;
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets statistics to zero (cell contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::new();
    }

    /// The timing model in force.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Advances the cycle counter without touching cells — used by
    /// higher-level routines to account latency the primitive set cannot
    /// express (e.g. the non-hideable output initialization of a carry-save
    /// stage).
    pub fn advance_cycles(&mut self, cycles: Cycles) {
        self.record(|| TraceOp::AdvanceCycles {
            cycles: cycles.get(),
        });
        self.stats.cycles += cycles;
    }

    /// Discounts cycles that were charged sequentially but execute in
    /// parallel on the real hardware.
    ///
    /// The simulator executes independent same-stage operations (e.g. the
    /// carry-save groups of one Wallace-tree stage, §3.2) one after the
    /// other, but the paper's hardware runs them concurrently. Callers that
    /// model such parallelism replay the operations sequentially — keeping
    /// every write, read and joule accounted — and then rewind the
    /// serialization overhead. Saturates at zero.
    pub fn rewind_cycles(&mut self, cycles: Cycles) {
        self.record(|| TraceOp::RewindCycles {
            cycles: cycles.get(),
        });
        self.stats.cycles = self.stats.cycles.saturating_sub(cycles);
    }

    fn check_range(&self, cols: &Range<usize>) -> Result<()> {
        if cols.end > self.cols || cols.start >= cols.end {
            return Err(CrossbarError::OutOfBounds {
                what: "col range",
                index: cols.end,
                limit: self.cols,
            });
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Data movement (no compute cycles)
    // ---------------------------------------------------------------

    /// Stores one bit as resident data: counts the write and its energy but
    /// no compute cycles (datasets are assumed memory-resident, §4.2).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn preload_bit(&mut self, block: BlockId, row: usize, col: usize, bit: bool) -> Result<()> {
        self.record(|| TraceOp::PreloadBit {
            block: block.0,
            row,
            col,
        });
        self.blocks[block.0].set(row, col, bit)?;
        self.stats.cell_writes += 1;
        self.stats.energy += self.energy.write_op(1);
        self.stats.energy_breakdown.write += self.energy.write_op(1);
        Ok(())
    }

    /// Stores a word (LSB first) along a row starting at `col0`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] if the word does not fit.
    pub fn preload_word(
        &mut self,
        block: BlockId,
        row: usize,
        col0: usize,
        bits: &[bool],
    ) -> Result<()> {
        self.record(|| TraceOp::PreloadWord {
            block: block.0,
            row,
            col0,
            len: bits.len(),
        });
        for (i, &bit) in bits.iter().enumerate() {
            self.blocks[block.0].set(row, col0 + i, bit)?;
        }
        self.stats.cell_writes += bits.len() as u64;
        self.stats.energy += self.energy.write_op(bits.len());
        self.stats.energy_breakdown.write += self.energy.write_op(bits.len());
        Ok(())
    }

    /// Debug read of one cell — free of charge, for tests and result
    /// extraction outside the modelled computation.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn peek_bit(&self, block: BlockId, row: usize, col: usize) -> Result<bool> {
        self.blocks[block.0].get(row, col)
    }

    /// Debug read of `len` bits (LSB first) along a row.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] if the range does not fit.
    pub fn peek_word(
        &self,
        block: BlockId,
        row: usize,
        col0: usize,
        len: usize,
    ) -> Result<Vec<bool>> {
        (0..len)
            .map(|i| self.blocks[block.0].get(row, col0 + i))
            .collect()
    }

    // ---------------------------------------------------------------
    // Sense-amplifier reads
    // ---------------------------------------------------------------

    /// Reads one bit through the sense amplifier.
    ///
    /// The 0.3 ns read is sub-cycle and overlapped with MAGIC execution
    /// (§3.3), so it charges energy and a read count but no cycles.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn read_bit(&mut self, block: BlockId, row: usize, col: usize) -> Result<bool> {
        self.record(|| TraceOp::ReadBit {
            block: block.0,
            row,
            col,
        });
        let bit = self.blocks[block.0].get(row, col)?;
        self.stats.reads += 1;
        self.stats.energy += self.energy.read_op(1);
        self.stats.energy_breakdown.read += self.energy.read_op(1);
        Ok(bit)
    }

    /// Evaluates the majority of three cells in one column through the
    /// modified sense amplifier (Figure 3(b)).
    ///
    /// Charged one cycle: the 0.3 ns read + 0.6 ns MAJ fit inside one
    /// 1.1 ns cycle, and the paper accounts MAJ-plus-writeback as 2 cycles
    /// per bit (§3.4) — the write-back is the second cycle, performed with
    /// [`BlockedCrossbar::write_back_bit`].
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn maj_read(&mut self, block: BlockId, cells: [(usize, usize); 3]) -> Result<bool> {
        self.record(|| TraceOp::MajRead {
            block: block.0,
            cells,
        });
        let a = self.blocks[block.0].get(cells[0].0, cells[0].1)?;
        let b = self.blocks[block.0].get(cells[1].0, cells[1].1)?;
        let c = self.blocks[block.0].get(cells[2].0, cells[2].1)?;
        self.stats.maj_ops += 1;
        self.stats.cycles += Cycles::new(1);
        self.stats.energy += self.energy.maj_op(1);
        self.stats.energy_breakdown.maj += self.energy.maj_op(1);
        Ok((a & b) | (b & c) | (c & a))
    }

    /// Writes one bit produced by peripheral logic back into the array:
    /// one cycle, one cell write.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn write_back_bit(
        &mut self,
        block: BlockId,
        row: usize,
        col: usize,
        bit: bool,
    ) -> Result<()> {
        self.record(|| TraceOp::WriteBackBit {
            block: block.0,
            row,
            col,
        });
        self.blocks[block.0].set(row, col, bit)?;
        self.stats.cell_writes += 1;
        self.stats.cycles += Cycles::new(1);
        self.stats.energy += self.energy.write_op(1);
        self.stats.energy_breakdown.write += self.energy.write_op(1);
        Ok(())
    }

    // ---------------------------------------------------------------
    // MAGIC execution
    // ---------------------------------------------------------------

    /// Initializes output cells to the ON state ahead of MAGIC evaluation.
    ///
    /// Initialization of future output rows is overlapped with ongoing
    /// evaluation on other rows (standard MAGIC scheduling), so it charges
    /// writes and energy but no cycles; routines that cannot hide it call
    /// [`BlockedCrossbar::advance_cycles`] explicitly.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn init_rows(&mut self, block: BlockId, rows: &[usize], cols: Range<usize>) -> Result<()> {
        self.record(|| TraceOp::InitRows {
            block: block.0,
            rows: rows.to_vec(),
            cols: cols.clone(),
        });
        self.check_range(&cols)?;
        for &row in rows {
            for col in cols.clone() {
                self.blocks[block.0].set(row, col, true)?;
            }
        }
        let cells = rows.len() * cols.len();
        self.stats.cell_writes += cells as u64;
        self.stats.energy += self.energy.write_op(cells);
        self.stats.energy_breakdown.write += self.energy.write_op(cells);
        Ok(())
    }

    /// Initializes scattered cells to the ON state (same accounting as
    /// [`BlockedCrossbar::init_rows`]).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn init_cells(&mut self, block: BlockId, cells: &[(usize, usize)]) -> Result<()> {
        self.record(|| TraceOp::InitCells {
            block: block.0,
            cells: cells.to_vec(),
        });
        for &(row, col) in cells {
            self.blocks[block.0].set(row, col, true)?;
        }
        self.stats.cell_writes += cells.len() as u64;
        self.stats.energy += self.energy.write_op(cells.len());
        self.stats.energy_breakdown.write += self.energy.write_op(cells.len());
        Ok(())
    }

    /// One column-parallel MAGIC NOR: for every column `c` in `cols`,
    /// `out[c + shift] = NOR(inputs[c]…)`. Costs exactly one cycle
    /// regardless of width.
    ///
    /// All inputs must live in one block. If `out` is in the same block the
    /// shift must be zero; crossing into another block goes through the
    /// configurable interconnect, which applies the shift *for free* (§3.1)
    /// while charging interconnect energy.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::InputsSpanBlocks`] if inputs are spread over
    ///   several blocks.
    /// * [`CrossbarError::ShiftWithinBlock`] for a nonzero same-block shift.
    /// * [`CrossbarError::OutOfBounds`] if any coordinate (after shifting)
    ///   falls outside the arrays.
    /// * [`CrossbarError::UninitializedOutput`] in strict mode when an
    ///   output cell was not initialized to ON.
    pub fn nor_rows_shifted(
        &mut self,
        inputs: &[RowRef],
        out: RowRef,
        cols: Range<usize>,
        shift: isize,
    ) -> Result<()> {
        self.record(|| TraceOp::nor_rows(inputs, out, cols.clone(), shift));
        self.check_range(&cols)?;
        let in_block = match inputs {
            [] => {
                return Err(CrossbarError::InvalidConfig(
                    "NOR needs at least one input row".into(),
                ))
            }
            [first, rest @ ..] => {
                if rest.iter().any(|r| r.block != first.block) {
                    return Err(CrossbarError::InputsSpanBlocks);
                }
                first.block
            }
        };
        let cross_block = in_block != out.block;
        if !cross_block && shift != 0 {
            return Err(CrossbarError::ShiftWithinBlock { shift });
        }
        let width = cols.len();
        for col in cols {
            let out_col = col as isize + shift;
            if out_col < 0 || out_col as usize >= self.cols {
                return Err(CrossbarError::OutOfBounds {
                    what: "shifted col",
                    index: out_col.max(0) as usize,
                    limit: self.cols,
                });
            }
            let out_col = out_col as usize;
            if self.strict_init && !self.blocks[out.block.0].get(out.row, out_col)? {
                return Err(CrossbarError::UninitializedOutput {
                    block: out.block.0,
                    row: out.row,
                    col: out_col,
                });
            }
            let mut any = false;
            for input in inputs {
                any |= self.blocks[in_block.0].get(input.row, col)?;
            }
            // MAGIC: the pre-set output conditionally switches to 0.
            self.blocks[out.block.0].set(out.row, out_col, !any)?;
        }
        self.stats.nor_ops += 1;
        self.stats.nor_cells += width as u64;
        self.stats.cycles += Cycles::new(1);
        self.stats.energy += self.energy.nor_op(width);
        self.stats.energy_breakdown.nor += self.energy.nor_op(width);
        if cross_block {
            self.stats.interconnect_bits += width as u64;
            self.stats.energy += self.energy.interconnect_op(width);
            self.stats.energy_breakdown.interconnect += self.energy.interconnect_op(width);
        }
        Ok(())
    }

    /// One row-parallel MAGIC NOR along *columns*: for every row `r` in
    /// `rows`, `out_col[r] = NOR(input_cols[r]...)` — the transposed twin of
    /// [`BlockedCrossbar::nor_rows_shifted`] ("in case of NOR in a column,
    /// the execution voltage is applied to the wordlines of the outputs").
    /// Costs one cycle regardless of the row count. All cells live in one
    /// block; column layouts do not cross the (bitline-oriented)
    /// interconnect, so no shift is available.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::InvalidConfig`] for an empty input set.
    /// * [`CrossbarError::OutOfBounds`] for invalid coordinates.
    /// * [`CrossbarError::UninitializedOutput`] in strict mode when an
    ///   output cell was not initialized to ON.
    pub fn nor_cols(
        &mut self,
        block: BlockId,
        input_cols: &[usize],
        out_col: usize,
        rows: Range<usize>,
    ) -> Result<()> {
        self.record(|| TraceOp::NorCols {
            block: block.0,
            input_cols: input_cols.to_vec(),
            out_col,
            rows: rows.clone(),
        });
        if input_cols.is_empty() {
            return Err(CrossbarError::InvalidConfig(
                "NOR needs at least one input column".into(),
            ));
        }
        if rows.end > self.rows || rows.start >= rows.end {
            return Err(CrossbarError::OutOfBounds {
                what: "row range",
                index: rows.end,
                limit: self.rows,
            });
        }
        let height = rows.len();
        for row in rows {
            if self.strict_init && !self.blocks[block.0].get(row, out_col)? {
                return Err(CrossbarError::UninitializedOutput {
                    block: block.0,
                    row,
                    col: out_col,
                });
            }
            let mut any = false;
            for &col in input_cols {
                any |= self.blocks[block.0].get(row, col)?;
            }
            self.blocks[block.0].set(row, out_col, !any)?;
        }
        self.stats.nor_ops += 1;
        self.stats.nor_cells += height as u64;
        self.stats.cycles += Cycles::new(1);
        self.stats.energy += self.energy.nor_op(height);
        self.stats.energy_breakdown.nor += self.energy.nor_op(height);
        Ok(())
    }

    /// Initializes a column segment to the ON state (the column twin of
    /// [`BlockedCrossbar::init_rows`]; same zero-cycle accounting).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn init_cols(&mut self, block: BlockId, cols: &[usize], rows: Range<usize>) -> Result<()> {
        self.record(|| TraceOp::InitCols {
            block: block.0,
            cols: cols.to_vec(),
            rows: rows.clone(),
        });
        if rows.end > self.rows || rows.start >= rows.end {
            return Err(CrossbarError::OutOfBounds {
                what: "row range",
                index: rows.end,
                limit: self.rows,
            });
        }
        for &col in cols {
            for row in rows.clone() {
                self.blocks[block.0].set(row, col, true)?;
            }
        }
        let cells = cols.len() * rows.len();
        self.stats.cell_writes += cells as u64;
        self.stats.energy += self.energy.write_op(cells);
        self.stats.energy_breakdown.write += self.energy.write_op(cells);
        Ok(())
    }

    /// One single-bit MAGIC NOR over scattered cells of one block (used for
    /// the serial carry chains). Costs one cycle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockedCrossbar::nor_rows_shifted`] where
    /// applicable.
    pub fn nor_cells(
        &mut self,
        block: BlockId,
        inputs: &[(usize, usize)],
        out: (usize, usize),
    ) -> Result<()> {
        self.record(|| TraceOp::NorCells {
            block: block.0,
            inputs: inputs.to_vec(),
            out,
        });
        if inputs.is_empty() {
            return Err(CrossbarError::InvalidConfig(
                "NOR needs at least one input cell".into(),
            ));
        }
        if self.strict_init && !self.blocks[block.0].get(out.0, out.1)? {
            return Err(CrossbarError::UninitializedOutput {
                block: block.0,
                row: out.0,
                col: out.1,
            });
        }
        let mut any = false;
        for &(row, col) in inputs {
            any |= self.blocks[block.0].get(row, col)?;
        }
        self.blocks[block.0].set(out.0, out.1, !any)?;
        self.stats.nor_ops += 1;
        self.stats.nor_cells += 1;
        self.stats.cycles += Cycles::new(1);
        self.stats.energy += self.energy.nor_op(1);
        self.stats.energy_breakdown.nor += self.energy.nor_op(1);
        Ok(())
    }

    /// Copies a row segment into another block with an optional shift.
    ///
    /// A copy is two successive NOT (single-input NOR) operations; this
    /// helper charges both (2 cycles) and handles intermediate
    /// initialization. Routines that copy one source to *many*
    /// destinations should perform the first NOT once and reuse it — see
    /// the multiplier's partial-product generator in `apim-logic`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockedCrossbar::nor_rows_shifted`].
    pub fn copy_row_shifted(
        &mut self,
        src: RowRef,
        scratch: RowRef,
        dst: RowRef,
        cols: Range<usize>,
        shift: isize,
    ) -> Result<()> {
        self.init_rows(scratch.block, &[scratch.row], cols.clone())?;
        self.nor_rows_shifted(&[src], scratch, cols.clone(), 0)?;
        let shifted = shift_range(&cols, 0);
        self.init_rows(
            dst.block,
            &[dst.row],
            shift_range(&cols, shift).ok_or(CrossbarError::OutOfBounds {
                what: "shifted col",
                index: cols.end,
                limit: self.cols,
            })?,
        )?;
        self.nor_rows_shifted(&[scratch], dst, shifted.expect("zero shift"), shift)?;
        Ok(())
    }

    // ---------------------------------------------------------------
    // Fault injection / endurance (extension)
    // ---------------------------------------------------------------

    /// Injects (or clears) a stuck-at fault.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn inject_fault(
        &mut self,
        block: BlockId,
        row: usize,
        col: usize,
        fault: Option<Fault>,
    ) -> Result<()> {
        self.blocks[block.0].inject_fault(row, col, fault)
    }

    /// Per-block endurance summary.
    pub fn wear_report(&self) -> crate::wear::WearReport {
        crate::wear::WearReport {
            blocks: self
                .blocks
                .iter()
                .enumerate()
                .map(|(i, arr)| {
                    let total = arr.total_cell_writes();
                    crate::wear::BlockWear {
                        block: i,
                        max_cell_writes: arr.max_cell_writes(),
                        total_writes: total,
                        mean_writes: total as f64 / arr.cell_count() as f64,
                    }
                })
                .collect(),
        }
    }

    /// The highest per-cell write count across all blocks (wear hotspot).
    pub fn max_cell_writes(&self) -> u64 {
        self.blocks
            .iter()
            .map(CrossbarArray::max_cell_writes)
            .max()
            .unwrap_or(0)
    }
}

/// Shifts a column range, returning `None` on underflow.
fn shift_range(cols: &Range<usize>, shift: isize) -> Option<Range<usize>> {
    let start = cols.start as isize + shift;
    let end = cols.end as isize + shift;
    if start < 0 || end < 0 {
        return None;
    }
    Some(start as usize..end as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xbar() -> BlockedCrossbar {
        BlockedCrossbar::new(CrossbarConfig::default()).unwrap()
    }

    #[test]
    fn construction_validates() {
        let bad = CrossbarConfig {
            blocks: 1,
            ..CrossbarConfig::default()
        };
        assert!(BlockedCrossbar::new(bad).is_err());
        let bad = CrossbarConfig {
            rows: 0,
            ..CrossbarConfig::default()
        };
        assert!(BlockedCrossbar::new(bad).is_err());
    }

    #[test]
    fn roles_default_and_reassign() {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        assert_eq!(x.role(b0), BlockRole::Data);
        assert_eq!(x.role(b1), BlockRole::Processing);
        x.set_role(b1, BlockRole::Data);
        assert_eq!(x.role(b1), BlockRole::Data);
    }

    #[test]
    fn no_such_block() {
        let x = xbar();
        assert!(matches!(
            x.block(99),
            Err(CrossbarError::NoSuchBlock { .. })
        ));
    }

    #[test]
    fn preload_charges_no_cycles() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_word(b, 0, 0, &[true, true, false]).unwrap();
        assert_eq!(x.stats().cycles, Cycles::ZERO);
        assert_eq!(x.stats().cell_writes, 3);
        assert!(x.stats().energy.as_joules() > 0.0);
    }

    #[test]
    fn nor_truth_table() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        for (a, bb, expected) in [
            (false, false, true),
            (false, true, false),
            (true, false, false),
            (true, true, false),
        ] {
            x.preload_bit(b, 0, 0, a).unwrap();
            x.preload_bit(b, 1, 0, bb).unwrap();
            x.init_rows(b, &[2], 0..1).unwrap();
            x.nor_rows_shifted(
                &[RowRef::new(b, 0), RowRef::new(b, 1)],
                RowRef::new(b, 2),
                0..1,
                0,
            )
            .unwrap();
            assert_eq!(x.peek_bit(b, 2, 0).unwrap(), expected);
        }
    }

    #[test]
    fn nor_is_width_parallel_one_cycle() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_word(b, 0, 0, &[false; 64]).unwrap();
        x.init_rows(b, &[1], 0..64).unwrap();
        let before = x.stats().cycles;
        x.nor_rows_shifted(&[RowRef::new(b, 0)], RowRef::new(b, 1), 0..64, 0)
            .unwrap();
        assert_eq!((x.stats().cycles - before).get(), 1);
        assert_eq!(x.peek_word(b, 1, 0, 64).unwrap(), vec![true; 64]);
    }

    #[test]
    fn cross_block_shift_applies_offset() {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        x.preload_word(b0, 0, 0, &[false, true, false, false])
            .unwrap();
        x.init_rows(b1, &[0], 3..7).unwrap();
        // NOT with shift +3: out[c+3] = !in[c]
        x.nor_rows_shifted(&[RowRef::new(b0, 0)], RowRef::new(b1, 0), 0..4, 3)
            .unwrap();
        assert_eq!(
            x.peek_word(b1, 0, 3, 4).unwrap(),
            vec![true, false, true, true]
        );
        assert_eq!(x.stats().interconnect_bits, 4);
    }

    #[test]
    fn same_block_shift_rejected() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.init_rows(b, &[1], 0..8).unwrap();
        let err = x
            .nor_rows_shifted(&[RowRef::new(b, 0)], RowRef::new(b, 1), 0..4, 2)
            .unwrap_err();
        assert_eq!(err, CrossbarError::ShiftWithinBlock { shift: 2 });
    }

    #[test]
    fn inputs_must_share_a_block() {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        x.init_rows(b0, &[2], 0..4).unwrap();
        let err = x
            .nor_rows_shifted(
                &[RowRef::new(b0, 0), RowRef::new(b1, 1)],
                RowRef::new(b0, 2),
                0..4,
                0,
            )
            .unwrap_err();
        assert_eq!(err, CrossbarError::InputsSpanBlocks);
    }

    #[test]
    fn strict_init_catches_missing_initialization() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        // Row 1 never initialized: cells read 0 -> strict mode errors.
        let err = x
            .nor_rows_shifted(&[RowRef::new(b, 0)], RowRef::new(b, 1), 0..4, 0)
            .unwrap_err();
        assert!(matches!(err, CrossbarError::UninitializedOutput { .. }));
    }

    #[test]
    fn non_strict_mode_allows_uninitialized_outputs() {
        let cfg = CrossbarConfig {
            strict_init: false,
            ..CrossbarConfig::default()
        };
        let mut x = BlockedCrossbar::new(cfg).unwrap();
        let b = x.block(0).unwrap();
        x.nor_rows_shifted(&[RowRef::new(b, 0)], RowRef::new(b, 1), 0..4, 0)
            .unwrap();
        assert_eq!(x.peek_word(b, 1, 0, 4).unwrap(), vec![true; 4]);
    }

    #[test]
    fn nor_cells_single_bit() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_bit(b, 0, 0, true).unwrap();
        x.preload_bit(b, 0, 1, false).unwrap();
        x.init_cells(b, &[(0, 2)]).unwrap();
        x.nor_cells(b, &[(0, 0), (0, 1)], (0, 2)).unwrap();
        assert!(!x.peek_bit(b, 0, 2).unwrap());
        assert_eq!(x.stats().cycles.get(), 1);
    }

    #[test]
    fn nor_cols_is_the_transposed_twin() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        // Column 0: bits per row; column 1: bits per row.
        for (row, (a, bb)) in [(false, false), (false, true), (true, false), (true, true)]
            .into_iter()
            .enumerate()
        {
            x.preload_bit(b, row, 0, a).unwrap();
            x.preload_bit(b, row, 1, bb).unwrap();
        }
        x.init_cols(b, &[2], 0..4).unwrap();
        let before = x.stats().cycles;
        x.nor_cols(b, &[0, 1], 2, 0..4).unwrap();
        assert_eq!(
            (x.stats().cycles - before).get(),
            1,
            "one cycle, any height"
        );
        let got: Vec<bool> = (0..4).map(|r| x.peek_bit(b, r, 2).unwrap()).collect();
        assert_eq!(got, vec![true, false, false, false]);
    }

    #[test]
    fn nor_cols_respects_strict_init() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        let err = x.nor_cols(b, &[0], 1, 0..4).unwrap_err();
        assert!(matches!(err, CrossbarError::UninitializedOutput { .. }));
        assert!(x.nor_cols(b, &[], 1, 0..4).is_err());
        assert!(x.nor_cols(b, &[0], 1, 0..9999).is_err());
    }

    #[test]
    fn maj_read_majority_function() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        for (bits, expected) in [
            ([false, false, false], false),
            ([true, false, false], false),
            ([true, true, false], true),
            ([true, true, true], true),
        ] {
            for (i, &bit) in bits.iter().enumerate() {
                x.preload_bit(b, i, 0, bit).unwrap();
            }
            let got = x.maj_read(b, [(0, 0), (1, 0), (2, 0)]).unwrap();
            assert_eq!(got, expected, "MAJ{bits:?}");
        }
        assert_eq!(x.stats().maj_ops, 4);
        assert_eq!(x.stats().cycles.get(), 4);
    }

    #[test]
    fn write_back_costs_one_cycle() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.write_back_bit(b, 0, 0, true).unwrap();
        assert_eq!(x.stats().cycles.get(), 1);
        assert!(x.peek_bit(b, 0, 0).unwrap());
    }

    #[test]
    fn copy_row_shifted_moves_and_shifts() {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        let word = [true, false, true, true];
        x.preload_word(b0, 0, 0, &word).unwrap();
        let before = x.stats().cycles;
        x.copy_row_shifted(
            RowRef::new(b0, 0),
            RowRef::new(b0, 10),
            RowRef::new(b1, 0),
            0..4,
            5,
        )
        .unwrap();
        assert_eq!((x.stats().cycles - before).get(), 2, "copy = 2 NOTs");
        assert_eq!(x.peek_word(b1, 0, 5, 4).unwrap(), word.to_vec());
    }

    #[test]
    fn read_bit_counts_energy_not_cycles() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_bit(b, 0, 0, true).unwrap();
        let before = x.stats().energy;
        assert!(x.read_bit(b, 0, 0).unwrap());
        assert_eq!(x.stats().cycles, Cycles::ZERO);
        assert_eq!(x.stats().reads, 1);
        assert!(x.stats().energy.as_joules() > before.as_joules());
    }

    #[test]
    fn shifted_out_of_bounds_rejected() {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        let cols = 250..256;
        x.init_rows(b1, &[0], cols.clone()).unwrap();
        let err = x
            .nor_rows_shifted(&[RowRef::new(b0, 0)], RowRef::new(b1, 0), cols, 10)
            .unwrap_err();
        assert!(matches!(err, CrossbarError::OutOfBounds { .. }));
    }

    #[test]
    fn fault_injection_reaches_reads() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.inject_fault(b, 0, 0, Some(Fault::StuckAtOne)).unwrap();
        assert!(x.peek_bit(b, 0, 0).unwrap());
    }

    #[test]
    fn wear_tracking_reports_hotspot() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        for _ in 0..7 {
            x.preload_bit(b, 3, 3, true).unwrap();
        }
        assert_eq!(x.max_cell_writes(), 7);
    }

    #[test]
    fn reset_stats_clears_accounting() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        x.preload_bit(b, 0, 0, true).unwrap();
        x.reset_stats();
        assert_eq!(*x.stats(), Stats::new());
    }

    #[test]
    fn advance_cycles_adds_latency() {
        let mut x = xbar();
        x.advance_cycles(Cycles::new(13));
        assert_eq!(x.stats().cycles.get(), 13);
    }

    #[test]
    fn empty_inputs_rejected() {
        let mut x = xbar();
        let b = x.block(0).unwrap();
        assert!(x.nor_rows_shifted(&[], RowRef::new(b, 0), 0..4, 0).is_err());
        assert!(x.nor_cells(b, &[], (0, 0)).is_err());
    }

    #[test]
    fn recording_round_trips_the_microprogram() {
        use crate::trace::TraceOp;
        let mut x = xbar();
        let a = x.block(0).unwrap();
        let b = x.block(1).unwrap();
        assert!(!x.is_recording());
        x.preload_bit(a, 0, 0, true).unwrap(); // before arming: not recorded
        x.start_recording();
        assert!(x.is_recording());
        let before = x.stats().cycles;
        x.preload_word(a, 1, 0, &[true, false]).unwrap();
        // Shift 1: the output window is cols 1..3, so initialize that.
        x.init_rows(b, &[0], 1..3).unwrap();
        x.nor_rows_shifted(&[RowRef::new(a, 1)], RowRef::new(b, 0), 0..2, 1)
            .unwrap();
        let trace = x.stop_recording();
        assert!(!x.is_recording());
        assert_eq!(
            trace.ops,
            vec![
                TraceOp::PreloadWord {
                    block: 0,
                    row: 1,
                    col0: 0,
                    len: 2
                },
                TraceOp::InitRows {
                    block: 1,
                    rows: vec![0],
                    cols: 1..3
                },
                TraceOp::NorRowsShifted {
                    inputs: vec![(0, 1)],
                    out: (1, 0),
                    cols: 0..2,
                    shift: 1
                },
            ]
        );
        assert_eq!((trace.blocks, trace.rows, trace.cols), (4, 64, 256));
        assert_eq!(trace.cycles(), (x.stats().cycles - before).get());
        // A fresh recording starts empty.
        x.start_recording();
        assert!(x.stop_recording().is_empty());
    }
}
