//! A single memristive cell.

use std::fmt;

/// A permanent defect injected into a cell (failure-injection extension).
///
/// Real RRAM arrays suffer stuck-at faults from forming failures and
/// endurance wear-out; the simulator can inject them to study their effect
/// on computation quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The cell always reads logic `0` (stuck at high resistance).
    StuckAtZero,
    /// The cell always reads logic `1` (stuck at low resistance).
    StuckAtOne,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::StuckAtZero => write!(f, "stuck-at-0"),
            Fault::StuckAtOne => write!(f, "stuck-at-1"),
        }
    }
}

/// One memristor in the crossbar.
///
/// Logic convention follows MAGIC: low resistance (`RON`) is logic `1`,
/// high resistance (`ROFF`) is logic `0`. The cell tracks its write count
/// for endurance studies.
///
/// ```
/// use apim_crossbar::Cell;
/// let mut cell = Cell::new();
/// assert!(!cell.read());
/// cell.write(true);
/// assert!(cell.read());
/// assert_eq!(cell.writes(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cell {
    bit: bool,
    writes: u64,
    fault: Option<Fault>,
}

impl Cell {
    /// A fresh cell in the OFF (logic `0`) state.
    pub const fn new() -> Self {
        Cell {
            bit: false,
            writes: 0,
            fault: None,
        }
    }

    /// Reads the stored bit, honouring any injected fault.
    pub fn read(&self) -> bool {
        match self.fault {
            Some(Fault::StuckAtZero) => false,
            Some(Fault::StuckAtOne) => true,
            None => self.bit,
        }
    }

    /// Writes a bit. Faulty cells accept the write (and count it) but keep
    /// reading their stuck value.
    pub fn write(&mut self, bit: bool) {
        // Real devices only dissipate switching energy when the state
        // changes, but the controller cannot know that in advance; writes
        // are counted unconditionally.
        self.bit = bit;
        self.writes += 1;
    }

    /// Number of write operations this cell has absorbed (endurance proxy).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Injects (or clears) a permanent fault.
    pub fn set_fault(&mut self, fault: Option<Fault>) {
        self.fault = fault;
    }

    /// The currently injected fault, if any.
    pub fn fault(&self) -> Option<Fault> {
        self.fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_reads_zero() {
        assert!(!Cell::new().read());
        assert_eq!(Cell::new().writes(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut c = Cell::new();
        c.write(true);
        assert!(c.read());
        c.write(false);
        assert!(!c.read());
        assert_eq!(c.writes(), 2);
    }

    #[test]
    fn stuck_at_zero_masks_writes() {
        let mut c = Cell::new();
        c.set_fault(Some(Fault::StuckAtZero));
        c.write(true);
        assert!(!c.read());
        assert_eq!(c.writes(), 1, "faulty writes still wear the cell");
    }

    #[test]
    fn stuck_at_one_masks_state() {
        let mut c = Cell::new();
        c.set_fault(Some(Fault::StuckAtOne));
        assert!(c.read());
        c.write(false);
        assert!(c.read());
    }

    #[test]
    fn clearing_fault_restores_state() {
        let mut c = Cell::new();
        c.write(true);
        c.set_fault(Some(Fault::StuckAtZero));
        assert!(!c.read());
        c.set_fault(None);
        assert!(c.read());
        assert_eq!(c.fault(), None);
    }

    #[test]
    fn fault_display() {
        assert_eq!(Fault::StuckAtZero.to_string(), "stuck-at-0");
        assert_eq!(Fault::StuckAtOne.to_string(), "stuck-at-1");
    }
}
