//! Error type for crossbar operations.

use std::error::Error;
use std::fmt;

/// Errors reported by the crossbar simulator.
///
/// All public fallible operations of this crate return
/// [`Result<T, CrossbarError>`](crate::Result).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrossbarError {
    /// A cell coordinate was outside the array.
    OutOfBounds {
        /// Description of the access that failed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive limit it violated.
        limit: usize,
    },
    /// A block index did not exist.
    NoSuchBlock {
        /// The requested block index.
        index: usize,
        /// The number of blocks in the crossbar.
        blocks: usize,
    },
    /// All NOR inputs must live in one block (the MAGIC voltage pattern is
    /// applied per block).
    InputsSpanBlocks,
    /// A nonzero shift was requested without crossing the interconnect
    /// (shifting happens *in* the interconnect between blocks).
    ShiftWithinBlock {
        /// The requested shift.
        shift: isize,
    },
    /// A shift would move a column range partially or wholly outside the
    /// array, silently changing its length if clamped.
    IllegalShift {
        /// The requested shift.
        shift: isize,
        /// Start of the unshifted column range.
        start: usize,
        /// End (exclusive) of the unshifted column range.
        end: usize,
    },
    /// Lane-parallel NOR spans must be pairwise identical or disjoint:
    /// a partial overlap would make one lane's output bitline another
    /// lane's input bitline within the same cycle.
    LaneOverlap {
        /// First bitline of one offending span.
        a: usize,
        /// First bitline of the other offending span.
        b: usize,
        /// The lane count the spans cover.
        lanes: usize,
    },
    /// A scratch row was freed twice without an intervening allocation.
    DoubleFree {
        /// The offending row.
        row: usize,
    },
    /// A scratch row that was never allocated was freed.
    FreeUnallocated {
        /// The offending row.
        row: usize,
    },
    /// The configuration was rejected.
    InvalidConfig(String),
    /// A MAGIC NOR targeted an output cell that was not initialized to the
    /// ON state (detected only when `strict_init` is enabled).
    UninitializedOutput {
        /// Block of the offending output cell.
        block: usize,
        /// Row of the offending output cell.
        row: usize,
        /// Column of the offending output cell.
        col: usize,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::OutOfBounds { what, index, limit } => {
                write!(f, "{what} index {index} out of bounds (limit {limit})")
            }
            CrossbarError::NoSuchBlock { index, blocks } => {
                write!(f, "block {index} does not exist ({blocks} blocks)")
            }
            CrossbarError::InputsSpanBlocks => {
                write!(f, "MAGIC NOR inputs must all live in one block")
            }
            CrossbarError::ShiftWithinBlock { shift } => {
                write!(f, "shift of {shift} requested within a single block")
            }
            CrossbarError::IllegalShift { shift, start, end } => write!(
                f,
                "shift of {shift} moves column range {start}..{end} outside the array"
            ),
            CrossbarError::LaneOverlap { a, b, lanes } => write!(
                f,
                "lane spans starting at columns {a} and {b} overlap partially over {lanes} lane(s)"
            ),
            CrossbarError::DoubleFree { row } => {
                write!(f, "scratch row {row} freed twice")
            }
            CrossbarError::FreeUnallocated { row } => {
                write!(f, "scratch row {row} freed but was never allocated")
            }
            CrossbarError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CrossbarError::UninitializedOutput { block, row, col } => write!(
                f,
                "MAGIC output cell ({block},{row},{col}) was not initialized to ON"
            ),
        }
    }
}

impl Error for CrossbarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CrossbarError::OutOfBounds {
            what: "row",
            index: 9,
            limit: 8,
        };
        assert!(e.to_string().contains("row index 9"));
        assert!(CrossbarError::InputsSpanBlocks
            .to_string()
            .contains("one block"));
        assert!(CrossbarError::ShiftWithinBlock { shift: 3 }
            .to_string()
            .contains("3"));
        assert!(CrossbarError::NoSuchBlock {
            index: 5,
            blocks: 2
        }
        .to_string()
        .contains("block 5"));
        assert!(CrossbarError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(CrossbarError::UninitializedOutput {
            block: 0,
            row: 1,
            col: 2
        }
        .to_string()
        .contains("(0,1,2)"));
        assert!(CrossbarError::IllegalShift {
            shift: -2,
            start: 0,
            end: 4
        }
        .to_string()
        .contains("0..4"));
        assert!(CrossbarError::DoubleFree { row: 7 }
            .to_string()
            .contains("7"));
        assert!(CrossbarError::FreeUnallocated { row: 9 }
            .to_string()
            .contains("never allocated"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CrossbarError>();
    }
}
