//! Bit-accurate RRAM crossbar simulator for APIM.
//!
//! This crate models the memory unit of the APIM architecture (Figure 1 of
//! the paper): a crossbar of memristive cells divided into *data blocks* and
//! *processing blocks* that share row/column decoders and are joined by
//! **configurable interconnects** (barrel shifters). It executes MAGIC NOR
//! logic directly on simulated cells while accounting cycles, writes, reads
//! and energy.
//!
//! The central type is [`BlockedCrossbar`]. Its compute primitives follow
//! the paper's cost accounting:
//!
//! * [`BlockedCrossbar::nor_rows_shifted`] — one column-parallel MAGIC NOR,
//!   one cycle, optionally crossing the interconnect with a bitline shift
//!   (shifting adds **zero** latency — that is the point of §3.1).
//! * [`BlockedCrossbar::nor_cells`] — a single-bit MAGIC NOR, one cycle.
//! * [`BlockedCrossbar::read_bit`] — a sense-amplifier read (0.3 ns,
//!   sub-cycle: overlapped with computation, so zero cycles are charged).
//! * [`BlockedCrossbar::maj_read`] — the modified sense amplifier of §3.4
//!   evaluating a majority of three cells; the paper charges the MAJ
//!   evaluation plus the mandatory carry write-back as 2 cycles per bit, so
//!   `maj_read` charges one cycle and the write-back charges the other.
//! * [`BlockedCrossbar::preload_word`] — stores input data without charging
//!   compute cycles (the paper's premise is that datasets are already
//!   resident in memory).
//!
//! # Example
//!
//! ```
//! use apim_crossbar::{BlockedCrossbar, CrossbarConfig, RowRef};
//!
//! # fn main() -> Result<(), apim_crossbar::CrossbarError> {
//! let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
//! let block = xbar.block(0)?;
//! // Store two 4-bit words in rows 0 and 1.
//! xbar.preload_word(block, 0, 0, &[true, false, true, false])?;
//! xbar.preload_word(block, 1, 0, &[true, true, false, false])?;
//! // One column-parallel MAGIC NOR into row 2: costs exactly 1 cycle.
//! xbar.init_rows(block, &[2], 0..4)?;
//! xbar.nor_rows_shifted(&[RowRef::new(block, 0), RowRef::new(block, 1)],
//!                       RowRef::new(block, 2), 0..4, 0)?;
//! assert_eq!(xbar.peek_word(block, 2, 0, 4)?, vec![false, false, false, true]);
//! assert_eq!(xbar.stats().cycles.get(), 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod array;
mod block;
mod cell;
mod error;
mod interconnect;
mod layout;
mod packed;
pub mod semantics;
mod stats;
mod trace;
mod wear;

pub use array::CrossbarArray;
pub use block::{Backend, BlockId, BlockRole, BlockedCrossbar, CrossbarConfig, RowRef};
pub use cell::{Cell, Fault};
pub use error::CrossbarError;
pub use interconnect::BarrelShifter;
pub use layout::{ReusePolicy, RowAllocator};
pub use packed::{PackedArray, WORD_BITS};
pub use stats::{EnergyBreakdown, Stats};
pub use trace::{AllocEvent, OpTrace, TraceOp};
pub use wear::{BlockWear, HotSpot, WearReport};

/// Convenience result alias for crossbar operations.
pub type Result<T> = std::result::Result<T, CrossbarError>;
