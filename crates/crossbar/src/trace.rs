//! Replayable operation IR recorded from [`BlockedCrossbar`] primitives.
//!
//! When recording is armed (see [`BlockedCrossbar::start_recording`]), every
//! compute/data-movement primitive appends one [`TraceOp`] describing the
//! *request* — including requests the runtime later rejects — so static
//! analyses (the `apim-verify` crate) can replay a kernel's microprogram
//! without re-executing it and flag hazards the relaxed runtime checks miss.
//!
//! [`BlockedCrossbar`]: crate::BlockedCrossbar
//! [`BlockedCrossbar::start_recording`]: crate::BlockedCrossbar::start_recording

use crate::block::RowRef;
use std::ops::Range;

/// One recorded crossbar primitive.
///
/// Coordinates are raw indices (block, row, column) exactly as passed to the
/// primitive; no bounds clamping or shift resolution has been applied, so a
/// consumer sees precisely what the kernel asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// `preload_bit`: store one resident-data bit (0 cycles).
    PreloadBit {
        /// Target block index.
        block: usize,
        /// Target wordline.
        row: usize,
        /// Target bitline.
        col: usize,
        /// The bit stored (symbolic replay binds input cells here).
        value: bool,
    },
    /// `preload_word`: store bits LSB-first from `col0` (0 cycles).
    PreloadWord {
        /// Target block index.
        block: usize,
        /// Target wordline.
        row: usize,
        /// First bitline of the word.
        col0: usize,
        /// The bits stored, LSB first (symbolic replay binds operand
        /// windows over these).
        bits: Vec<bool>,
    },
    /// `read_bit`: sense-amplifier read (0 cycles).
    ReadBit {
        /// Source block index.
        block: usize,
        /// Source wordline.
        row: usize,
        /// Source bitline.
        col: usize,
    },
    /// `maj_read`: majority of three cells in one block (1 cycle).
    MajRead {
        /// Source block index.
        block: usize,
        /// The three `(row, col)` cells.
        cells: [(usize, usize); 3],
    },
    /// `write_back_bit`: peripheral write-back (1 cycle).
    ///
    /// Recorded `value` is what the kernel's host-side logic computed from
    /// earlier sense-amplifier reads; the symbolic interpreter re-derives
    /// it from the most recent read and cross-checks constants.
    WriteBackBit {
        /// Target block index.
        block: usize,
        /// Target wordline.
        row: usize,
        /// Target bitline.
        col: usize,
        /// The bit written back.
        value: bool,
    },
    /// `init_rows`: pre-set row segments to ON (0 cycles).
    InitRows {
        /// Target block index.
        block: usize,
        /// Wordlines initialized.
        rows: Vec<usize>,
        /// Bitline range initialized on each wordline.
        cols: Range<usize>,
    },
    /// `init_cells`: pre-set scattered cells to ON (0 cycles).
    InitCells {
        /// Target block index.
        block: usize,
        /// The `(row, col)` cells initialized.
        cells: Vec<(usize, usize)>,
    },
    /// `init_cols`: pre-set column segments to ON (0 cycles).
    InitCols {
        /// Target block index.
        block: usize,
        /// Bitlines initialized.
        cols: Vec<usize>,
        /// Wordline range initialized on each bitline.
        rows: Range<usize>,
    },
    /// `nor_rows_shifted`: column-parallel MAGIC NOR (1 cycle).
    NorRowsShifted {
        /// Input rows (all must share a block).
        inputs: Vec<(usize, usize)>,
        /// Output `(block, row)`.
        out: (usize, usize),
        /// Input bitline range.
        cols: Range<usize>,
        /// Interconnect shift applied to output columns.
        shift: isize,
    },
    /// `nor_cols`: row-parallel MAGIC NOR along columns (1 cycle).
    NorCols {
        /// Block holding all cells.
        block: usize,
        /// Input bitlines.
        input_cols: Vec<usize>,
        /// Output bitline.
        out_col: usize,
        /// Wordline range evaluated.
        rows: Range<usize>,
    },
    /// `nor_cells`: single-bit MAGIC NOR over scattered cells (1 cycle).
    NorCells {
        /// Block holding all cells.
        block: usize,
        /// Input `(row, col)` cells.
        inputs: Vec<(usize, usize)>,
        /// Output `(row, col)` cell.
        out: (usize, usize),
    },
    /// `nor_lanes`: lane-parallel scattered MAGIC NOR (1 cycle). For every
    /// lane `j < lanes` the gate `out + j = NOR(inputs + j)` fires on its
    /// own set of bitlines — `lanes` independent [`TraceOp::NorCells`]
    /// instances sharing one voltage application, exactly the
    /// width-independence argument behind `nor_rows_shifted`.
    NorLanes {
        /// Block holding all cells.
        block: usize,
        /// Input `(row, col0)` span starts; lane `j` reads column
        /// `col0 + j` of each.
        inputs: Vec<(usize, usize)>,
        /// Output `(row, col0)` span start; lane `j` writes `col0 + j`.
        out: (usize, usize),
        /// Number of lanes evaluated in parallel.
        lanes: usize,
    },
    /// `advance_cycles`: explicit non-hideable latency.
    AdvanceCycles {
        /// Cycles added.
        cycles: u64,
    },
    /// `rewind_cycles`: stage-parallelism discount (saturates at zero).
    RewindCycles {
        /// Cycles discounted.
        cycles: u64,
    },
}

impl TraceOp {
    /// Convenience constructor turning [`RowRef`]s into raw coordinates.
    pub(crate) fn nor_rows(
        inputs: &[RowRef],
        out: RowRef,
        cols: Range<usize>,
        shift: isize,
    ) -> Self {
        TraceOp::NorRowsShifted {
            inputs: inputs.iter().map(|r| (r.block.index(), r.row)).collect(),
            out: (out.block.index(), out.row),
            cols,
            shift,
        }
    }
}

/// A recorded microprogram: the sequence of primitives one kernel issued,
/// plus the dimensions of the crossbar it ran on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpTrace {
    /// Number of blocks in the recorded crossbar.
    pub blocks: usize,
    /// Wordlines per block.
    pub rows: usize,
    /// Bitlines per block.
    pub cols: usize,
    /// The primitives, in issue order.
    pub ops: Vec<TraceOp>,
}

impl OpTrace {
    /// Number of recorded primitives.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Cycles the trace accounts for under the crate's conventions:
    /// preload/init/read are free, every NOR / MAJ / write-back costs one
    /// cycle, and `advance`/`rewind` adjust the counter explicitly
    /// (rewind saturates at zero, mirroring the runtime).
    pub fn cycles(&self) -> u64 {
        let mut total = 0u64;
        for op in &self.ops {
            match op {
                TraceOp::NorRowsShifted { .. }
                | TraceOp::NorCols { .. }
                | TraceOp::NorCells { .. }
                | TraceOp::NorLanes { .. }
                | TraceOp::MajRead { .. }
                | TraceOp::WriteBackBit { .. } => total += 1,
                TraceOp::AdvanceCycles { cycles } => total += cycles,
                TraceOp::RewindCycles { cycles } => total = total.saturating_sub(*cycles),
                TraceOp::PreloadBit { .. }
                | TraceOp::PreloadWord { .. }
                | TraceOp::ReadBit { .. }
                | TraceOp::InitRows { .. }
                | TraceOp::InitCells { .. }
                | TraceOp::InitCols { .. } => {}
            }
        }
        total
    }
}

/// One scratch-row allocator event, recorded when the allocator is built
/// with [`RowAllocator::with_tracing`].
///
/// Free events record the *attempt*, before validation — a rejected
/// double-free still shows up, which is exactly what the lifetime pass
/// wants to see.
///
/// [`RowAllocator::with_tracing`]: crate::RowAllocator::with_tracing
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocEvent {
    /// A row was handed out.
    Alloc {
        /// The claimed wordline.
        row: usize,
    },
    /// A row was offered back (possibly rejected by validation).
    Free {
        /// The wordline offered back.
        row: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_follow_the_conventions() {
        let trace = OpTrace {
            blocks: 2,
            rows: 8,
            cols: 8,
            ops: vec![
                TraceOp::PreloadWord {
                    block: 0,
                    row: 0,
                    col0: 0,
                    bits: vec![true, false, true, true],
                },
                TraceOp::InitRows {
                    block: 1,
                    rows: vec![0],
                    cols: 0..4,
                },
                TraceOp::NorRowsShifted {
                    inputs: vec![(0, 0)],
                    out: (1, 0),
                    cols: 0..4,
                    shift: 0,
                },
                TraceOp::WriteBackBit {
                    block: 1,
                    row: 1,
                    col: 0,
                    value: true,
                },
                TraceOp::AdvanceCycles { cycles: 13 },
                TraceOp::RewindCycles { cycles: 5 },
            ],
        };
        assert_eq!(trace.cycles(), 1 + 1 + 13 - 5);
    }

    #[test]
    fn rewind_saturates_at_zero() {
        let trace = OpTrace {
            blocks: 2,
            rows: 8,
            cols: 8,
            ops: vec![TraceOp::RewindCycles { cycles: 99 }],
        };
        assert_eq!(trace.cycles(), 0);
        assert!(!trace.is_empty());
        assert_eq!(trace.len(), 1);
    }
}
