//! Scratch-row allocation inside a processing block.

use crate::error::CrossbarError;
use crate::Result;

/// A simple allocator for wordlines of a processing block.
///
/// Gate-level routines in `apim-logic` need scratch rows for intermediate
/// NOR results; this keeps their bookkeeping out of the arithmetic code.
/// Rows are handed out lowest-first and can be returned for reuse.
///
/// ```
/// use apim_crossbar::RowAllocator;
///
/// # fn main() -> Result<(), apim_crossbar::CrossbarError> {
/// let mut alloc = RowAllocator::new(8);
/// let a = alloc.alloc()?;
/// let b = alloc.alloc()?;
/// assert_ne!(a, b);
/// alloc.free(a);
/// assert_eq!(alloc.alloc()?, a); // freed rows are reused
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowAllocator {
    rows: usize,
    free: Vec<usize>,
    next: usize,
}

impl RowAllocator {
    /// An allocator over `rows` wordlines.
    pub fn new(rows: usize) -> Self {
        RowAllocator {
            rows,
            free: Vec::new(),
            next: 0,
        }
    }

    /// Claims a free row.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] when the block has no rows
    /// left — the caller's layout needs a bigger block.
    pub fn alloc(&mut self) -> Result<usize> {
        if let Some(row) = self.free.pop() {
            return Ok(row);
        }
        if self.next >= self.rows {
            return Err(CrossbarError::OutOfBounds {
                what: "scratch row",
                index: self.next,
                limit: self.rows,
            });
        }
        let row = self.next;
        self.next += 1;
        Ok(row)
    }

    /// Claims `n` rows at once.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] if fewer than `n` rows remain;
    /// already-claimed rows are *not* rolled back in that case.
    pub fn alloc_many(&mut self, n: usize) -> Result<Vec<usize>> {
        (0..n).map(|_| self.alloc()).collect()
    }

    /// Returns a row for reuse.
    pub fn free(&mut self, row: usize) {
        debug_assert!(row < self.rows, "freeing row outside the block");
        self.free.push(row);
    }

    /// Returns several rows for reuse.
    pub fn free_many(&mut self, rows: impl IntoIterator<Item = usize>) {
        for row in rows {
            self.free(row);
        }
    }

    /// Rows still available (free list + never-claimed).
    pub fn available(&self) -> usize {
        self.free.len() + (self.rows - self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_distinct_rows() {
        let mut a = RowAllocator::new(4);
        let rows = a.alloc_many(4).unwrap();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn exhaustion_errors() {
        let mut a = RowAllocator::new(2);
        a.alloc_many(2).unwrap();
        assert!(a.alloc().is_err());
    }

    #[test]
    fn free_enables_reuse() {
        let mut a = RowAllocator::new(2);
        let r0 = a.alloc().unwrap();
        let r1 = a.alloc().unwrap();
        a.free_many([r0, r1]);
        assert_eq!(a.available(), 2);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert!(a.alloc().is_err());
    }

    #[test]
    fn available_tracks_state() {
        let mut a = RowAllocator::new(3);
        assert_eq!(a.available(), 3);
        let r = a.alloc().unwrap();
        assert_eq!(a.available(), 2);
        a.free(r);
        assert_eq!(a.available(), 3);
    }
}
