//! Scratch-row allocation inside a processing block.

use crate::error::CrossbarError;
use crate::trace::AllocEvent;
use crate::Result;

/// A simple allocator for wordlines of a processing block.
///
/// Gate-level routines in `apim-logic` need scratch rows for intermediate
/// NOR results; this keeps their bookkeeping out of the arithmetic code.
/// Rows are handed out lowest-first and can be returned for reuse.
///
/// Freeing is validated: returning a row twice or returning a row that was
/// never handed out is rejected, because either would make
/// [`available`](RowAllocator::available) overcount and eventually let
/// [`alloc`](RowAllocator::alloc) give the same row to two callers.
///
/// ```
/// use apim_crossbar::RowAllocator;
///
/// # fn main() -> Result<(), apim_crossbar::CrossbarError> {
/// let mut alloc = RowAllocator::new(8);
/// let a = alloc.alloc()?;
/// let b = alloc.alloc()?;
/// assert_ne!(a, b);
/// alloc.free(a)?;
/// assert_eq!(alloc.alloc()?, a); // freed rows are reused
/// assert!(alloc.free(b).is_ok());
/// assert!(alloc.free(b).is_err()); // double-free rejected
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowAllocator {
    rows: usize,
    free: Vec<usize>,
    next: usize,
    trace: Option<Vec<AllocEvent>>,
    policy: ReusePolicy,
}

/// How a [`RowAllocator`] recycles freed rows.
///
/// The choice never changes *which* rows a kernel can use — only the order
/// they are handed out — so microprograms are correct under either policy;
/// what changes is where endurance is spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReusePolicy {
    /// Reuse the most recently freed row first (LIFO) and only bump into
    /// fresh rows when the free list is empty. Minimal footprint, but a
    /// kernel run in a loop hammers the same few scratch rows forever.
    #[default]
    Stack,
    /// Wear leveling: prefer never-claimed rows while any remain, then
    /// recycle freed rows oldest-first (FIFO). Scratch allocations
    /// round-robin across the whole block, spreading write wear evenly.
    Rotate,
}

impl RowAllocator {
    /// An allocator over `rows` wordlines.
    pub fn new(rows: usize) -> Self {
        RowAllocator {
            rows,
            free: Vec::new(),
            next: 0,
            trace: None,
            policy: ReusePolicy::Stack,
        }
    }

    /// An allocator that records every alloc/free into an event log for the
    /// `apim-verify` lifetime pass. Free *attempts* are recorded before
    /// validation, so rejected double-frees are visible to the analysis.
    pub fn with_tracing(rows: usize) -> Self {
        RowAllocator {
            trace: Some(Vec::new()),
            ..RowAllocator::new(rows)
        }
    }

    /// A wear-leveling allocator ([`ReusePolicy::Rotate`]): scratch rows
    /// rotate through the whole block instead of piling writes onto the
    /// lowest rows.
    pub fn round_robin(rows: usize) -> Self {
        RowAllocator {
            policy: ReusePolicy::Rotate,
            ..RowAllocator::new(rows)
        }
    }

    /// [`RowAllocator::round_robin`] with event tracing armed.
    pub fn round_robin_with_tracing(rows: usize) -> Self {
        RowAllocator {
            policy: ReusePolicy::Rotate,
            ..RowAllocator::with_tracing(rows)
        }
    }

    /// The active reuse policy.
    pub fn policy(&self) -> ReusePolicy {
        self.policy
    }

    /// Drains and returns the recorded event log (empty when the allocator
    /// was built without tracing).
    pub fn take_events(&mut self) -> Vec<AllocEvent> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    fn record(&mut self, event: AllocEvent) {
        if let Some(trace) = &mut self.trace {
            trace.push(event);
        }
    }

    /// Claims a free row.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] when the block has no rows
    /// left — the caller's layout needs a bigger block.
    pub fn alloc(&mut self) -> Result<usize> {
        let recycled = match self.policy {
            // LIFO: favour the warmest row for cache-like locality of the
            // simulated layout (the historical behaviour).
            ReusePolicy::Stack => self.free.pop(),
            // Rotation claims fresh rows while any exist; recycling (FIFO)
            // only starts once the whole block has been touched.
            ReusePolicy::Rotate if self.next >= self.rows && !self.free.is_empty() => {
                Some(self.free.remove(0))
            }
            ReusePolicy::Rotate => None,
        };
        if let Some(row) = recycled {
            self.record(AllocEvent::Alloc { row });
            return Ok(row);
        }
        if self.next >= self.rows {
            return Err(CrossbarError::OutOfBounds {
                what: "scratch row",
                index: self.next,
                limit: self.rows,
            });
        }
        let row = self.next;
        self.next += 1;
        self.record(AllocEvent::Alloc { row });
        Ok(row)
    }

    /// Claims `n` rows at once.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] if fewer than `n` rows remain.
    /// Rows claimed before the failure are rolled back, so a failed bulk
    /// request leaves the allocator exactly as it found it.
    pub fn alloc_many(&mut self, n: usize) -> Result<Vec<usize>> {
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            match self.alloc() {
                Ok(row) => rows.push(row),
                Err(e) => {
                    for row in rows.into_iter().rev() {
                        self.free(row).expect("rolling back a row just claimed");
                    }
                    return Err(e);
                }
            }
        }
        Ok(rows)
    }

    /// Returns a row for reuse.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::OutOfBounds`] if `row` lies outside the block.
    /// * [`CrossbarError::FreeUnallocated`] if `row` was never claimed.
    /// * [`CrossbarError::DoubleFree`] if `row` is already on the free list.
    pub fn free(&mut self, row: usize) -> Result<()> {
        self.record(AllocEvent::Free { row });
        if row >= self.rows {
            return Err(CrossbarError::OutOfBounds {
                what: "scratch row",
                index: row,
                limit: self.rows,
            });
        }
        if row >= self.next {
            return Err(CrossbarError::FreeUnallocated { row });
        }
        if self.free.contains(&row) {
            return Err(CrossbarError::DoubleFree { row });
        }
        self.free.push(row);
        Ok(())
    }

    /// Returns several rows for reuse.
    ///
    /// # Errors
    ///
    /// Stops and reports the first row [`free`](RowAllocator::free) rejects;
    /// rows before it are already returned.
    pub fn free_many(&mut self, rows: impl IntoIterator<Item = usize>) -> Result<()> {
        for row in rows {
            self.free(row)?;
        }
        Ok(())
    }

    /// Rows still available (free list + never-claimed).
    pub fn available(&self) -> usize {
        self.free.len() + (self.rows - self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_distinct_rows() {
        let mut a = RowAllocator::new(4);
        let rows = a.alloc_many(4).unwrap();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn exhaustion_errors() {
        let mut a = RowAllocator::new(2);
        a.alloc_many(2).unwrap();
        assert!(a.alloc().is_err());
    }

    #[test]
    fn free_enables_reuse() {
        let mut a = RowAllocator::new(2);
        let r0 = a.alloc().unwrap();
        let r1 = a.alloc().unwrap();
        a.free_many([r0, r1]).unwrap();
        assert_eq!(a.available(), 2);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert!(a.alloc().is_err());
    }

    #[test]
    fn available_tracks_state() {
        let mut a = RowAllocator::new(3);
        assert_eq!(a.available(), 3);
        let r = a.alloc().unwrap();
        assert_eq!(a.available(), 2);
        a.free(r).unwrap();
        assert_eq!(a.available(), 3);
    }

    #[test]
    fn double_free_rejected() {
        let mut a = RowAllocator::new(4);
        let r = a.alloc().unwrap();
        a.free(r).unwrap();
        assert_eq!(a.free(r), Err(CrossbarError::DoubleFree { row: r }));
        assert_eq!(a.available(), 4, "rejected free must not overcount");
    }

    #[test]
    fn free_of_never_allocated_rejected() {
        let mut a = RowAllocator::new(4);
        a.alloc().unwrap();
        assert_eq!(a.free(3), Err(CrossbarError::FreeUnallocated { row: 3 }));
        assert!(matches!(a.free(99), Err(CrossbarError::OutOfBounds { .. })));
    }

    #[test]
    fn failed_alloc_many_rolls_back() {
        let mut a = RowAllocator::new(3);
        let keep = a.alloc().unwrap();
        assert!(a.alloc_many(3).is_err());
        assert_eq!(a.available(), 2, "partial claim rolled back");
        let again = a.alloc_many(2).unwrap();
        assert!(!again.contains(&keep));
    }

    #[test]
    fn tracing_records_attempts() {
        let mut a = RowAllocator::with_tracing(2);
        let r = a.alloc().unwrap();
        a.free(r).unwrap();
        let _ = a.free(r); // rejected, still recorded
        assert_eq!(
            a.take_events(),
            vec![
                AllocEvent::Alloc { row: r },
                AllocEvent::Free { row: r },
                AllocEvent::Free { row: r },
            ]
        );
        assert!(a.take_events().is_empty(), "events drained");
    }

    #[test]
    fn untraced_allocator_records_nothing() {
        let mut a = RowAllocator::new(2);
        a.alloc().unwrap();
        assert!(a.take_events().is_empty());
    }

    #[test]
    fn rotation_prefers_fresh_rows_over_freed_ones() {
        let mut a = RowAllocator::round_robin(4);
        let r0 = a.alloc().unwrap();
        a.free(r0).unwrap();
        // Stack policy would hand r0 straight back; rotation moves on.
        assert_eq!(a.alloc().unwrap(), 1);
        assert_eq!(a.alloc().unwrap(), 2);
        assert_eq!(a.alloc().unwrap(), 3);
        // Block exhausted: now the freed row comes back.
        assert_eq!(a.alloc().unwrap(), r0);
        assert!(a.alloc().is_err());
    }

    #[test]
    fn rotation_recycles_oldest_freed_row_first() {
        let mut a = RowAllocator::round_robin(3);
        let rows = a.alloc_many(3).unwrap();
        a.free(rows[2]).unwrap();
        a.free(rows[0]).unwrap();
        assert_eq!(a.alloc().unwrap(), rows[2], "FIFO, not LIFO");
        assert_eq!(a.alloc().unwrap(), rows[0]);
    }

    #[test]
    fn rotation_cycles_through_the_whole_block() {
        // A one-row working set on an 8-row block must visit all 8 rows
        // before reusing any — that is the whole wear-leveling argument.
        let mut a = RowAllocator::round_robin(8);
        let mut seen = Vec::new();
        for _ in 0..8 {
            let r = a.alloc().unwrap();
            seen.push(r);
            a.free(r).unwrap();
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn rotation_keeps_free_validation() {
        let mut a = RowAllocator::round_robin(4);
        let r = a.alloc().unwrap();
        a.free(r).unwrap();
        assert_eq!(a.free(r), Err(CrossbarError::DoubleFree { row: r }));
        assert_eq!(a.free(3), Err(CrossbarError::FreeUnallocated { row: 3 }));
        assert_eq!(a.available(), 4);
    }

    #[test]
    fn policies_are_reported() {
        assert_eq!(RowAllocator::new(2).policy(), ReusePolicy::Stack);
        assert_eq!(RowAllocator::round_robin(2).policy(), ReusePolicy::Rotate);
        let mut traced = RowAllocator::round_robin_with_tracing(2);
        let r = traced.alloc().unwrap();
        assert_eq!(traced.take_events(), vec![AllocEvent::Alloc { row: r }]);
    }
}
