//! The one true multi-input NOR.
//!
//! MAGIC evaluates `out = NOR(in_1, …, in_k)` by discharging the
//! pre-initialized (ON) output cell whenever any input cell is ON. Three
//! executors need exactly this truth function — the scalar backend
//! (bit-at-a-time), the packed backend (64 cells per word), and the
//! symbolic equivalence checker in `apim-verify` (node ids over a hash-
//! consed NOR graph) — and they must never drift. [`nor_with`] is the
//! shared shape: an OR-fold over the inputs followed by one complement,
//! parameterized over the value domain. [`nor_bits`] and [`nor_words`]
//! are the two concrete instantiations; the symbolic interpreter threads
//! its own three-valued lattice through [`nor_with`] directly.

/// Folds `out = NOT(OR(inputs))` over an arbitrary value domain.
///
/// `zero` is the domain's OR identity (all cells OFF), `or` joins two
/// values, and `not` complements the folded result. Every NOR executed
/// anywhere in the workspace — scalar, packed, or symbolic — reduces to
/// this function, so the gate truth table is defined in exactly one
/// place.
pub fn nor_with<T>(
    zero: T,
    inputs: impl IntoIterator<Item = T>,
    or: impl FnMut(T, T) -> T,
    not: impl FnOnce(T) -> T,
) -> T {
    not(inputs.into_iter().fold(zero, or))
}

/// Multi-input NOR over single cells: ON iff every input is OFF.
pub fn nor_bits(inputs: impl IntoIterator<Item = bool>) -> bool {
    nor_with(false, inputs, |acc, b| acc | b, |acc| !acc)
}

/// Multi-input NOR over 64-cell words, one crossbar column per bit lane.
pub fn nor_words(inputs: impl IntoIterator<Item = u64>) -> u64 {
    nor_with(0u64, inputs, |acc, w| acc | w, |acc| !acc)
}

/// The strict-init discipline: a MAGIC NOR can only switch its output
/// cell OFF, so the cell must be ON *before* evaluation. Returns whether
/// `before` (the output cell's pre-NOR state) satisfies that obligation.
pub fn strict_init_ok(before: bool) -> bool {
    before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nor_bits_matches_the_truth_table() {
        assert!(nor_bits([]));
        assert!(nor_bits([false, false, false]));
        assert!(!nor_bits([false, true]));
        assert!(!nor_bits([true]));
        // NOT is the single-input special case.
        assert!(nor_bits([false]));
        assert!(!nor_bits([true, true]));
    }

    #[test]
    fn nor_words_is_nor_bits_in_every_lane() {
        let a = 0xA5A5_0F0F_3333_5555u64;
        let b = 0x00FF_00FF_0F0F_F0F0u64;
        let out = nor_words([a, b]);
        for lane in 0..64 {
            let bit = |w: u64| (w >> lane) & 1 == 1;
            assert_eq!(bit(out), nor_bits([bit(a), bit(b)]), "lane {lane}");
        }
        assert_eq!(nor_words([]), u64::MAX);
    }

    #[test]
    fn strict_init_accepts_only_on_cells() {
        assert!(strict_init_ok(true));
        assert!(!strict_init_ok(false));
    }
}
