//! The raw cell grid of one crossbar block.

use crate::cell::{Cell, Fault};
use crate::error::CrossbarError;
use crate::Result;

/// A rectangular grid of memristive cells — the **scalar reference oracle**.
///
/// `CrossbarArray` is the passive storage fabric; logic execution and cost
/// accounting live in [`crate::BlockedCrossbar`], which owns one store per
/// block. The array offers bounds-checked raw access plus fault injection.
///
/// Production simulation runs on the bit-packed [`crate::PackedArray`]
/// ([`crate::Backend::Packed`], the default); this one-[`Cell`]-per-
/// coordinate grid is retained as [`crate::Backend::Scalar`], the slow but
/// obviously-correct implementation the differential suites compare the
/// packed fabric against bit-for-bit (cell state, wear counters, faults).
///
/// ```
/// use apim_crossbar::CrossbarArray;
///
/// # fn main() -> Result<(), apim_crossbar::CrossbarError> {
/// let mut a = CrossbarArray::new(4, 8)?;
/// a.set(2, 3, true)?;
/// assert!(a.get(2, 3)?);
/// assert_eq!(a.rows(), 4);
/// assert_eq!(a.cols(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    cells: Vec<Cell>,
}

impl CrossbarArray {
    /// Creates an array of `rows × cols` cells, all in the OFF state.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(CrossbarError::InvalidConfig(
                "array dimensions must be nonzero".into(),
            ));
        }
        Ok(CrossbarArray {
            rows,
            cols,
            cells: vec![Cell::new(); rows * cols],
        })
    }

    /// Number of wordlines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitlines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn index(&self, row: usize, col: usize) -> Result<usize> {
        if row >= self.rows {
            return Err(CrossbarError::OutOfBounds {
                what: "row",
                index: row,
                limit: self.rows,
            });
        }
        if col >= self.cols {
            return Err(CrossbarError::OutOfBounds {
                what: "col",
                index: col,
                limit: self.cols,
            });
        }
        Ok(row * self.cols + col)
    }

    /// Reads the logical value of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn get(&self, row: usize, col: usize) -> Result<bool> {
        Ok(self.cells[self.index(row, col)?].read())
    }

    /// Writes the logical value of a cell (counting the write).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn set(&mut self, row: usize, col: usize, bit: bool) -> Result<()> {
        let idx = self.index(row, col)?;
        self.cells[idx].write(bit);
        Ok(())
    }

    /// Total writes absorbed by a cell (endurance proxy).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn cell_writes(&self, row: usize, col: usize) -> Result<u64> {
        Ok(self.cells[self.index(row, col)?].writes())
    }

    /// The most-written cell's write count — the array's wear hotspot.
    pub fn max_cell_writes(&self) -> u64 {
        self.cells.iter().map(Cell::writes).max().unwrap_or(0)
    }

    /// The `k` most-written cells as `(row, col, writes)`, hottest first
    /// (ties broken by coordinate, lowest first). Cells that never absorbed
    /// a write are omitted, so the result may be shorter than `k`.
    pub fn hotspots(&self, k: usize) -> Vec<(usize, usize, u64)> {
        let mut cells: Vec<(usize, usize, u64)> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.writes() > 0)
            .map(|(i, c)| (i / self.cols, i % self.cols, c.writes()))
            .collect();
        cells.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        cells.truncate(k);
        cells
    }

    /// Total writes absorbed by the whole array.
    pub fn total_cell_writes(&self) -> u64 {
        self.cells.iter().map(Cell::writes).sum()
    }

    /// Number of cells in the array.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Injects (or clears, with `None`) a stuck-at fault on a cell.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn inject_fault(&mut self, row: usize, col: usize, fault: Option<Fault>) -> Result<()> {
        let idx = self.index(row, col)?;
        self.cells[idx].set_fault(fault);
        Ok(())
    }

    /// Number of cells with an injected fault.
    pub fn fault_count(&self) -> usize {
        self.cells.iter().filter(|c| c.fault().is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_array_is_all_zero() {
        let a = CrossbarArray::new(3, 5).unwrap();
        for r in 0..3 {
            for c in 0..5 {
                assert!(!a.get(r, c).unwrap());
            }
        }
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(CrossbarArray::new(0, 5).is_err());
        assert!(CrossbarArray::new(5, 0).is_err());
    }

    #[test]
    fn set_get_round_trip() {
        let mut a = CrossbarArray::new(2, 2).unwrap();
        a.set(1, 0, true).unwrap();
        assert!(a.get(1, 0).unwrap());
        assert!(!a.get(0, 1).unwrap());
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut a = CrossbarArray::new(2, 2).unwrap();
        assert!(matches!(
            a.get(2, 0),
            Err(CrossbarError::OutOfBounds { what: "row", .. })
        ));
        assert!(matches!(
            a.set(0, 7, true),
            Err(CrossbarError::OutOfBounds { what: "col", .. })
        ));
    }

    #[test]
    fn write_counting_tracks_hotspot() {
        let mut a = CrossbarArray::new(2, 2).unwrap();
        for _ in 0..5 {
            a.set(0, 0, true).unwrap();
        }
        a.set(1, 1, false).unwrap();
        assert_eq!(a.cell_writes(0, 0).unwrap(), 5);
        assert_eq!(a.max_cell_writes(), 5);
    }

    #[test]
    fn fault_injection_affects_reads() {
        let mut a = CrossbarArray::new(2, 2).unwrap();
        a.inject_fault(0, 0, Some(Fault::StuckAtOne)).unwrap();
        assert!(a.get(0, 0).unwrap());
        assert_eq!(a.fault_count(), 1);
        a.inject_fault(0, 0, None).unwrap();
        assert_eq!(a.fault_count(), 0);
        assert!(!a.get(0, 0).unwrap());
    }
}
