//! The configurable interconnect circuit (Figure 3(a) of the paper).
//!
//! "It can be visualized as a collection of switches, similar to a barrel
//! shifter, which connects the bitlines of the two blocks … The select
//! signals, sₙ, control the amount of shift." This module models that
//! switch network explicitly: a logarithmic barrel shifter of
//! `⌈log₂(max_shift+1)⌉` stages whose select word is the binary encoding
//! of the shift. [`crate::BlockedCrossbar`] charges interconnect energy per
//! bit moved; the per-bit constant is derived here from the per-switch
//! cost, and the routing function is the ground truth the block-level
//! `shift` parameter is tested against.

use crate::error::CrossbarError;
use crate::Result;

/// A logarithmic barrel shifter connecting two blocks' bitlines.
///
/// ```
/// use apim_crossbar::BarrelShifter;
///
/// # fn main() -> Result<(), apim_crossbar::CrossbarError> {
/// let icn = BarrelShifter::new(64, 31)?;
/// assert_eq!(icn.stages(), 5);
/// assert_eq!(icn.route(10, 3)?, Some(13));
/// assert_eq!(icn.select_signals(10), vec![false, true, false, true, false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrelShifter {
    width: usize,
    max_shift: usize,
    stages: u32,
}

impl BarrelShifter {
    /// Builds a shifter joining `width` bitlines supporting shifts of
    /// `0 ..= max_shift`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] for a zero width or a
    /// maximum shift not smaller than the width.
    pub fn new(width: usize, max_shift: usize) -> Result<Self> {
        if width == 0 {
            return Err(CrossbarError::InvalidConfig(
                "interconnect needs at least one bitline".into(),
            ));
        }
        if max_shift >= width {
            return Err(CrossbarError::InvalidConfig(format!(
                "max shift {max_shift} must be smaller than the width {width}"
            )));
        }
        let stages = usize::BITS - max_shift.leading_zeros();
        Ok(BarrelShifter {
            width,
            max_shift,
            stages: stages.max(1),
        })
    }

    /// Number of bitlines joined.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of shifter stages (`⌈log₂(max_shift + 1)⌉`).
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Total pass-gate switches in the network — the §3.1 area overhead
    /// ("the area and logic overhead introduced by the proposed memory
    /// unit is restricted to the interconnect circuit and its control
    /// logic").
    pub fn switch_count(&self) -> usize {
        self.width * self.stages as usize
    }

    /// The per-stage select word for a shift: stage `k` (shift by `2^k`)
    /// is enabled iff bit `k` of `shift` is set.
    pub fn select_signals(&self, shift: usize) -> Vec<bool> {
        (0..self.stages).map(|k| (shift >> k) & 1 == 1).collect()
    }

    /// Routes incoming bitline `b` under `shift`: returns the outgoing
    /// bitline, or `None` if it shifts off the end of the array.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ShiftWithinBlock`] if `shift` exceeds the
    /// configured maximum (the select word cannot encode it).
    pub fn route(&self, shift: usize, bitline: usize) -> Result<Option<usize>> {
        if shift > self.max_shift {
            return Err(CrossbarError::ShiftWithinBlock {
                shift: shift as isize,
            });
        }
        // Apply the enabled stages in sequence — the physical signal path.
        let mut line = bitline;
        for (k, enabled) in self.select_signals(shift).iter().enumerate() {
            if *enabled {
                line += 1 << k;
            }
        }
        Ok(if line < self.width { Some(line) } else { None })
    }

    /// Energy of moving an `active_bits`-wide word through the network,
    /// given a per-switch toggle energy: every active bit traverses one
    /// pass gate per stage.
    pub fn word_energy_pj(&self, active_bits: usize, pj_per_switch: f64) -> f64 {
        active_bits.min(self.width) as f64 * self.stages as f64 * pj_per_switch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_count_is_logarithmic() {
        assert_eq!(BarrelShifter::new(64, 1).unwrap().stages(), 1);
        assert_eq!(BarrelShifter::new(64, 3).unwrap().stages(), 2);
        assert_eq!(BarrelShifter::new(64, 31).unwrap().stages(), 5);
        assert_eq!(BarrelShifter::new(64, 32).unwrap().stages(), 6);
    }

    #[test]
    fn routing_equals_plain_addition_within_bounds() {
        let icn = BarrelShifter::new(32, 15).unwrap();
        for shift in 0..=15 {
            for b in 0..32 {
                let got = icn.route(shift, b).unwrap();
                let expect = if b + shift < 32 {
                    Some(b + shift)
                } else {
                    None
                };
                assert_eq!(got, expect, "shift {shift}, bitline {b}");
            }
        }
    }

    #[test]
    fn select_word_is_binary_encoding() {
        let icn = BarrelShifter::new(64, 31).unwrap();
        assert_eq!(
            icn.select_signals(0b10110),
            vec![false, true, true, false, true]
        );
        assert_eq!(icn.select_signals(0), vec![false; 5]);
    }

    #[test]
    fn oversized_shift_rejected() {
        let icn = BarrelShifter::new(64, 7).unwrap();
        assert!(icn.route(8, 0).is_err());
    }

    #[test]
    fn construction_validation() {
        assert!(BarrelShifter::new(0, 0).is_err());
        assert!(BarrelShifter::new(8, 8).is_err());
        assert!(BarrelShifter::new(8, 7).is_ok());
    }

    #[test]
    fn area_grows_log_not_linear() {
        // Doubling the max shift adds one stage, not double the switches.
        let a = BarrelShifter::new(256, 15).unwrap().switch_count();
        let b = BarrelShifter::new(256, 31).unwrap().switch_count();
        assert_eq!(b - a, 256);
    }

    #[test]
    fn word_energy_scales_with_stages_and_width() {
        let icn = BarrelShifter::new(64, 31).unwrap();
        let e32 = icn.word_energy_pj(32, 0.4);
        assert!((e32 - 32.0 * 5.0 * 0.4).abs() < 1e-12);
        // Width-clamped.
        assert_eq!(icn.word_energy_pj(1000, 0.4), icn.word_energy_pj(64, 0.4));
    }
}
