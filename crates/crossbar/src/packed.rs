//! Bit-packed storage fabric: 64 cells per machine word.
//!
//! The paper's core claim is that MAGIC NOR executes *column-parallel* —
//! one cycle regardless of operand width (§3.1). This module makes the
//! simulator exploit the same data parallelism it models: a row of cells is
//! a slice of `u64` words (LSB of word 0 = column 0), so a column-parallel
//! NOR over `w` cells is `⌈w/64⌉` word operations (`!(a | b | …)` with edge
//! masking) instead of `w` per-cell loop iterations with bounds checks.
//!
//! Semantics are bit-identical to the scalar [`crate::CrossbarArray`]
//! reference (the differential-testing oracle):
//!
//! * **Wear** — every cell covered by a write op gets its per-cell counter
//!   bumped unconditionally (the controller cannot know in advance whether
//!   the state changes), exactly like [`crate::Cell::write`]. The counters
//!   are split two-level so the hot path stays O(1): a full-word store
//!   bumps one per-word counter, a partial mask walks its set bits with
//!   `trailing_zeros` into per-cell counters, and a cell's effective wear
//!   is the sum of the two. The running total uses `count_ones()`.
//! * **Faults** — stuck-at faults live in two overlay bitplanes
//!   (`fault_mask`, `fault_val`). Reads see
//!   `(bits & !mask) | (val & mask)`; writes update the underlying state
//!   (and wear) but keep reading the stuck value, like a faulty
//!   [`crate::Cell`].

use crate::error::CrossbarError;
use crate::Result;
use std::ops::Range;

/// Cells per storage word.
pub const WORD_BITS: usize = 64;

/// The set-bit mask for columns `lo..hi` (both ≤ 64) of one word.
#[inline]
fn bit_range_mask(lo: usize, hi: usize) -> u64 {
    debug_assert!(lo <= hi && hi <= WORD_BITS);
    let ones = if hi == WORD_BITS {
        u64::MAX
    } else {
        (1u64 << hi) - 1
    };
    let below = if lo == WORD_BITS {
        u64::MAX
    } else {
        (1u64 << lo) - 1
    };
    ones & !below
}

/// Iterator over `(word_index, edge_mask)` pairs covering a column span.
///
/// Interior words get a full `u64::MAX` mask; the first and last word are
/// masked down to the span's edges.
#[derive(Debug, Clone)]
pub struct WordSpan {
    next: usize,
    last: usize,
    start: usize,
    end: usize,
    done: bool,
}

/// Splits a column range into `(word_index, mask)` pairs.
pub fn word_span(cols: &Range<usize>) -> WordSpan {
    if cols.start >= cols.end {
        return WordSpan {
            next: 0,
            last: 0,
            start: 0,
            end: 0,
            done: true,
        };
    }
    WordSpan {
        next: cols.start / WORD_BITS,
        last: (cols.end - 1) / WORD_BITS,
        start: cols.start,
        end: cols.end,
        done: false,
    }
}

impl Iterator for WordSpan {
    type Item = (usize, u64);

    fn next(&mut self) -> Option<(usize, u64)> {
        if self.done {
            return None;
        }
        let w = self.next;
        let base = w * WORD_BITS;
        let lo = self.start.saturating_sub(base);
        let hi = (self.end - base).min(WORD_BITS);
        if w == self.last {
            self.done = true;
        } else {
            self.next += 1;
        }
        Some((w, bit_range_mask(lo, hi)))
    }
}

/// A rectangular grid of memristive cells stored 64 per word.
///
/// Drop-in word-parallel replacement for the scalar [`crate::CrossbarArray`]:
/// the per-cell API (`get`/`set`/`cell_writes`/faults) is identical, the
/// bounds-checked word API (`store_word_bits`/`read_word_bits`) moves up to
/// 64 bits per call, and the crate-internal unchecked word primitives
/// (`word`/`store_masked`/`fill_on_span`) are what
/// [`crate::BlockedCrossbar`] builds its one-cycle column-parallel MAGIC NOR
/// on.
///
/// ```
/// use apim_crossbar::PackedArray;
///
/// # fn main() -> Result<(), apim_crossbar::CrossbarError> {
/// let mut a = PackedArray::new(4, 100)?;
/// a.set(2, 3, true)?;
/// assert!(a.get(2, 3)?);
/// assert_eq!(a.read_word_bits(2, 0, 4)?, 0b1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackedArray {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
    fault_mask: Vec<u64>,
    fault_val: Vec<u64>,
    /// Per-cell wear deltas (partial-mask and single-cell writes).
    wear: Vec<u64>,
    /// Per-word wear deltas (full-word stores); a cell's effective wear is
    /// `wear[cell] + word_wear[word]`.
    word_wear: Vec<u64>,
    total_writes: u64,
}

impl PackedArray {
    /// Creates an array of `rows × cols` cells, all in the OFF state.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(CrossbarError::InvalidConfig(
                "array dimensions must be nonzero".into(),
            ));
        }
        let words_per_row = cols.div_ceil(WORD_BITS);
        Ok(PackedArray {
            rows,
            cols,
            words_per_row,
            bits: vec![0; rows * words_per_row],
            fault_mask: vec![0; rows * words_per_row],
            fault_val: vec![0; rows * words_per_row],
            wear: vec![0; rows * cols],
            word_wear: vec![0; rows * words_per_row],
            total_writes: 0,
        })
    }

    /// Number of wordlines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitlines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage words per row (`⌈cols/64⌉`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    fn check(&self, row: usize, col: usize) -> Result<()> {
        if row >= self.rows {
            return Err(CrossbarError::OutOfBounds {
                what: "row",
                index: row,
                limit: self.rows,
            });
        }
        if col >= self.cols {
            return Err(CrossbarError::OutOfBounds {
                what: "col",
                index: col,
                limit: self.cols,
            });
        }
        Ok(())
    }

    #[inline]
    fn widx(&self, row: usize, w: usize) -> usize {
        row * self.words_per_row + w
    }

    /// Fault-corrected load of word `w` of `row`.
    ///
    /// Crate-internal hot path: every caller sits behind the
    /// [`crate::BlockedCrossbar`] validation layer, which bounds-checks the
    /// whole request before dispatching here, so the debug assertion is a
    /// development aid rather than a reachable failure (out-of-contract use
    /// would hit the deterministic slice bounds check below, never memory
    /// unsafety). External users go through the checked `get` /
    /// [`PackedArray::read_word_bits`] API instead.
    #[inline]
    pub(crate) fn word(&self, row: usize, w: usize) -> u64 {
        debug_assert!(row < self.rows && w < self.words_per_row);
        let i = self.widx(row, w);
        (self.bits[i] & !self.fault_mask[i]) | (self.fault_val[i] & self.fault_mask[i])
    }

    /// Like [`PackedArray::word`] but returns `0` for word indices outside
    /// the row — the funnel shift reads one word past each span edge.
    #[inline]
    pub(crate) fn word_or_zero(&self, row: usize, w: isize) -> u64 {
        if w < 0 || w as usize >= self.words_per_row {
            0
        } else {
            self.word(row, w as usize)
        }
    }

    /// Stores `value` into the `mask` bits of word `w` of `row`, charging
    /// one wear count to every masked cell.
    ///
    /// Crate-internal hot path with the same pre-validated contract as
    /// [`PackedArray::word`]; external users store through the checked
    /// `set` / [`PackedArray::store_word_bits`] API.
    #[inline]
    pub(crate) fn store_masked(&mut self, row: usize, w: usize, value: u64, mask: u64) {
        debug_assert!(row < self.rows && w < self.words_per_row);
        let i = self.widx(row, w);
        self.bits[i] = (self.bits[i] & !mask) | (value & mask);
        self.total_writes += u64::from(mask.count_ones());
        if mask == u64::MAX {
            // A full word's 64 wear counts collapse into one per-word bump;
            // cell_writes() adds it back per cell. This keeps the hot path
            // (full-width NOR stores) O(1) instead of O(64).
            self.word_wear[i] += 1;
        } else {
            let base = row * self.cols + w * WORD_BITS;
            let mut m = mask;
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                self.wear[base + b] += 1;
                m &= m - 1;
            }
        }
    }

    /// Sets every cell of a (pre-validated) column span of `row` to ON.
    pub(crate) fn fill_on_span(&mut self, row: usize, cols: &Range<usize>) {
        for (w, mask) in word_span(cols) {
            self.store_masked(row, w, u64::MAX, mask);
        }
    }

    /// Validates a `width`-bit word access at `(row, col0..)`.
    fn check_word_span(&self, row: usize, col0: usize, width: usize) -> Result<()> {
        if width > WORD_BITS {
            return Err(CrossbarError::InvalidConfig(format!(
                "word access width {width} exceeds {WORD_BITS} bits"
            )));
        }
        if row >= self.rows {
            return Err(CrossbarError::OutOfBounds {
                what: "row",
                index: row,
                limit: self.rows,
            });
        }
        if col0 + width > self.cols {
            return Err(CrossbarError::OutOfBounds {
                what: "col",
                index: col0.max(self.cols),
                limit: self.cols,
            });
        }
        Ok(())
    }

    /// Stores the low `width ≤ 64` bits of `value` (LSB first) starting at
    /// `col0` of `row`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] for `width > 64` and
    /// [`CrossbarError::OutOfBounds`] if the span falls outside the array;
    /// a rejected store writes nothing.
    pub fn store_word_bits(
        &mut self,
        row: usize,
        col0: usize,
        width: usize,
        value: u64,
    ) -> Result<()> {
        self.check_word_span(row, col0, width)?;
        let span = col0..col0 + width;
        for (w, mask) in word_span(&span) {
            let base = w * WORD_BITS;
            // Align `value` (whose bit 0 is column col0) to this word.
            let aligned = if col0 >= base {
                value << (col0 - base)
            } else {
                value >> (base - col0)
            };
            self.store_masked(row, w, aligned, mask);
        }
        Ok(())
    }

    /// Reads `width ≤ 64` bits starting at `col0` of `row`, LSB first.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] for `width > 64` and
    /// [`CrossbarError::OutOfBounds`] if the span falls outside the array.
    pub fn read_word_bits(&self, row: usize, col0: usize, width: usize) -> Result<u64> {
        self.check_word_span(row, col0, width)?;
        let mut out = 0u64;
        let span = col0..col0 + width;
        for (w, mask) in word_span(&span) {
            let base = w * WORD_BITS;
            let v = self.word(row, w) & mask;
            if col0 >= base {
                out |= v >> (col0 - base);
            } else {
                out |= v << (base - col0);
            }
        }
        Ok(out)
    }

    /// Reads the logical value of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn get(&self, row: usize, col: usize) -> Result<bool> {
        self.check(row, col)?;
        Ok((self.word(row, col / WORD_BITS) >> (col % WORD_BITS)) & 1 == 1)
    }

    /// Writes the logical value of a cell (counting the write).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn set(&mut self, row: usize, col: usize, bit: bool) -> Result<()> {
        self.check(row, col)?;
        let i = self.widx(row, col / WORD_BITS);
        let m = 1u64 << (col % WORD_BITS);
        if bit {
            self.bits[i] |= m;
        } else {
            self.bits[i] &= !m;
        }
        self.wear[row * self.cols + col] += 1;
        self.total_writes += 1;
        Ok(())
    }

    /// Total writes absorbed by a cell (endurance proxy).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn cell_writes(&self, row: usize, col: usize) -> Result<u64> {
        self.check(row, col)?;
        Ok(self.wear[row * self.cols + col] + self.word_wear[self.widx(row, col / WORD_BITS)])
    }

    /// The most-written cell's write count — the array's wear hotspot.
    pub fn max_cell_writes(&self) -> u64 {
        let mut max = 0u64;
        for row in 0..self.rows {
            for col in 0..self.cols {
                let w = self.wear[row * self.cols + col]
                    + self.word_wear[self.widx(row, col / WORD_BITS)];
                max = max.max(w);
            }
        }
        max
    }

    /// The `k` most-written cells as `(row, col, writes)`, hottest first
    /// (ties broken by coordinate, lowest first). Cells that never absorbed
    /// a write are omitted, so the result may be shorter than `k`.
    pub fn hotspots(&self, k: usize) -> Vec<(usize, usize, u64)> {
        let mut cells: Vec<(usize, usize, u64)> = Vec::new();
        for row in 0..self.rows {
            for col in 0..self.cols {
                let w = self.wear[row * self.cols + col]
                    + self.word_wear[self.widx(row, col / WORD_BITS)];
                if w > 0 {
                    cells.push((row, col, w));
                }
            }
        }
        cells.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        cells.truncate(k);
        cells
    }

    /// Total writes absorbed by the whole array (running `count_ones()`
    /// sum, O(1)).
    pub fn total_cell_writes(&self) -> u64 {
        self.total_writes
    }

    /// Number of cells in the array.
    pub fn cell_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Injects (or clears, with `None`) a stuck-at fault on a cell.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn inject_fault(
        &mut self,
        row: usize,
        col: usize,
        fault: Option<crate::Fault>,
    ) -> Result<()> {
        self.check(row, col)?;
        let i = self.widx(row, col / WORD_BITS);
        let m = 1u64 << (col % WORD_BITS);
        match fault {
            None => {
                self.fault_mask[i] &= !m;
                self.fault_val[i] &= !m;
            }
            Some(crate::Fault::StuckAtZero) => {
                self.fault_mask[i] |= m;
                self.fault_val[i] &= !m;
            }
            Some(crate::Fault::StuckAtOne) => {
                self.fault_mask[i] |= m;
                self.fault_val[i] |= m;
            }
        }
        Ok(())
    }

    /// Number of cells with an injected fault.
    pub fn fault_count(&self) -> usize {
        self.fault_mask
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Lowest column in `span` of `row` that reads OFF, if any — the
    /// word-parallel strict-init scan (`(word & mask) != mask` → first
    /// zero bit via `trailing_zeros`).
    pub(crate) fn first_off(&self, row: usize, span: &Range<usize>) -> Option<usize> {
        for (w, mask) in word_span(span) {
            let off = !self.word(row, w) & mask;
            if off != 0 {
                return Some(w * WORD_BITS + off.trailing_zeros() as usize);
            }
        }
        None
    }

    /// OR-fold of `rows` at word index `w` (0 outside the row) — the
    /// multi-input half of a word-parallel NOR.
    #[inline]
    pub(crate) fn fold_or(&self, rows: &[usize], w: isize) -> u64 {
        let mut acc = 0u64;
        for &r in rows {
            acc |= self.word_or_zero(r, w);
        }
        acc
    }
}

/// Word-parallel column-parallel MAGIC NOR with a cross-word funnel shift:
/// for every column `c` of `in_span`, `out[c + shift] = NOR(inputs[c]…)`.
///
/// `inp` and `out` may be the same array only when `shift == 0` (the
/// same-block case); callers pass pre-validated coordinates. The shift is
/// decomposed as `shift = 64·k + r` (Euclidean), and each output word is
/// assembled from the two straddling input-fold words —
/// `(fold[w−k] << r) | (fold[w−k−1] >> (64−r))` — exactly the barrel
/// shifter's funnel datapath.
pub(crate) fn nor_span_cross(
    inp: &PackedArray,
    in_rows: &[usize],
    out: &mut PackedArray,
    out_row: usize,
    in_span: &Range<usize>,
    shift: isize,
) {
    let k = shift.div_euclid(WORD_BITS as isize);
    let r = shift.rem_euclid(WORD_BITS as isize) as u32;
    let out_span =
        (in_span.start as isize + shift) as usize..(in_span.end as isize + shift) as usize;
    for (w, mask) in word_span(&out_span) {
        let hi = inp.fold_or(in_rows, w as isize - k);
        // The funnel contributes (up to) two OR-operands per output word;
        // the gate truth function itself lives in `semantics`.
        let value = if r == 0 {
            crate::semantics::nor_words([hi])
        } else {
            let lo = inp.fold_or(in_rows, w as isize - k - 1);
            crate::semantics::nor_words([hi << r, lo >> (WORD_BITS as u32 - r)])
        };
        out.store_masked(out_row, w, value, mask);
    }
}

/// Same-block word-parallel NOR (`shift == 0`). Reading each word's inputs
/// before storing that word preserves the scalar oracle's semantics when
/// an input row aliases the output row: every column reads its own
/// pre-write value.
pub(crate) fn nor_span_same(
    arr: &mut PackedArray,
    in_rows: &[usize],
    out_row: usize,
    span: &Range<usize>,
) {
    for (w, mask) in word_span(span) {
        let value =
            crate::semantics::nor_words(in_rows.iter().map(|&r| arr.word_or_zero(r, w as isize)));
        arr.store_masked(out_row, w, value, mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fault;

    #[test]
    fn word_span_masks_edges() {
        let spans: Vec<(usize, u64)> = word_span(&(3..7)).collect();
        assert_eq!(spans, vec![(0, 0b0111_1000)]);
        let spans: Vec<(usize, u64)> = word_span(&(60..70)).collect();
        assert_eq!(spans, vec![(0, 0xF000_0000_0000_0000), (1, 0b11_1111)]);
        let spans: Vec<(usize, u64)> = word_span(&(64..128)).collect();
        assert_eq!(spans, vec![(1, u64::MAX)]);
        assert_eq!(word_span(&(5..5)).count(), 0);
    }

    #[test]
    fn new_array_is_all_zero() {
        let a = PackedArray::new(3, 70).unwrap();
        for r in 0..3 {
            for c in 0..70 {
                assert!(!a.get(r, c).unwrap());
            }
        }
        assert_eq!(a.words_per_row(), 2);
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(PackedArray::new(0, 5).is_err());
        assert!(PackedArray::new(5, 0).is_err());
    }

    #[test]
    fn set_get_round_trip_across_word_boundary() {
        let mut a = PackedArray::new(2, 130).unwrap();
        for col in [0, 63, 64, 65, 127, 128, 129] {
            a.set(1, col, true).unwrap();
            assert!(a.get(1, col).unwrap(), "col {col}");
            a.set(1, col, false).unwrap();
            assert!(!a.get(1, col).unwrap(), "col {col}");
        }
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut a = PackedArray::new(2, 2).unwrap();
        assert!(matches!(
            a.get(2, 0),
            Err(CrossbarError::OutOfBounds { what: "row", .. })
        ));
        assert!(matches!(
            a.set(0, 7, true),
            Err(CrossbarError::OutOfBounds { what: "col", .. })
        ));
    }

    #[test]
    fn store_word_bits_round_trips_unaligned() {
        let mut a = PackedArray::new(1, 200).unwrap();
        let v = 0xDEAD_BEEF_CAFE_F00Du64;
        a.store_word_bits(0, 61, 64, v).unwrap();
        assert_eq!(a.read_word_bits(0, 61, 64).unwrap(), v);
        // Neighbouring cells untouched.
        assert!(!a.get(0, 60).unwrap());
        assert!(!a.get(0, 125).unwrap());
    }

    #[test]
    fn word_access_bounds_are_structured_errors() {
        // Regression: these used to be debug assertions only, so release
        // builds of out-of-contract calls fell through to slice panics (or
        // silent wraps). They now return structured errors and leave the
        // array untouched.
        let mut a = PackedArray::new(2, 100).unwrap();
        assert!(matches!(
            a.store_word_bits(0, 0, 65, 0),
            Err(CrossbarError::InvalidConfig(_))
        ));
        assert!(matches!(
            a.store_word_bits(2, 0, 4, 0),
            Err(CrossbarError::OutOfBounds { what: "row", .. })
        ));
        assert!(matches!(
            a.store_word_bits(0, 98, 4, 0xF),
            Err(CrossbarError::OutOfBounds { what: "col", .. })
        ));
        assert!(matches!(
            a.read_word_bits(0, 0, 65),
            Err(CrossbarError::InvalidConfig(_))
        ));
        assert!(matches!(
            a.read_word_bits(1, 97, 4),
            Err(CrossbarError::OutOfBounds { what: "col", .. })
        ));
        // The rejected store wrote nothing (no wear, no bits).
        assert_eq!(a.total_cell_writes(), 0);
        assert_eq!(a.read_word_bits(0, 90, 10).unwrap(), 0);
    }

    #[test]
    fn wear_counts_every_masked_cell() {
        let mut a = PackedArray::new(1, 96).unwrap();
        a.fill_on_span(0, &(10..74));
        for c in 10..74 {
            assert_eq!(a.cell_writes(0, c).unwrap(), 1, "col {c}");
        }
        assert_eq!(a.cell_writes(0, 9).unwrap(), 0);
        assert_eq!(a.cell_writes(0, 74).unwrap(), 0);
        assert_eq!(a.total_cell_writes(), 64);
        assert_eq!(a.max_cell_writes(), 1);
    }

    #[test]
    fn faults_overlay_reads_but_not_state() {
        let mut a = PackedArray::new(1, 64).unwrap();
        a.set(0, 5, true).unwrap();
        a.inject_fault(0, 5, Some(Fault::StuckAtZero)).unwrap();
        assert!(!a.get(0, 5).unwrap());
        a.set(0, 5, true).unwrap(); // wears, keeps reading stuck value
        assert!(!a.get(0, 5).unwrap());
        assert_eq!(a.cell_writes(0, 5).unwrap(), 2);
        a.inject_fault(0, 5, None).unwrap();
        assert!(a.get(0, 5).unwrap(), "underlying state survived the fault");
        assert_eq!(a.fault_count(), 0);
        a.inject_fault(0, 6, Some(Fault::StuckAtOne)).unwrap();
        assert!(a.get(0, 6).unwrap());
        assert_eq!(a.fault_count(), 1);
    }

    #[test]
    fn first_off_finds_lowest_column() {
        let mut a = PackedArray::new(1, 140).unwrap();
        a.fill_on_span(0, &(0..140));
        assert_eq!(a.first_off(0, &(0..140)), None);
        a.set(0, 70, false).unwrap();
        a.set(0, 130, false).unwrap();
        assert_eq!(a.first_off(0, &(0..140)), Some(70));
        assert_eq!(a.first_off(0, &(71..140)), Some(130));
        assert_eq!(a.first_off(0, &(0..70)), None);
    }

    #[test]
    fn funnel_shift_matches_per_bit_copy() {
        // NOT with shift across word boundaries in both directions.
        for shift in [-70isize, -64, -63, -1, 0, 1, 63, 64, 70] {
            let mut inp = PackedArray::new(1, 256).unwrap();
            let mut out = PackedArray::new(1, 256).unwrap();
            let span = 80..150usize;
            for c in span.clone() {
                inp.set(0, c, (c * 7 + 3) % 3 == 0).unwrap();
            }
            nor_span_cross(&inp, &[0], &mut out, 0, &span, shift);
            for c in span.clone() {
                let oc = (c as isize + shift) as usize;
                assert_eq!(
                    out.get(0, oc).unwrap(),
                    !inp.get(0, c).unwrap(),
                    "shift {shift} col {c}"
                );
            }
        }
    }

    #[test]
    fn same_row_aliasing_reads_pre_write_values() {
        let mut a = PackedArray::new(2, 64).unwrap();
        for c in 0..64 {
            a.set(0, c, c % 2 == 0).unwrap();
        }
        let before: Vec<bool> = (0..64).map(|c| a.get(0, c).unwrap()).collect();
        nor_span_same(&mut a, &[0], 0, &(0..64));
        for (c, &b) in before.iter().enumerate() {
            assert_eq!(a.get(0, c).unwrap(), !b, "col {c}");
        }
    }
}
