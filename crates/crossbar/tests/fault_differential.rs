//! Fault-overlay differential suite: Packed vs Scalar under identical
//! injected fault sets.
//!
//! The overlay bitplanes (`fault_mask`/`fault_val` on the packed fabric,
//! `Option<Fault>` per scalar cell) must perturb *reads* — and therefore
//! every NOR, strict-init scan and sense-amplifier read built on them —
//! identically on both backends. Seeded stuck-at fault sets at several
//! densities are injected into both crossbars, random compute/read
//! sequences are replayed on each, and every observable (per-op results,
//! error payloads, cell state, stats, wear) must agree bit for bit.

use apim_crossbar::{
    Backend, BlockedCrossbar, CrossbarConfig, CrossbarError, Fault, Result, RowRef,
};
use proptest::prelude::*;

const BLOCKS: usize = 3;
const ROWS: usize = 10;
/// Two words per row with a ragged top word, so faults land on edge-masked
/// and cross-word paths too.
const COLS: usize = 100;

fn pair() -> (BlockedCrossbar, BlockedCrossbar) {
    let cfg = |backend| CrossbarConfig {
        blocks: BLOCKS,
        rows: ROWS,
        cols: COLS,
        strict_init: false,
        backend,
        ..CrossbarConfig::default()
    };
    (
        BlockedCrossbar::new(cfg(Backend::Packed)).unwrap(),
        BlockedCrossbar::new(cfg(Backend::Scalar)).unwrap(),
    )
}

/// Deterministic SplitMix64 stream shared by both replays.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Injects the same seeded stuck-at fault set into both crossbars; roughly
/// `density` of all cells are faulted, polarity split evenly. Returns the
/// number of faulted cells.
fn inject_same_faults(
    a: &mut BlockedCrossbar,
    b: &mut BlockedCrossbar,
    seed: u64,
    density: f64,
) -> usize {
    let mut g = Gen(seed);
    let threshold = (density.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
    let mut injected = 0;
    for block in 0..BLOCKS {
        for row in 0..ROWS {
            for col in 0..COLS {
                if g.next() >= threshold {
                    continue;
                }
                let fault = if g.bool() {
                    Fault::StuckAtOne
                } else {
                    Fault::StuckAtZero
                };
                let blk = a.block(block).unwrap();
                a.inject_fault(blk, row, col, Some(fault)).unwrap();
                b.inject_fault(blk, row, col, Some(fault)).unwrap();
                injected += 1;
            }
        }
    }
    injected
}

/// One random observable-producing step replayed on both crossbars; the
/// results (including error payloads) must match exactly. Both replays
/// drive their own generator from the same seed, so as long as the
/// backends behave identically the draw streams stay in lockstep (and if
/// they ever diverge, the per-step assertion fires).
fn step(x: &mut BlockedCrossbar, g: &mut Gen) -> std::result::Result<u64, CrossbarError> {
    let blk = x.block(g.below(BLOCKS))?;
    match g.below(6) {
        0 => {
            // Store then read back through the overlay.
            let (row, col0) = (g.below(ROWS), g.below(COLS - 64));
            let v = g.next();
            x.preload_u64(blk, row, col0, 64, v)?;
            x.peek_u64(blk, row, col0, 64)
        }
        1 => {
            // Single-bit write + sense-amplifier read.
            let (row, col) = (g.below(ROWS), g.below(COLS));
            let bit = g.bool();
            x.preload_bit(blk, row, col, bit)?;
            Ok(u64::from(x.read_bit(blk, row, col)?))
        }
        2 => {
            // Column-parallel NOR over possibly-faulty inputs.
            let rows: Vec<usize> = (0..2).map(|_| g.below(ROWS - 1)).collect();
            let out = ROWS - 1;
            let lo = g.below(COLS - 70);
            let cols = lo..lo + 64 + g.below(6);
            x.init_rows(blk, &[out], cols.clone())?;
            let inputs: Vec<RowRef> = rows.iter().map(|&r| RowRef::new(blk, r)).collect();
            x.nor_rows_shifted(&inputs, RowRef::new(blk, out), cols.clone(), 0)?;
            x.peek_u64(blk, out, cols.start, 64)
        }
        3 => {
            // Majority read across three possibly-faulty cells.
            let cells = [
                (g.below(ROWS), g.below(COLS)),
                (g.below(ROWS), g.below(COLS)),
                (g.below(ROWS), g.below(COLS)),
            ];
            Ok(u64::from(x.maj_read(blk, cells)?))
        }
        4 => {
            // Single-cell NOR.
            let inputs = vec![(g.below(ROWS - 1), g.below(COLS)), (g.below(ROWS - 1), 0)];
            let out = (ROWS - 1, g.below(COLS));
            x.init_cells(blk, &[out])?;
            x.nor_cells(blk, &inputs, out)?;
            Ok(u64::from(x.peek_bit(blk, out.0, out.1)?))
        }
        _ => {
            // Bulk word read over the ragged top word.
            let row = g.below(ROWS);
            x.peek_u64(blk, row, COLS - 36, 36)
        }
    }
}

fn run_differential(seed: u64, density: f64, steps: usize) {
    let (mut packed, mut scalar) = pair();
    let n = inject_same_faults(&mut packed, &mut scalar, seed, density);
    assert_eq!(packed.fault_count(), n);
    assert_eq!(scalar.fault_count(), n);

    let mut gp = Gen(seed ^ 0xD1F);
    let mut gs = Gen(seed ^ 0xD1F);
    for i in 0..steps {
        let rp = step(&mut packed, &mut gp);
        let rs = step(&mut scalar, &mut gs);
        assert_eq!(rp, rs, "step {i} diverged (seed {seed}, density {density})");
    }

    // Terminal state, stats and wear must also be identical.
    for block in 0..BLOCKS {
        let blk = packed.block(block).unwrap();
        for row in 0..ROWS {
            for col in 0..COLS {
                assert_eq!(
                    packed.peek_bit(blk, row, col).unwrap(),
                    scalar.peek_bit(blk, row, col).unwrap(),
                    "cell ({block},{row},{col}) diverged"
                );
                assert_eq!(
                    packed.cell_writes(blk, row, col).unwrap(),
                    scalar.cell_writes(blk, row, col).unwrap(),
                    "wear ({block},{row},{col}) diverged"
                );
            }
        }
    }
    assert_eq!(packed.stats(), scalar.stats());
    assert_eq!(packed.hotspots(16), scalar.hotspots(16));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn backends_agree_under_sparse_faults(seed in any::<u64>()) {
        run_differential(seed, 0.01, 60);
    }

    #[test]
    fn backends_agree_under_dense_faults(seed in any::<u64>()) {
        run_differential(seed, 0.2, 60);
    }

    #[test]
    fn backends_agree_with_no_faults(seed in any::<u64>()) {
        run_differential(seed, 0.0, 40);
    }
}

#[test]
fn stuck_at_one_perturbs_reads_on_both_backends() -> Result<()> {
    let (mut packed, mut scalar) = pair();
    for x in [&mut packed, &mut scalar] {
        let blk = x.block(0)?;
        x.preload_bit(blk, 0, 0, false)?;
        x.inject_fault(blk, 0, 0, Some(Fault::StuckAtOne))?;
        assert!(x.peek_bit(blk, 0, 0)?, "stuck-at-1 must win over stored 0");
        assert!(x.read_bit(blk, 0, 0)?);
        // Writes land in the underlying store but reads stay pinned.
        x.preload_bit(blk, 0, 0, false)?;
        assert!(x.peek_bit(blk, 0, 0)?);
        // Clearing the fault reveals the last stored value again.
        x.inject_fault(blk, 0, 0, None)?;
        assert!(!x.peek_bit(blk, 0, 0)?);
    }
    Ok(())
}

#[test]
fn stuck_at_zero_flips_nor_results_on_both_backends() -> Result<()> {
    let (mut packed, mut scalar) = pair();
    for x in [&mut packed, &mut scalar] {
        let blk = x.block(0)?;
        // NOR(1, 0) = 0 normally; pin the 1-input to zero and it becomes 1.
        x.preload_bit(blk, 0, 0, true)?;
        x.preload_bit(blk, 1, 0, false)?;
        x.inject_fault(blk, 0, 0, Some(Fault::StuckAtZero))?;
        x.init_cells(blk, &[(2, 0)])?;
        x.nor_cells(blk, &[(0, 0), (1, 0)], (2, 0))?;
        assert!(x.peek_bit(blk, 2, 0)?, "faulted input must flip the NOR");
    }
    assert_eq!(packed.fault_count(), 1);
    assert_eq!(scalar.fault_count(), 1);
    Ok(())
}
