//! Differential suite: the bit-packed production backend against the scalar
//! reference oracle.
//!
//! Random operation sequences — preloads, inits, NORs in every flavour,
//! shifted copies, faults, reads — are applied to two crossbars that differ
//! only in [`Backend`]. Every per-op result (including error payloads), the
//! final cell state, the cumulative statistics, the per-cell wear counters
//! and the recorded traces must be identical.

use apim_crossbar::{
    Backend, BlockId, BlockedCrossbar, CrossbarConfig, CrossbarError, Fault, RowRef,
};
use proptest::prelude::*;

const BLOCKS: usize = 3;
const ROWS: usize = 10;
/// Spans two words (with a ragged top word) so edge masks, cross-word
/// funnel shifts and partial-word wear all get exercised.
const COLS: usize = 100;

fn pair(strict: bool) -> (BlockedCrossbar, BlockedCrossbar) {
    let cfg = |backend| CrossbarConfig {
        blocks: BLOCKS,
        rows: ROWS,
        cols: COLS,
        strict_init: strict,
        backend,
        ..CrossbarConfig::default()
    };
    (
        BlockedCrossbar::new(cfg(Backend::Packed)).unwrap(),
        BlockedCrossbar::new(cfg(Backend::Scalar)).unwrap(),
    )
}

/// Deterministic generator shared by both replays (SplitMix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// Mostly-valid index: occasionally past the limit to exercise the
    /// error paths (which must also match, payload for payload).
    fn index(&mut self, limit: usize) -> usize {
        self.below(limit + limit / 8 + 1)
    }
}

/// One random primitive, generated once and replayed on both backends.
#[derive(Debug, Clone)]
enum Op {
    PreloadBit(usize, usize, usize, bool),
    PreloadWord(usize, usize, usize, Vec<bool>),
    PreloadU64(usize, usize, usize, usize, u64),
    PreloadZeros(usize, usize, usize, usize),
    InitRows(usize, Vec<usize>, usize, usize),
    InitCells(usize, Vec<(usize, usize)>),
    InitCols(usize, Vec<usize>, usize, usize),
    /// `(in_block, in_rows, out_block, out_row, col_lo, col_hi, shift,
    /// init_first)` — when `init_first`, the shifted output span is
    /// initialized beforehand so strict mode lets the NOR through.
    NorRows(usize, Vec<usize>, usize, usize, usize, usize, isize, bool),
    NorCols(usize, Vec<usize>, usize, usize, usize, bool),
    NorCells(usize, Vec<(usize, usize)>, (usize, usize), bool),
    CopyRow(usize, usize, usize, usize, usize, usize, usize, isize),
    InjectFault(usize, usize, usize, Option<Fault>),
    ReadBit(usize, usize, usize),
    MajRead(usize, [(usize, usize); 3]),
    WriteBackBit(usize, usize, usize, bool),
}

fn random_op(g: &mut Gen) -> Op {
    let blk = |g: &mut Gen| g.below(BLOCKS);
    match g.below(15) {
        0 => Op::PreloadBit(blk(g), g.index(ROWS), g.index(COLS), g.bool()),
        1 => {
            let len = g.below(24);
            let bits = (0..len).map(|_| g.bool()).collect();
            Op::PreloadWord(blk(g), g.index(ROWS), g.index(COLS), bits)
        }
        2 => Op::PreloadU64(blk(g), g.index(ROWS), g.index(COLS), g.below(66), g.next()),
        3 => Op::PreloadZeros(blk(g), g.index(ROWS), g.index(COLS), g.below(80)),
        4 => {
            let rows = (0..1 + g.below(3)).map(|_| g.index(ROWS)).collect();
            let lo = g.index(COLS);
            Op::InitRows(blk(g), rows, lo, lo + g.below(80))
        }
        5 => {
            let cells = (0..g.below(6))
                .map(|_| (g.index(ROWS), g.index(COLS)))
                .collect();
            Op::InitCells(blk(g), cells)
        }
        6 => {
            let cols = (0..1 + g.below(3)).map(|_| g.index(COLS)).collect();
            let lo = g.index(ROWS);
            Op::InitCols(blk(g), cols, lo, lo + 1 + g.below(4))
        }
        7 | 8 => {
            let in_block = blk(g);
            let cross = g.bool();
            let out_block = if cross {
                (in_block + 1) % BLOCKS
            } else {
                in_block
            };
            let shift = if cross { g.below(141) as isize - 70 } else { 0 };
            let in_rows = (0..1 + g.below(3)).map(|_| g.index(ROWS)).collect();
            let lo = g.index(COLS);
            Op::NorRows(
                in_block,
                in_rows,
                out_block,
                g.index(ROWS),
                lo,
                lo + 1 + g.below(80),
                shift,
                g.bool(),
            )
        }
        9 => {
            let cols = (0..1 + g.below(3)).map(|_| g.index(COLS)).collect();
            let lo = g.index(ROWS);
            Op::NorCols(
                blk(g),
                cols,
                g.index(COLS),
                lo,
                lo + 1 + g.below(5),
                g.bool(),
            )
        }
        10 => {
            let inputs = (0..1 + g.below(3))
                .map(|_| (g.index(ROWS), g.index(COLS)))
                .collect();
            Op::NorCells(blk(g), inputs, (g.index(ROWS), g.index(COLS)), g.bool())
        }
        11 => {
            let lo = g.index(COLS);
            Op::CopyRow(
                blk(g),
                g.index(ROWS),
                g.index(ROWS),
                blk(g),
                g.index(ROWS),
                lo,
                lo + 1 + g.below(70),
                g.below(141) as isize - 70,
            )
        }
        12 => {
            let fault = match g.below(3) {
                0 => None,
                1 => Some(Fault::StuckAtZero),
                _ => Some(Fault::StuckAtOne),
            };
            Op::InjectFault(blk(g), g.index(ROWS), g.index(COLS), fault)
        }
        13 => Op::ReadBit(blk(g), g.index(ROWS), g.index(COLS)),
        _ => {
            if g.bool() {
                let cell = |g: &mut Gen| (g.index(ROWS), g.index(COLS));
                Op::MajRead(blk(g), [cell(g), cell(g), cell(g)])
            } else {
                Op::WriteBackBit(blk(g), g.index(ROWS), g.index(COLS), g.bool())
            }
        }
    }
}

/// Applies one op, folding every sub-result into a comparable value.
fn apply(x: &mut BlockedCrossbar, op: &Op) -> Vec<Result<u64, CrossbarError>> {
    let ids: Vec<BlockId> = (0..x.block_count()).map(|i| x.block(i).unwrap()).collect();
    let b = |i: usize| ids[i];
    match op {
        Op::PreloadBit(blk, row, col, bit) => {
            vec![x.preload_bit(b(*blk), *row, *col, *bit).map(|()| 0)]
        }
        Op::PreloadWord(blk, row, col0, bits) => {
            vec![x.preload_word(b(*blk), *row, *col0, bits).map(|()| 0)]
        }
        Op::PreloadU64(blk, row, col0, width, value) => {
            vec![x
                .preload_u64(b(*blk), *row, *col0, *width, *value)
                .map(|()| 0)]
        }
        Op::PreloadZeros(blk, row, col0, len) => {
            vec![x.preload_zeros(b(*blk), *row, *col0, *len).map(|()| 0)]
        }
        Op::InitRows(blk, rows, lo, hi) => {
            vec![x.init_rows(b(*blk), rows, *lo..*hi).map(|()| 0)]
        }
        Op::InitCells(blk, cells) => vec![x.init_cells(b(*blk), cells).map(|()| 0)],
        Op::InitCols(blk, cols, lo, hi) => {
            vec![x.init_cols(b(*blk), cols, *lo..*hi).map(|()| 0)]
        }
        Op::NorRows(in_blk, in_rows, out_blk, out_row, lo, hi, shift, init_first) => {
            let mut results = Vec::new();
            if *init_first {
                let start = *lo as isize + shift;
                let end = *hi as isize + shift;
                if start >= 0 && end as usize <= COLS && start < end {
                    results.push(
                        x.init_rows(b(*out_blk), &[*out_row], start as usize..end as usize)
                            .map(|()| 0),
                    );
                }
            }
            let inputs: Vec<RowRef> = in_rows
                .iter()
                .map(|&r| RowRef::new(b(*in_blk), r))
                .collect();
            results.push(
                x.nor_rows_shifted(
                    &inputs,
                    RowRef::new(b(*out_blk), *out_row),
                    *lo..*hi,
                    *shift,
                )
                .map(|()| 0),
            );
            results
        }
        Op::NorCols(blk, cols, out_col, lo, hi, init_first) => {
            let mut results = Vec::new();
            if *init_first && *out_col < COLS && *hi <= ROWS && lo < hi {
                results.push(x.init_cols(b(*blk), &[*out_col], *lo..*hi).map(|()| 0));
            }
            results.push(x.nor_cols(b(*blk), cols, *out_col, *lo..*hi).map(|()| 0));
            results
        }
        Op::NorCells(blk, inputs, out, init_first) => {
            let mut results = Vec::new();
            if *init_first && out.0 < ROWS && out.1 < COLS {
                results.push(x.init_cells(b(*blk), &[*out]).map(|()| 0));
            }
            results.push(x.nor_cells(b(*blk), inputs, *out).map(|()| 0));
            results
        }
        Op::CopyRow(src_blk, src_row, scratch_row, dst_blk, dst_row, lo, hi, shift) => {
            vec![x
                .copy_row_shifted(
                    RowRef::new(b(*src_blk), *src_row),
                    RowRef::new(b(*src_blk), *scratch_row),
                    RowRef::new(b(*dst_blk), *dst_row),
                    *lo..*hi,
                    *shift,
                )
                .map(|()| 0)]
        }
        Op::InjectFault(blk, row, col, fault) => {
            vec![x.inject_fault(b(*blk), *row, *col, *fault).map(|()| 0)]
        }
        Op::ReadBit(blk, row, col) => vec![x.read_bit(b(*blk), *row, *col).map(u64::from)],
        Op::MajRead(blk, cells) => vec![x.maj_read(b(*blk), *cells).map(u64::from)],
        Op::WriteBackBit(blk, row, col, bit) => {
            vec![x.write_back_bit(b(*blk), *row, *col, *bit).map(|()| 0)]
        }
    }
}

/// Full observable state: every cell bit and every per-cell wear counter.
fn observe(x: &BlockedCrossbar) -> (Vec<bool>, Vec<u64>) {
    let mut bits = Vec::new();
    let mut wear = Vec::new();
    for blk in 0..x.block_count() {
        let b = x.block(blk).unwrap();
        for row in 0..x.rows() {
            for col in 0..x.cols() {
                bits.push(x.peek_bit(b, row, col).unwrap());
                wear.push(x.cell_writes(b, row, col).unwrap());
            }
        }
    }
    (bits, wear)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_op_streams_are_bit_identical(seed: u64, strict: bool, ops in 1usize..120) {
        let (mut packed, mut scalar) = pair(strict);
        packed.start_recording();
        scalar.start_recording();
        let mut gen_p = Gen(seed);
        let mut gen_s = Gen(seed);
        for i in 0..ops {
            let op_p = random_op(&mut gen_p);
            let op_s = random_op(&mut gen_s);
            let rp = apply(&mut packed, &op_p);
            let rs = apply(&mut scalar, &op_s);
            prop_assert_eq!(&rp, &rs, "op {} diverged: {:?}", i, op_p);
        }
        prop_assert_eq!(packed.stats(), scalar.stats(), "stats diverged");
        let (bits_p, wear_p) = observe(&packed);
        let (bits_s, wear_s) = observe(&scalar);
        prop_assert_eq!(bits_p, bits_s, "cell state diverged");
        prop_assert_eq!(wear_p, wear_s, "wear counters diverged");
        prop_assert_eq!(packed.wear_report(), scalar.wear_report());
        prop_assert_eq!(packed.max_cell_writes(), scalar.max_cell_writes());
        prop_assert_eq!(packed.stop_recording(), scalar.stop_recording());
    }

    #[test]
    fn funnel_shift_matches_oracle_for_every_offset(seed: u64, shift in -70isize..=70) {
        let (mut packed, mut scalar) = pair(true);
        let mut g = Gen(seed);
        let lo = g.below(20);
        let hi = lo + 1 + g.below(COLS - 20);
        let start = lo as isize + shift;
        let end = hi as isize + shift;
        if start >= 0 && end as usize <= COLS {
            for x in [&mut packed, &mut scalar] {
                let b0 = x.block(0).unwrap();
                let b1 = x.block(1).unwrap();
                let mut gg = Gen(seed ^ 0xABCD);
                for col in lo..hi {
                    x.preload_bit(b0, 0, col, gg.bool()).unwrap();
                }
                x.init_rows(b1, &[0], start as usize..end as usize).unwrap();
                x.nor_rows_shifted(&[RowRef::new(b0, 0)], RowRef::new(b1, 0), lo..hi, shift)
                    .unwrap();
            }
            prop_assert_eq!(observe(&packed), observe(&scalar));
            prop_assert_eq!(packed.stats(), scalar.stats());
        }
    }
}

/// Fixed regression (satellite 1): a mid-range strict-init failure must
/// leave both backends untouched and agree on the error payload.
#[test]
fn rejected_ops_leave_both_backends_identical_and_unchanged() {
    let (mut packed, mut scalar) = pair(true);
    for x in [&mut packed, &mut scalar] {
        let b = x.block(0).unwrap();
        x.preload_u64(b, 0, 0, 64, 0xFFFF_0000_FF00_00FF).unwrap();
        x.init_rows(b, &[1], 0..40).unwrap();
    }
    let before_p = observe(&packed);
    let before_s = observe(&scalar);
    for (x, before) in [(&mut packed, &before_p), (&mut scalar, &before_s)] {
        let b = x.block(0).unwrap();
        let stats = *x.stats();
        // Strict-init fails at column 40, bounds at shifted column 100.
        let err = x
            .nor_rows_shifted(&[RowRef::new(b, 0)], RowRef::new(b, 1), 0..64, 0)
            .unwrap_err();
        assert_eq!(
            err,
            CrossbarError::UninitializedOutput {
                block: 0,
                row: 1,
                col: 40
            }
        );
        let b1 = x.block(1).unwrap();
        let err = x
            .nor_rows_shifted(&[RowRef::new(b, 0)], RowRef::new(b1, 1), 0..64, 60)
            .unwrap_err();
        assert!(matches!(err, CrossbarError::OutOfBounds { .. }), "{err:?}");
        assert_eq!(&observe(x), before, "rejected ops must not mutate");
        assert_eq!(*x.stats(), stats, "rejected ops must not charge stats");
    }
    assert_eq!(observe(&packed), observe(&scalar));
}
