//! Ignored-by-default performance gate, run in release mode by the CI
//! perf-smoke job:
//!
//! ```text
//! cargo test -p apim-crossbar --release --test perf_gate -- --ignored
//! ```
//!
//! The bit-packed backend must sustain at least 4x the scalar oracle's NOR
//! throughput at 64-column width. Guarded on core count like the serve
//! scaling gate: single-core machines skip (timing noise dominates there).

use apim_crossbar::{Backend, BlockedCrossbar, CrossbarConfig, RowRef};
use std::time::Instant;

fn nor_ops_per_sec(backend: Backend, width: usize, iters: u64) -> f64 {
    let mut x = BlockedCrossbar::new(CrossbarConfig {
        blocks: 2,
        rows: 16,
        cols: width,
        backend,
        ..CrossbarConfig::default()
    })
    .unwrap();
    let b = x.block(0).unwrap();
    for row in 0..2 {
        for col in (row..width).step_by(3) {
            x.preload_bit(b, row, col, true).unwrap();
        }
    }
    let started = Instant::now();
    for i in 0..iters {
        let out = 2 + (i % 8) as usize;
        x.init_rows(b, &[out], 0..width).unwrap();
        x.nor_rows_shifted(
            &[RowRef::new(b, 0), RowRef::new(b, 1)],
            RowRef::new(b, out),
            0..width,
            0,
        )
        .unwrap();
    }
    iters as f64 / started.elapsed().as_secs_f64()
}

#[test]
#[ignore = "perf gate: run explicitly in release mode (CI perf-smoke job)"]
fn perf_packed_nor_at_least_4x_oracle() {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 2 {
        eprintln!("skipping perf gate: only {cores} core(s) available");
        return;
    }
    // Warm up both paths, then measure; the oracle gets fewer iterations
    // (it is the slow side by design).
    nor_ops_per_sec(Backend::Packed, 64, 10_000);
    let packed = nor_ops_per_sec(Backend::Packed, 64, 200_000);
    let oracle = nor_ops_per_sec(Backend::Scalar, 64, 25_000);
    let speedup = packed / oracle;
    println!("packed {packed:.0} ops/s, oracle {oracle:.0} ops/s, speedup {speedup:.1}x");
    assert!(
        speedup >= 4.0,
        "packed NOR throughput only {speedup:.2}x the scalar oracle at width 64 (need >= 4x)"
    );
}
