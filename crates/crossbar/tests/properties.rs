//! Property-based tests of the crossbar's MAGIC primitives against plain
//! bitwise reference semantics.

use apim_crossbar::{BlockedCrossbar, CrossbarConfig, RowRef};
use proptest::prelude::*;

const W: usize = 16;

fn xbar() -> BlockedCrossbar {
    BlockedCrossbar::new(CrossbarConfig::default()).expect("default config")
}

fn load(x: &mut BlockedCrossbar, block: apim_crossbar::BlockId, row: usize, v: u16) {
    let bits: Vec<bool> = (0..W).map(|i| (v >> i) & 1 == 1).collect();
    x.preload_word(block, row, 0, &bits).unwrap();
}

fn read(x: &BlockedCrossbar, block: apim_crossbar::BlockId, row: usize) -> u16 {
    (0..W).fold(0, |acc, i| {
        acc | (u16::from(x.peek_bit(block, row, i).unwrap()) << i)
    })
}

proptest! {
    #[test]
    fn nor_matches_bitwise_reference(a: u16, b: u16) {
        let mut x = xbar();
        let blk = x.block(0).unwrap();
        load(&mut x, blk, 0, a);
        load(&mut x, blk, 1, b);
        x.init_rows(blk, &[2], 0..W).unwrap();
        x.nor_rows_shifted(&[RowRef::new(blk, 0), RowRef::new(blk, 1)], RowRef::new(blk, 2), 0..W, 0)
            .unwrap();
        prop_assert_eq!(read(&x, blk, 2), !(a | b));
    }

    #[test]
    fn three_input_nor_matches_reference(a: u16, b: u16, c: u16) {
        let mut x = xbar();
        let blk = x.block(0).unwrap();
        load(&mut x, blk, 0, a);
        load(&mut x, blk, 1, b);
        load(&mut x, blk, 2, c);
        x.init_rows(blk, &[3], 0..W).unwrap();
        x.nor_rows_shifted(
            &[RowRef::new(blk, 0), RowRef::new(blk, 1), RowRef::new(blk, 2)],
            RowRef::new(blk, 3),
            0..W,
            0,
        )
        .unwrap();
        prop_assert_eq!(read(&x, blk, 3), !(a | b | c));
    }

    #[test]
    fn double_not_is_identity(a: u16) {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        load(&mut x, b0, 0, a);
        x.init_rows(b0, &[1], 0..W).unwrap();
        x.nor_rows_shifted(&[RowRef::new(b0, 0)], RowRef::new(b0, 1), 0..W, 0).unwrap();
        x.init_rows(b1, &[0], 0..W).unwrap();
        x.nor_rows_shifted(&[RowRef::new(b0, 1)], RowRef::new(b1, 0), 0..W, 0).unwrap();
        prop_assert_eq!(read(&x, b1, 0), a);
    }

    #[test]
    fn shifted_copy_is_a_shift(a: u16, shift in 0usize..8) {
        let mut x = xbar();
        let b0 = x.block(0).unwrap();
        let b1 = x.block(1).unwrap();
        load(&mut x, b0, 0, a);
        x.copy_row_shifted(
            RowRef::new(b0, 0),
            RowRef::new(b0, 10),
            RowRef::new(b1, 0),
            0..W,
            shift as isize,
        )
        .unwrap();
        let got = (0..W).fold(0u32, |acc, i| {
            acc | (u32::from(x.peek_bit(b1, 0, i + shift).unwrap()) << i)
        });
        prop_assert_eq!(got, u32::from(a));
    }

    #[test]
    fn cycle_count_is_deterministic(ops in 1usize..20) {
        let run = |n: usize| {
            let mut x = xbar();
            let blk = x.block(0).unwrap();
            for i in 0..n {
                x.init_rows(blk, &[1 + i % 8], 0..W).unwrap();
                x.nor_rows_shifted(&[RowRef::new(blk, 0)], RowRef::new(blk, 1 + i % 8), 0..W, 0)
                    .unwrap();
            }
            x.stats().cycles.get()
        };
        prop_assert_eq!(run(ops), ops as u64);
        prop_assert_eq!(run(ops), run(ops));
    }

    #[test]
    fn maj_read_matches_majority(a: bool, b: bool, c: bool) {
        let mut x = xbar();
        let blk = x.block(0).unwrap();
        x.preload_bit(blk, 0, 0, a).unwrap();
        x.preload_bit(blk, 1, 0, b).unwrap();
        x.preload_bit(blk, 2, 0, c).unwrap();
        let got = x.maj_read(blk, [(0, 0), (1, 0), (2, 0)]).unwrap();
        prop_assert_eq!(got, (a & b) | (b & c) | (c & a));
    }

    #[test]
    fn energy_strictly_accumulates(ops in 1usize..12) {
        let mut x = xbar();
        let blk = x.block(0).unwrap();
        let mut last = 0.0;
        for i in 0..ops {
            x.init_rows(blk, &[1 + i % 8], 0..W).unwrap();
            x.nor_rows_shifted(&[RowRef::new(blk, 0)], RowRef::new(blk, 1 + i % 8), 0..W, 0)
                .unwrap();
            let now = x.stats().energy.as_joules();
            prop_assert!(now > last);
            last = now;
        }
    }

    #[test]
    fn preload_round_trips_any_word(a: u16, row in 0usize..32) {
        let mut x = xbar();
        let blk = x.block(1).unwrap();
        load(&mut x, blk, row, a);
        prop_assert_eq!(read(&x, blk, row), a);
    }
}
