//! Request, response and error vocabulary of the serving runtime.

use apim::{ApimCost, App, MulReport, PrecisionMode, RunReport};
use std::fmt;
use std::time::Duration;

/// Identifies which tenant submitted a request. Used for the striped
/// per-tenant metrics and the optional per-tenant admission quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TenantId(pub u16);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// What a request asks the device to do.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// A whole application over a resident dataset (the expensive class).
    Run {
        /// The application.
        app: App,
        /// Dataset size in bytes.
        dataset_bytes: u64,
    },
    /// One raw in-memory multiplication.
    Multiply {
        /// Multiplicand.
        a: u64,
        /// Multiplier.
        b: u64,
    },
    /// A batch of independent multiply-accumulate pairs costed as one
    /// parallel dispatch.
    Mac {
        /// The operand pairs.
        pairs: Vec<(u64, u64)>,
    },
    /// A pre-compiled expression program: compiled to a MAGIC microprogram
    /// and gate-executed by `apim-compile`. Precision comes from the
    /// program's own `mode` directives, not the request mode.
    Compile {
        /// Program text in the `apim-compile` expression language.
        source: String,
    },
    /// One pixel of a built-in image kernel (sharpen or one Sobel
    /// gradient), gate-executed through `apim-compile`. Taps are the
    /// kernel DAG's inputs in declaration order (sharpen: `c n w e s`;
    /// Sobel: `l0 r0 l1 r1 l2 r2`). Same-`(app, mode)` pixel batches are
    /// the lane-batched fast path: the pool runs a whole popped batch as
    /// one `compile_batched` microprogram pass, one pixel per bitline
    /// lane.
    Pixel {
        /// The kernel ([`App::Sharpen`] or [`App::Sobel`]).
        app: App,
        /// Tap values, in the kernel DAG's input order.
        taps: Vec<u64>,
    },
    /// A transport-cost probe: answered by the pool without touching the
    /// simulator. Soak benchmarks use it to measure the serving path
    /// itself rather than crossbar work.
    Echo {
        /// Opaque value echoed back (and folded into the digest, so a
        /// dropped or crossed reply is detectable).
        payload: u64,
    },
}

impl JobKind {
    /// The application this job runs ([`JobKind::Run`] and
    /// [`JobKind::Pixel`] — the latter so `batch_key` coalesces pixels of
    /// the same kernel into one lane-batched pass).
    pub fn app(&self) -> Option<App> {
        match self {
            JobKind::Run { app, .. } | JobKind::Pixel { app, .. } => Some(*app),
            _ => None,
        }
    }
}

/// Tap count of a [`JobKind::Pixel`]-servable kernel, `None` for apps
/// without a pixel-level compiled DAG.
pub(crate) fn pixel_arity(app: App) -> Option<usize> {
    match app {
        App::Sharpen => Some(5),
        App::Sobel => Some(6),
        _ => None,
    }
}

/// One unit of work submitted to the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Submitting tenant.
    pub tenant: TenantId,
    /// The work.
    pub kind: JobKind,
    /// Precision mode to execute under.
    pub mode: PrecisionMode,
    /// Relative deadline from submission; expired requests are answered
    /// with [`ServeError::DeadlineExceeded`] instead of executing.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request with the default tenant, exact mode and no deadline.
    pub fn new(kind: JobKind) -> Self {
        Request {
            tenant: TenantId::default(),
            kind,
            mode: PrecisionMode::Exact,
            deadline: None,
        }
    }

    /// Sets the tenant.
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets the precision mode.
    pub fn mode(mut self, mode: PrecisionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets a relative deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The batch-coalescing key: requests with the same `(app, mode)`
    /// share a batch (raw multiply/MAC jobs coalesce per mode).
    pub fn batch_key(&self) -> (Option<App>, PrecisionMode) {
        (self.kind.app(), self.mode)
    }

    /// Parses one line of a request file.
    ///
    /// Grammar (blank lines and `#` comments are skipped by callers):
    ///
    /// ```text
    /// [@<tenant>] run <app> <size-mb> [--relax M | --mask F]
    /// [@<tenant>] multiply <a> <b>    [--relax M | --mask F]
    /// [@<tenant>] mac <a1> <b1> [<a2> <b2> ...] [--relax M | --mask F]
    /// [@<tenant>] pixel <sharpen|sobel> <taps...> [--relax M | --mask F]
    /// [@<tenant>] compile <program, `;` standing in for newlines>
    /// ```
    ///
    /// A `compile` request carries a whole expression program on one line;
    /// since a request file is line-oriented, `;` separates the program's
    /// statements. The program is parsed (not compiled) at admission, so
    /// syntax errors are rejected here with their line:column position.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for anything outside the grammar.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let mut tokens: Vec<&str> = line.split_whitespace().collect();
        let mut tenant = TenantId::default();
        if let Some(first) = tokens.first() {
            if let Some(id) = first.strip_prefix('@') {
                tenant = TenantId(
                    id.parse()
                        .map_err(|_| format!("invalid tenant id `{id}`"))?,
                );
                tokens.remove(0);
            }
        }
        if tokens.first() == Some(&"compile") {
            let body = line.trim_start();
            let body = match body.strip_prefix('@') {
                Some(rest) => rest
                    .split_once(char::is_whitespace)
                    .map(|(_, b)| b.trim_start())
                    .unwrap_or(""),
                None => body,
            };
            let source = body
                .strip_prefix("compile")
                .map(|s| s.trim_start())
                .unwrap_or("");
            if source.is_empty() {
                return Err("compile needs a program".into());
            }
            let source = source.replace(';', "\n");
            apim_compile::parse_program(&source).map_err(|e| format!("invalid program: {e}"))?;
            return Ok(Request::new(JobKind::Compile { source }).tenant(tenant));
        }
        let mode = match tokens.as_slice() {
            [.., flag, value] if *flag == "--relax" => {
                let relax_bits = value
                    .parse()
                    .map_err(|_| format!("invalid relax bits `{value}`"))?;
                tokens.truncate(tokens.len() - 2);
                PrecisionMode::LastStage { relax_bits }
            }
            [.., flag, value] if *flag == "--mask" => {
                let masked_bits = value
                    .parse()
                    .map_err(|_| format!("invalid mask bits `{value}`"))?;
                tokens.truncate(tokens.len() - 2);
                PrecisionMode::FirstStage { masked_bits }
            }
            _ => PrecisionMode::Exact,
        };
        let parse_u64 = |value: &str, what: &str| -> Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("invalid {what} `{value}`"))
        };
        let kind = match tokens.as_slice() {
            ["run", app, size] => JobKind::Run {
                app: parse_app(app)?,
                dataset_bytes: parse_u64(size, "dataset size")? << 20,
            },
            ["multiply", a, b] => JobKind::Multiply {
                a: parse_u64(a, "multiplicand")?,
                b: parse_u64(b, "multiplier")?,
            },
            ["echo", payload] => JobKind::Echo {
                payload: parse_u64(payload, "echo payload")?,
            },
            ["pixel", app, taps @ ..] => {
                let app = parse_app(app)?;
                let arity = pixel_arity(app)
                    .ok_or_else(|| format!("`{}` has no pixel kernel", app.name()))?;
                if taps.len() != arity {
                    return Err(format!(
                        "pixel {} needs {arity} taps, got {}",
                        app.name(),
                        taps.len()
                    ));
                }
                let taps = taps
                    .iter()
                    .map(|t| parse_u64(t, "pixel tap"))
                    .collect::<Result<Vec<_>, _>>()?;
                JobKind::Pixel { app, taps }
            }
            ["mac", operands @ ..] if !operands.is_empty() && operands.len() % 2 == 0 => {
                let mut pairs = Vec::with_capacity(operands.len() / 2);
                for pair in operands.chunks_exact(2) {
                    pairs.push((
                        parse_u64(pair[0], "mac operand")?,
                        parse_u64(pair[1], "mac operand")?,
                    ));
                }
                JobKind::Mac { pairs }
            }
            _ => {
                return Err(format!(
                    "cannot parse request `{line}` (expected run|multiply|mac|pixel|compile|echo)"
                ))
            }
        };
        Ok(Request::new(kind).tenant(tenant).mode(mode))
    }
}

fn parse_app(name: &str) -> Result<App, String> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "dwt" => return Ok(App::DwtHaar1d),
        "quasir" => return Ok(App::QuasiRandom),
        _ => {}
    }
    App::all()
        .into_iter()
        .find(|app| app.name().eq_ignore_ascii_case(&lower))
        .ok_or_else(|| format!("unknown app `{name}`"))
}

/// The successful payload of a [`Response`].
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Result of a [`JobKind::Run`].
    Run(Box<RunReport>),
    /// Result of a [`JobKind::Multiply`].
    Multiply(MulReport),
    /// Result of a [`JobKind::Mac`]: per-pair reports plus the parallel
    /// batch cost.
    Mac {
        /// Per-pair multiply reports.
        reports: Vec<MulReport>,
        /// Cost of the whole dispatch on the configured block pairs.
        batch: ApimCost,
    },
    /// Result of a [`JobKind::Compile`]: the gate-executed program value
    /// and its verified microprogram size/cost.
    Compile {
        /// Value the microprogram left in the result row.
        value: u64,
        /// Measured crossbar cycles.
        cycles: u64,
        /// Micro-ops in the verified trace.
        micro_ops: usize,
    },
    /// Result of a [`JobKind::Pixel`]: the kernel value for this pixel
    /// plus how it was computed.
    Pixel {
        /// Value the kernel microprogram left for this pixel's lane.
        value: u64,
        /// Crossbar cycles charged to the pass that computed it (shared by
        /// every pixel of a lane-batched pass).
        cycles: u64,
        /// Lanes in the pass that answered this pixel: `1` on the serial
        /// path, the batch size on the lane-batched fast path.
        lanes: usize,
    },
    /// Result of a [`JobKind::Echo`]: the payload, unchanged.
    Echo(u64),
}

impl JobOutput {
    /// A short one-line rendering (for the CLI's one-shot serve mode).
    pub fn summary(&self) -> String {
        match self {
            JobOutput::Run(report) => report.to_string(),
            JobOutput::Multiply(r) => format!("product {}", r.product),
            JobOutput::Mac { reports, batch } => {
                format!("mac x{} in {} cycles", reports.len(), batch.cycles.get())
            }
            JobOutput::Compile {
                value,
                cycles,
                micro_ops,
            } => {
                format!("compiled {micro_ops} micro-ops, value {value} in {cycles} cycles")
            }
            JobOutput::Pixel {
                value,
                cycles,
                lanes,
            } => {
                format!("pixel {value} in {cycles} cycles (x{lanes} lanes)")
            }
            JobOutput::Echo(payload) => format!("echo {payload}"),
        }
    }
}

/// Structured failure modes of the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the request: the queue is at its
    /// configured depth.
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
    },
    /// Admission control rejected the request: the tenant already holds
    /// its full quota of queue slots.
    QuotaExceeded {
        /// The offending tenant.
        tenant: TenantId,
    },
    /// The pool is draining and no longer accepts work.
    ShuttingDown,
    /// The request's deadline expired before an attempt could finish.
    DeadlineExceeded,
    /// Execution kept failing after the configured retries.
    Failed {
        /// Rendered underlying error.
        reason: String,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// The executing worker panicked on every attempt.
    WorkerPanicked,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "overloaded: queue at configured depth {depth}")
            }
            ServeError::QuotaExceeded { tenant } => {
                write!(f, "overloaded: {tenant} exceeded its queue quota")
            }
            ServeError::ShuttingDown => write!(f, "pool is shutting down"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::Failed { reason, attempts } => {
                write!(f, "failed after {attempts} attempt(s): {reason}")
            }
            ServeError::WorkerPanicked => write!(f, "worker panicked executing the request"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The answer to one accepted request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Pool-assigned request id (submission order).
    pub id: u64,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Execution attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// End-to-end latency, submission → response.
    pub latency: Duration,
    /// The outcome.
    pub result: Result<JobOutput, ServeError>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_line_roundtrips_the_grammar() {
        let r = Request::parse_line("@3 run sobel 256 --relax 8").unwrap();
        assert_eq!(r.tenant, TenantId(3));
        assert_eq!(
            r.kind,
            JobKind::Run {
                app: App::Sobel,
                dataset_bytes: 256 << 20
            }
        );
        assert_eq!(r.mode, PrecisionMode::LastStage { relax_bits: 8 });

        let r = Request::parse_line("multiply 12 34").unwrap();
        assert_eq!(r.kind, JobKind::Multiply { a: 12, b: 34 });
        assert_eq!(r.mode, PrecisionMode::Exact);
        assert_eq!(r.tenant, TenantId(0));

        let r = Request::parse_line("@5 echo 987654321").unwrap();
        assert_eq!(r.tenant, TenantId(5));
        assert_eq!(r.kind, JobKind::Echo { payload: 987654321 });
        assert_eq!(r.mode, PrecisionMode::Exact);

        let r = Request::parse_line("@7 pixel sharpen 10 20 30 40 50 --relax 4").unwrap();
        assert_eq!(r.tenant, TenantId(7));
        assert_eq!(
            r.kind,
            JobKind::Pixel {
                app: App::Sharpen,
                taps: vec![10, 20, 30, 40, 50]
            }
        );
        assert_eq!(r.mode, PrecisionMode::LastStage { relax_bits: 4 });

        let r = Request::parse_line("pixel sobel 1 2 3 4 5 6").unwrap();
        assert_eq!(
            r.kind,
            JobKind::Pixel {
                app: App::Sobel,
                taps: vec![1, 2, 3, 4, 5, 6]
            }
        );

        let r = Request::parse_line("mac 1 2 3 4 --mask 4").unwrap();
        assert_eq!(
            r.kind,
            JobKind::Mac {
                pairs: vec![(1, 2), (3, 4)]
            }
        );
        assert_eq!(r.mode, PrecisionMode::FirstStage { masked_bits: 4 });
    }

    #[test]
    fn parse_line_accepts_all_app_aliases() {
        for name in [
            "sobel",
            "Robert",
            "FFT",
            "dwt",
            "DwtHaar1D",
            "sharpen",
            "quasir",
        ] {
            assert!(
                Request::parse_line(&format!("run {name} 64")).is_ok(),
                "{name}"
            );
        }
    }

    #[test]
    fn parse_line_accepts_compile_programs() {
        let r = Request::parse_line("@2 compile width 16; in a; out a * 3 + 1").unwrap();
        assert_eq!(r.tenant, TenantId(2));
        match &r.kind {
            JobKind::Compile { source } => {
                assert!(source.contains('\n'), "`;` becomes newline: {source}");
            }
            other => panic!("expected compile, got {other:?}"),
        }

        let r = Request::parse_line("compile width 8; out 2 * 3").unwrap();
        assert_eq!(r.tenant, TenantId(0));

        assert!(Request::parse_line("compile").is_err(), "program mandatory");
        let err = Request::parse_line("compile width 16; out 1 +").unwrap_err();
        assert!(
            err.contains("invalid program: 2:"),
            "position survives: {err}"
        );
    }

    #[test]
    fn parse_line_rejects_malformed_requests() {
        for bad in [
            "run sobel",
            "run nosuchapp 64",
            "multiply 1",
            "mac 1 2 3",
            "mac",
            "@x multiply 1 2",
            "frobnicate 1 2",
            "multiply 1 2 --frob 3",
            "pixel sharpen 1 2 3 4",
            "pixel sobel 1 2 3 4 5 6 7",
            "pixel fft 1 2 3 4 5",
            "pixel sharpen 1 2 3 4 x",
        ] {
            assert!(Request::parse_line(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn batch_key_groups_by_app_and_mode() {
        let a = Request::parse_line("run fft 64 --relax 8").unwrap();
        let b = Request::parse_line("run fft 256 --relax 8").unwrap();
        let c = Request::parse_line("run fft 64 --relax 16").unwrap();
        let d = Request::parse_line("multiply 1 2 --relax 8").unwrap();
        assert_eq!(a.batch_key(), b.batch_key(), "size does not split batches");
        assert_ne!(a.batch_key(), c.batch_key(), "mode does");
        assert_ne!(a.batch_key(), d.batch_key(), "app does");

        let p = Request::parse_line("pixel sharpen 1 2 3 4 5").unwrap();
        let q = Request::parse_line("pixel sharpen 9 8 7 6 5").unwrap();
        let s = Request::parse_line("pixel sobel 1 2 3 4 5 6").unwrap();
        assert_eq!(p.batch_key(), q.batch_key(), "taps do not split batches");
        assert_ne!(p.batch_key(), s.batch_key(), "kernel does");
    }

    #[test]
    fn errors_render_user_facing_text() {
        assert!(ServeError::Overloaded { depth: 4 }
            .to_string()
            .contains("depth 4"));
        assert!(ServeError::QuotaExceeded {
            tenant: TenantId(2)
        }
        .to_string()
        .contains("tenant2"));
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
    }
}
