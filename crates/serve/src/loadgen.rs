//! Seeded open-loop load generator.
//!
//! Generates a deterministic request mix from a seed (same seed → same
//! requests, byte for byte), submits it open-loop — i.e. as fast as the
//! admission controller allows, without waiting for responses — and then
//! reports achieved throughput, tail latency and the pool's metrics
//! snapshot. Rejections are counted, not retried: an open-loop generator
//! measures what the pool admits under pressure.

use crate::metrics::MetricsSnapshot;
use crate::pool::{Pool, PoolConfig};
use crate::request::{JobKind, JobOutput, Request, TenantId};
use apim::{ApimError, App, PrecisionMode};
use apim_logic::error_analysis::SplitMix64;
use std::fmt;
use std::time::{Duration, Instant};

/// Configuration of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Requests to offer.
    pub requests: u64,
    /// PRNG seed for the request mix.
    pub seed: u64,
    /// Pool under test.
    pub pool: PoolConfig,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 200,
            seed: 7,
            pool: PoolConfig::default(),
        }
    }
}

/// Outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests offered to the pool.
    pub offered: u64,
    /// Requests admitted.
    pub accepted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Admitted requests that completed successfully.
    pub completed: u64,
    /// Admitted requests that failed.
    pub failed: u64,
    /// Wall-clock time from first submission to last response.
    pub elapsed: Duration,
    /// Completed requests per second of wall-clock time.
    pub throughput_rps: f64,
    /// Order-independent digest of every successful result — equal runs
    /// produce equal digests, regardless of scheduling.
    pub checksum: u64,
    /// Final metrics snapshot of the pool.
    pub snapshot: MetricsSnapshot,
}

impl fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "loadgen: {} offered, {} accepted, {} rejected, {} completed, {} failed",
            self.offered, self.accepted, self.rejected, self.completed, self.failed
        )?;
        writeln!(
            f,
            "elapsed {:.3} s, throughput {:.1} req/s, checksum {:#018x}",
            self.elapsed.as_secs_f64(),
            self.throughput_rps,
            self.checksum
        )?;
        let us = |v: Option<u64>| v.map_or_else(|| "n/a".into(), |v| format!("{v} us"));
        writeln!(
            f,
            "latency: p50 {} / p95 {} / p99 {}",
            us(self.snapshot.latency_p50_us),
            us(self.snapshot.latency_p95_us),
            us(self.snapshot.latency_p99_us),
        )?;
        writeln!(
            f,
            "rejected at admission: {} of {} offered",
            self.snapshot.rejected, self.offered
        )?;
        write!(f, "{}", self.snapshot)
    }
}

/// The deterministic request mix for a seed: ~70 % application runs (the
/// expensive class the batcher coalesces), ~25 % raw multiplies, ~5 % MAC
/// batches, spread over four tenants.
pub fn request_mix(seed: u64, count: u64) -> Vec<Request> {
    let mut rng = SplitMix64::new(seed);
    let apps = App::all();
    let mut requests = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
    for _ in 0..count {
        let tenant = TenantId((rng.next_bits(2)) as u16);
        let mode = match rng.next_bits(8) % 3 {
            0 => PrecisionMode::Exact,
            1 => PrecisionMode::LastStage { relax_bits: 8 },
            _ => PrecisionMode::LastStage { relax_bits: 16 },
        };
        let kind = match rng.next_bits(8) % 20 {
            0..=13 => JobKind::Run {
                app: apps[(rng.next_bits(8) % 6) as usize],
                dataset_bytes: (32u64 << (rng.next_bits(8) % 3)) << 20,
            },
            14..=18 => JobKind::Multiply {
                a: rng.next_bits(32),
                b: rng.next_bits(32),
            },
            _ => JobKind::Mac {
                pairs: (0..16)
                    .map(|_| (rng.next_bits(32), rng.next_bits(32)))
                    .collect(),
            },
        };
        requests.push(Request::new(kind).tenant(tenant).mode(mode));
    }
    requests
}

/// Folds one successful output into a 64-bit digest of its exact result
/// bits. Two executions of the same request digest equal iff their results
/// are bit-identical, so the cluster tier uses this to assert that a
/// sharded run matches a single-pool run without shipping whole reports.
pub fn output_digest(output: &JobOutput) -> u64 {
    let fold = |x: u64| {
        // SplitMix64 finalizer as the per-item hash.
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    match output {
        JobOutput::Run(report) => {
            fold(report.comparison.speedup.to_bits()) ^ fold(report.quality.qol_percent.to_bits())
        }
        JobOutput::Multiply(r) => fold(r.product as u64) ^ fold((r.product >> 64) as u64),
        JobOutput::Mac { reports, .. } => reports
            .iter()
            .map(|r| fold(r.product as u64))
            .fold(0, |acc, h| acc ^ h),
        JobOutput::Compile { value, cycles, .. } => fold(*value) ^ fold(*cycles),
        // Value only: cycles/lanes differ between the lane-batched and
        // serial paths, and the digest must be identical across both.
        JobOutput::Pixel { value, .. } => fold(*value),
        JobOutput::Echo(payload) => fold(*payload),
    }
}

/// Runs the generator against a fresh pool built from the config.
///
/// # Errors
///
/// Propagates pool construction failures (invalid device config, zero
/// workers).
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ApimError> {
    let pool = Pool::new(config.pool.clone())?;
    let requests = request_mix(config.seed, config.requests);
    let offered = requests.len() as u64;
    let started = Instant::now();
    let mut handles = Vec::with_capacity(requests.len());
    let mut rejected = 0u64;
    for request in requests {
        match pool.submit(request) {
            Ok(handle) => handles.push(handle),
            Err(_) => rejected += 1,
        }
    }
    let accepted = handles.len() as u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut checksum = 0u64;
    for handle in handles {
        let response = handle.wait();
        match &response.result {
            Ok(output) => {
                completed += 1;
                checksum ^= output_digest(output);
            }
            Err(_) => failed += 1,
        }
    }
    let elapsed = started.elapsed();
    // Drain before the snapshot so the gauges read as fully idle.
    pool.drain();
    let snapshot = pool.metrics().snapshot();
    pool.shutdown();
    Ok(LoadgenReport {
        offered,
        accepted,
        rejected,
        completed,
        failed,
        elapsed,
        throughput_rps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        checksum,
        snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_per_seed() {
        assert_eq!(request_mix(7, 50), request_mix(7, 50));
        assert_ne!(request_mix(7, 50), request_mix(8, 50));
    }

    #[test]
    fn report_prints_tail_latency_and_rejections() {
        let report = run(&LoadgenConfig {
            requests: 10,
            seed: 7,
            pool: PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
        })
        .expect("loadgen runs");
        let text = report.to_string();
        assert!(text.contains("latency: p50 "), "{text}");
        assert!(text.contains(" / p95 "), "{text}");
        assert!(text.contains(" / p99 "), "{text}");
        assert!(text.contains("rejected at admission: 0 of 10"), "{text}");
    }

    #[test]
    fn mix_covers_every_job_class_and_tenant() {
        let mix = request_mix(7, 200);
        assert!(mix.iter().any(|r| matches!(r.kind, JobKind::Run { .. })));
        assert!(mix
            .iter()
            .any(|r| matches!(r.kind, JobKind::Multiply { .. })));
        assert!(mix.iter().any(|r| matches!(r.kind, JobKind::Mac { .. })));
        for t in 0..4u16 {
            assert!(mix.iter().any(|r| r.tenant == TenantId(t)), "tenant {t}");
        }
    }
}
