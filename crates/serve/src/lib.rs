//! # apim-serve — concurrent multi-tenant serving runtime
//!
//! The layers below this crate simulate *one* APIM device; this crate
//! turns the simulator into a service. A [`Pool`] owns a team of worker
//! threads, each holding its own sharded [`apim::Apim`] instance, fed by
//! a bounded intake queue:
//!
//! * **Admission control / backpressure** — the queue never grows past
//!   its configured depth; excess requests are rejected synchronously
//!   with [`ServeError::Overloaded`] (and greedy tenants individually
//!   with [`ServeError::QuotaExceeded`]), mirroring how the paper's
//!   controller refuses work that does not fit its 2048 block pairs.
//! * **Batching** — queued requests coalesce into batches keyed by
//!   `(app, precision mode)`, so one worker amortizes executor setup and
//!   deduplicates identical runs inside a batch. One-shot workloads are
//!   placed onto workers with the architecture layer's LPT
//!   [`Schedule`](apim_arch::scheduler::Schedule) — host threads are
//!   scheduled exactly like the device's block pairs. Same-kernel
//!   [`JobKind::Pixel`] batches that fit a word go further: one
//!   lane-batched `compile_batched` pass answers the whole batch, one
//!   pixel per bitline lane (DESIGN.md §16), with per-pixel serial
//!   execution as the fallback and differential oracle.
//! * **Deadlines and retries** — each request may carry a deadline;
//!   failed attempts (simulator errors, injected faults, worker panics)
//!   retry with capped exponential backoff before surfacing a structured
//!   [`ServeError`].
//! * **Observability** — a lock-free [`Metrics`] registry (atomic
//!   counters, power-of-two-bucket latency histograms with p50/p95/p99,
//!   queue-depth and utilization gauges) with a text snapshot exporter.
//! * **Graceful drain/shutdown** — every accepted request is answered;
//!   [`Pool::shutdown`] finishes the backlog before joining workers.
//!
//! Plain `std` threads, no async runtime: the work units are
//! CPU-bound simulator calls measured in micro- to milliseconds, so a
//! thread per core with a bounded queue is both simpler and faster than
//! an executor — see DESIGN.md §8.
//!
//! ```
//! use apim_serve::{JobKind, Pool, PoolConfig, Request};
//!
//! # fn main() -> Result<(), apim::ApimError> {
//! let pool = Pool::new(PoolConfig { workers: 2, ..PoolConfig::default() })?;
//! let handle = pool
//!     .submit(Request::new(JobKind::Multiply { a: 1_000_003, b: 2_000_029 }))
//!     .expect("queue has room");
//! let response = handle.wait();
//! assert!(response.result.is_ok());
//! pool.shutdown();
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod loadgen;
pub mod metrics;
mod pool;
mod queue;
mod request;

pub use metrics::{Metrics, MetricsSnapshot};
pub use pool::{FaultPlan, JobHandle, Pool, PoolConfig};
pub use request::{JobKind, JobOutput, Request, Response, ServeError, TenantId};

use apim::campaign::CampaignExecutor;
use apim::{ApimConfig, ApimError, App, PrecisionMode, RunReport};

impl CampaignExecutor for Pool {
    /// Runs a campaign's sweep on the pool's workers via the one-shot LPT
    /// path. Each `(app, size, mode)` job is executed on a simulator shard
    /// built from the *campaign's* configuration, and reports come back in
    /// job order — values and order are identical to the serial
    /// `Campaign::run`.
    fn run_campaign(
        &self,
        config: &ApimConfig,
        jobs: &[(App, u64, PrecisionMode)],
    ) -> Result<Vec<RunReport>, ApimError> {
        let requests = jobs
            .iter()
            .map(|&(app, dataset_bytes, mode)| {
                Request::new(JobKind::Run { app, dataset_bytes }).mode(mode)
            })
            .collect();
        let responses = self.run_all_with_config(config, requests)?;
        responses
            .into_iter()
            .map(|response| match response.result {
                Ok(JobOutput::Run(report)) => Ok(*report),
                Ok(_) => Err(ApimError::Runtime(
                    "run job answered with a non-run output".into(),
                )),
                Err(e) => Err(ApimError::Runtime(e.to_string())),
            })
            .collect()
    }
}
