//! The worker pool: sharded simulator instances behind a bounded queue.
//!
//! Each worker thread owns its own [`Apim`] instance (the simulator is a
//! cheap value type, so sharding it removes all cross-worker contention on
//! the hot path); work arrives as coalesced batches from the shared
//! [`Intake`](crate::queue::Intake) queue. Execution attempts that fail —
//! simulator errors, injected faults, worker panics — are retried with
//! capped exponential backoff while the request's deadline allows, then
//! surfaced as a structured [`ServeError`].

use crate::metrics::Metrics;
use crate::queue::{Intake, Job};
use crate::request::{JobKind, JobOutput, Request, Response, ServeError};
use apim::{Apim, ApimConfig, ApimError, App, PrecisionMode};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Deterministic fault injection for chaos-testing the retry and
/// panic-isolation paths. Attempt numbers are global across the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPlan {
    /// No injected faults.
    #[default]
    None,
    /// Every `n`-th execution attempt returns a synthetic failure.
    FailEvery(u64),
    /// Every `n`-th execution attempt panics inside the worker.
    PanicEvery(u64),
}

/// Configuration of a [`Pool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (each holds one simulator shard). Must be nonzero.
    pub workers: usize,
    /// Intake queue capacity: admission control rejects beyond this.
    pub queue_depth: usize,
    /// Largest batch a worker coalesces per pop.
    pub max_batch: usize,
    /// Retries after a failed execution attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Deadline applied to requests that carry none.
    pub default_deadline: Option<Duration>,
    /// Max queue slots one tenant may hold (`None` = no quota).
    pub per_tenant_quota: Option<usize>,
    /// Route same-`(app, mode)` [`JobKind::Pixel`] batches through the
    /// lane-batched compiled-kernel path (one `compile_batched` pass
    /// answers the whole batch, one pixel per bitline lane) whenever the
    /// batch fits a word. Off forces the per-pixel serial path — the
    /// differential oracle the integration tests compare against.
    pub lane_batch: bool,
    /// Device configuration for every worker's simulator shard.
    pub apim: ApimConfig,
    /// Injected faults (testing).
    pub fault: FaultPlan,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            queue_depth: 256,
            max_batch: 8,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            default_deadline: None,
            per_tenant_quota: None,
            lane_batch: true,
            apim: ApimConfig::default(),
            fault: FaultPlan::None,
        }
    }
}

/// One-slot rendezvous delivering a [`Response`] to a [`JobHandle`].
#[derive(Debug, Default)]
pub struct ResponseSlot {
    value: Mutex<Option<Response>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn fill(&self, response: Response) {
        let mut value = self.value.lock().expect("slot lock");
        *value = Some(response);
        drop(value);
        self.ready.notify_all();
    }

    fn wait(&self) -> Response {
        let mut value = self.value.lock().expect("slot lock");
        loop {
            if let Some(response) = value.take() {
                return response;
            }
            value = self.ready.wait(value).expect("slot lock");
        }
    }

    fn try_take(&self) -> Option<Response> {
        self.value.lock().expect("slot lock").take()
    }
}

/// Receipt for an accepted request; redeem it with [`JobHandle::wait`].
#[derive(Debug)]
pub struct JobHandle {
    id: u64,
    slot: Arc<ResponseSlot>,
}

impl JobHandle {
    /// The pool-assigned request id (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives. Every accepted request is
    /// answered, including across drain and shutdown.
    pub fn wait(self) -> Response {
        self.slot.wait()
    }

    /// Returns the response if it already arrived, consuming it.
    pub fn try_wait(&self) -> Option<Response> {
        self.slot.try_take()
    }
}

/// A concurrent serving pool over sharded APIM simulator instances.
///
/// ```
/// use apim_serve::{JobKind, Pool, PoolConfig, Request};
///
/// # fn main() -> Result<(), apim::ApimError> {
/// let pool = Pool::new(PoolConfig { workers: 2, ..PoolConfig::default() })?;
/// let handle = pool
///     .submit(Request::new(JobKind::Multiply { a: 7, b: 6 }))
///     .expect("queue has room");
/// let response = handle.wait();
/// assert!(response.result.is_ok());
/// pool.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    config: PoolConfig,
}

#[derive(Debug)]
struct Shared {
    intake: Intake,
    metrics: Arc<Metrics>,
    config: PoolConfig,
    next_id: AtomicU64,
    attempt_counter: AtomicU64,
}

impl Pool {
    /// Spawns the workers, each with its own simulator shard.
    ///
    /// # Errors
    ///
    /// Returns [`apim::ArchError::ZeroUnits`] for `workers == 0` and
    /// propagates invalid device configurations.
    pub fn new(config: PoolConfig) -> Result<Self, ApimError> {
        if config.workers == 0 {
            return Err(apim::ArchError::ZeroUnits.into());
        }
        // Validate the device configuration once, up front.
        Apim::new(config.apim.clone())?;
        let metrics = Arc::new(Metrics::default());
        let shared = Arc::new(Shared {
            intake: Intake::new(
                config.queue_depth,
                config.per_tenant_quota,
                Arc::clone(&metrics),
            ),
            metrics,
            config: config.clone(),
            next_id: AtomicU64::new(0),
            attempt_counter: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("apim-serve-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(Pool {
            shared,
            workers,
            config,
        })
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Submits a request. Admission control answers synchronously: a full
    /// queue or exhausted tenant quota rejects immediately (backpressure),
    /// an accepted request returns a [`JobHandle`] that is always
    /// eventually answered.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`], [`ServeError::QuotaExceeded`] or
    /// [`ServeError::ShuttingDown`].
    pub fn submit(&self, request: Request) -> Result<JobHandle, ServeError> {
        let metrics = &self.shared.metrics;
        let slot = Arc::new(ResponseSlot::default());
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let tenant = request.tenant;
        let job = Job {
            id,
            request,
            submitted: Instant::now(),
            slot: Arc::clone(&slot),
        };
        match self.shared.intake.push(job) {
            Ok(()) => {
                metrics.accepted.inc();
                metrics.tenant(tenant.0).accepted.inc();
                Ok(JobHandle { id, slot })
            }
            Err(e) => {
                metrics.rejected.inc();
                metrics.tenant(tenant.0).rejected.inc();
                Err(e)
            }
        }
    }

    /// Blocks until every accepted request has been answered. New
    /// submissions remain possible afterwards; call [`Pool::shutdown`] to
    /// also stop the workers.
    pub fn drain(&self) {
        self.shared.intake.drain();
    }

    /// Graceful shutdown: stop accepting, finish the entire backlog, join
    /// every worker. Consumes the pool.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.shared.intake.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Jobs currently queued (excludes in-flight work).
    pub fn queue_depth(&self) -> usize {
        self.shared.intake.depth()
    }

    /// Executes a fixed request set to completion, bypassing admission
    /// control, and returns responses in input order.
    ///
    /// This is the one-shot path (`apim-cli serve`, parallel campaigns):
    /// with the whole workload known up front the pool batches it by
    /// `(app, mode)`, costs each batch with the device's analytic model
    /// and places batches onto workers with the architecture layer's LPT
    /// [`Schedule`](apim_arch::scheduler::Schedule) — the same scheduler
    /// the simulated device uses for its block pairs.
    ///
    /// # Errors
    ///
    /// Propagates device configuration errors; per-request failures are
    /// reported inside each [`Response`].
    pub fn run_all(&self, requests: Vec<Request>) -> Result<Vec<Response>, ApimError> {
        self.run_all_with_config(&self.config.apim, requests)
    }

    /// [`Pool::run_all`] with an explicit device configuration (used by
    /// parallel campaigns, whose sweep carries its own config).
    ///
    /// # Errors
    ///
    /// Propagates device configuration errors.
    pub fn run_all_with_config(
        &self,
        device: &ApimConfig,
        requests: Vec<Request>,
    ) -> Result<Vec<Response>, ApimError> {
        let probe = Apim::new(device.clone())?;
        // Group request indices into batches keyed by (app, mode).
        type BatchKey = (Option<App>, PrecisionMode);
        let mut batches: Vec<(BatchKey, Vec<usize>)> = Vec::new();
        let mut by_key: HashMap<BatchKey, usize> = HashMap::new();
        for (index, request) in requests.iter().enumerate() {
            let key = request.batch_key();
            let slot = *by_key.entry(key).or_insert_with(|| {
                batches.push((key, Vec::new()));
                batches.len() - 1
            });
            batches[slot].1.push(index);
        }
        // Cost each batch with the analytic model and LPT-place the
        // batches onto the worker count.
        let cycles: Vec<apim::Cycles> = batches
            .iter()
            .map(|(_, members)| {
                let total: u64 = members
                    .iter()
                    .map(|&i| estimate_cycles(&probe, &requests[i]))
                    .sum();
                apim::Cycles::new(total.max(1))
            })
            .collect();
        let schedule = apim_arch::scheduler::Schedule::lpt(
            &cycles,
            u32::try_from(self.config.workers).unwrap_or(u32::MAX),
        )
        .map_err(ApimError::from)?;
        // Per-worker batch lists, executed on scoped threads with one
        // simulator shard each; results land at their original index.
        let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); self.config.workers];
        for placement in schedule.placements() {
            per_worker[placement.unit as usize].push(placement.job);
        }
        let mut slots: Vec<Option<Response>> = Vec::new();
        slots.resize_with(requests.len(), || None);
        let slots = Mutex::new(slots);
        let shared = &self.shared;
        let requests = &requests;
        let batches = &batches;
        std::thread::scope(|scope| -> Result<(), ApimError> {
            let mut joins = Vec::new();
            for batch_ids in per_worker.into_iter().filter(|w| !w.is_empty()) {
                let apim = Apim::new(device.clone())?;
                let slots = &slots;
                joins.push(scope.spawn(move || {
                    for batch_id in batch_ids {
                        let started = Instant::now();
                        let members = &batches[batch_id].1;
                        let mut memo = RunMemo::default();
                        let refs: Vec<&Request> = members.iter().map(|&i| &requests[i]).collect();
                        let mut pre = if shared.config.lane_batch {
                            lane_batch_pixels(&refs)
                        } else {
                            vec![None; members.len()]
                        };
                        for (slot, &index) in pre.iter_mut().zip(members) {
                            let response = match slot.take() {
                                Some(output) => respond_prebatched(
                                    shared,
                                    index as u64,
                                    &requests[index],
                                    started,
                                    output,
                                ),
                                None => execute_job(
                                    shared,
                                    &apim,
                                    &mut memo,
                                    index as u64,
                                    &requests[index],
                                    started,
                                ),
                            };
                            let tenant = requests[index].tenant;
                            shared.metrics.accepted.inc();
                            shared.metrics.tenant(tenant.0).accepted.inc();
                            if response.result.is_ok() {
                                shared.metrics.completed.inc();
                                shared.metrics.tenant(tenant.0).completed.inc();
                            } else {
                                shared.metrics.failed.inc();
                            }
                            slots.lock().expect("result slots")[index] = Some(response);
                        }
                        shared.metrics.batches.inc();
                        if members.len() > 1 {
                            shared.metrics.coalesced.add(members.len() as u64);
                        }
                        shared.metrics.batch_service.record(started.elapsed());
                    }
                }));
            }
            for join in joins {
                let _ = join.join();
            }
            Ok(())
        })?;
        Ok(slots
            .into_inner()
            .expect("result slots")
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect())
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Modeled cycle cost of one request — the weight LPT balances on.
fn estimate_cycles(apim: &Apim, request: &Request) -> u64 {
    match &request.kind {
        JobKind::Run { app, dataset_bytes } => apim
            .executor()
            .run_profile_with_mode(&apim::profile_of(*app), *dataset_bytes, request.mode)
            .map(|cost| cost.cycles.get())
            .unwrap_or(1),
        JobKind::Multiply { .. } => u64::from(apim.config().operand_bits) * 16,
        JobKind::Mac { pairs } => pairs.len() as u64 * u64::from(apim.config().operand_bits) * 16,
        // One multiply-equivalent per tap; good enough for LPT balance.
        JobKind::Pixel { taps, .. } => {
            taps.len() as u64 * u64::from(apim.config().operand_bits) * 16
        }
        // One multiply-equivalent per statement: compiling for a real
        // estimate would cost more than the imbalance it prevents.
        JobKind::Compile { source } => {
            source.lines().count().max(1) as u64 * u64::from(apim.config().operand_bits) * 16
        }
        // Echo never reaches the simulator; its cost is the serving path.
        JobKind::Echo { .. } => 1,
    }
}

/// Within one batch, identical `(app, dataset, mode)` runs are computed
/// once — the setup amortization batching exists for.
#[derive(Default)]
struct RunMemo {
    runs: HashMap<(App, u64, PrecisionMode), Result<JobOutput, ServeError>>,
}

fn worker_loop(shared: &Shared) {
    // Pool::new validated the config; the early return is unreachable in
    // practice.
    let Ok(apim) = Apim::new(shared.config.apim.clone()) else {
        return;
    };
    while let Some(batch) = shared.intake.pop_batch(shared.config.max_batch) {
        shared.metrics.workers_busy.inc();
        let started = Instant::now();
        let mut memo = RunMemo::default();
        let size = batch.len();
        // Batch-shape metrics are published before any response slot is
        // filled, so a snapshot taken by a client that has observed every
        // response accounts for every batch too.
        shared.metrics.batches.inc();
        if size > 1 {
            shared.metrics.coalesced.add(size as u64);
        }
        let members: Vec<&Request> = batch.iter().map(|job| &job.request).collect();
        let mut pre = if shared.config.lane_batch {
            lane_batch_pixels(&members)
        } else {
            vec![None; size]
        };
        for (job, pre) in batch.iter().zip(pre.iter_mut()) {
            let response = match pre.take() {
                Some(output) => {
                    respond_prebatched(shared, job.id, &job.request, job.submitted, output)
                }
                None => execute_job(
                    shared,
                    &apim,
                    &mut memo,
                    job.id,
                    &job.request,
                    job.submitted,
                ),
            };
            // Metrics update before the slot fill: a client that observes
            // the response must also observe its effect on the registry.
            if response.result.is_ok() {
                shared.metrics.completed.inc();
                shared.metrics.tenant(job.request.tenant.0).completed.inc();
            } else {
                shared.metrics.failed.inc();
            }
            job.slot.fill(response);
        }
        shared.metrics.batch_service.record(started.elapsed());
        // Gauge drops before `done`: anyone woken by a completed drain must
        // see an idle pool in the snapshot.
        shared.metrics.workers_busy.dec();
        shared.intake.done(size);
    }
}

/// Executes one request with deadline checks and capped-exponential-backoff
/// retries, recording latency and retry metrics.
fn execute_job(
    shared: &Shared,
    apim: &Apim,
    memo: &mut RunMemo,
    id: u64,
    request: &Request,
    submitted: Instant,
) -> Response {
    let deadline = request
        .deadline
        .or(shared.config.default_deadline)
        .map(|d| submitted + d);
    let max_attempts = 1 + shared.config.max_retries;
    let mut attempts = 0;
    let mut last_error = ServeError::WorkerPanicked;
    while attempts < max_attempts {
        if deadline.is_some_and(|d| Instant::now() > d) {
            last_error = ServeError::DeadlineExceeded;
            break;
        }
        attempts += 1;
        match attempt(shared, apim, memo, request) {
            Ok(output) => {
                let latency = submitted.elapsed();
                shared.metrics.latency.record(latency);
                return Response {
                    id,
                    tenant: request.tenant,
                    attempts,
                    latency,
                    result: Ok(output),
                };
            }
            Err(error) => {
                last_error = error;
                if attempts < max_attempts {
                    shared.metrics.retries.inc();
                    let backoff = shared
                        .config
                        .retry_backoff
                        .saturating_mul(1 << (attempts - 1).min(16))
                        .min(shared.config.backoff_cap);
                    std::thread::sleep(backoff);
                }
            }
        }
    }
    let latency = submitted.elapsed();
    shared.metrics.latency.record(latency);
    Response {
        id,
        tenant: request.tenant,
        attempts,
        latency,
        result: Err(match last_error {
            ServeError::Failed { reason, .. } => ServeError::Failed { reason, attempts },
            other => other,
        }),
    }
}

/// One execution attempt, with injected faults and panic isolation.
fn attempt(
    shared: &Shared,
    apim: &Apim,
    memo: &mut RunMemo,
    request: &Request,
) -> Result<JobOutput, ServeError> {
    let attempt_number = shared.attempt_counter.fetch_add(1, Ordering::Relaxed) + 1;
    match shared.config.fault {
        FaultPlan::FailEvery(n) if n > 0 && attempt_number.is_multiple_of(n) => {
            return Err(ServeError::Failed {
                reason: "injected fault".into(),
                attempts: 0,
            });
        }
        _ => {}
    }
    let panic_here = matches!(shared.config.fault, FaultPlan::PanicEvery(n)
        if n > 0 && attempt_number.is_multiple_of(n));
    catch_unwind(AssertUnwindSafe(|| {
        if panic_here {
            panic!("injected panic");
        }
        match &request.kind {
            JobKind::Run { app, dataset_bytes } => {
                let key = (*app, *dataset_bytes, request.mode);
                if let Some(cached) = memo.runs.get(&key) {
                    return cached.clone();
                }
                let result = apim
                    .run_with_mode(*app, *dataset_bytes, request.mode)
                    .map(|report| JobOutput::Run(Box::new(report)))
                    .map_err(|e| ServeError::Failed {
                        reason: e.to_string(),
                        attempts: 0,
                    });
                memo.runs.insert(key, result.clone());
                result
            }
            JobKind::Multiply { a, b } => {
                Ok(JobOutput::Multiply(apim.multiply(*a, *b, request.mode)))
            }
            JobKind::Mac { pairs } => {
                let (reports, batch) = apim.multiply_batch(pairs, request.mode);
                Ok(JobOutput::Mac { reports, batch })
            }
            JobKind::Compile { source } => run_compiled(source),
            JobKind::Pixel { app, taps } => run_pixel_serial(*app, taps),
            JobKind::Echo { payload } => Ok(JobOutput::Echo(*payload)),
        }
    }))
    .unwrap_or(Err(ServeError::WorkerPanicked))
}

/// Compiles and gate-executes one expression program. Unbound inputs
/// default to their declaration index + 1 so open programs still serve.
fn run_compiled(source: &str) -> Result<JobOutput, ServeError> {
    let fail = |reason: String| ServeError::Failed {
        reason,
        attempts: 0,
    };
    let program =
        apim_compile::parse_program(source).map_err(|e| fail(format!("invalid program: {e}")))?;
    let compiled = apim_compile::compile(&program.dag, &apim_compile::CompileOptions::default())
        .map_err(|e| fail(e.to_string()))?;
    let inputs: HashMap<String, u64> = compiled
        .dag()
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, name)| (name.to_string(), i as u64 + 1))
        .collect();
    let report = compiled.run(&inputs).map_err(|e| fail(e.to_string()))?;
    Ok(JobOutput::Compile {
        value: report.value,
        cycles: report.cycles,
        micro_ops: report.trace_len,
    })
}

/// The compiled pixel-kernel DAG behind a [`JobKind::Pixel`] app.
fn kernel_dag(app: App) -> Option<apim_compile::Dag> {
    match app {
        App::Sharpen => Some(apim_workloads::dags::sharpen_dag()),
        App::Sobel => Some(apim_workloads::dags::sobel_gradient_dag()),
        _ => None,
    }
}

/// Binds one pixel's taps to the kernel DAG's inputs, declaration order.
fn bind_taps(
    dag: &apim_compile::Dag,
    taps: &[u64],
) -> Result<std::collections::HashMap<String, u64>, ServeError> {
    let inputs = dag.inputs();
    if taps.len() != inputs.len() {
        return Err(ServeError::Failed {
            reason: format!("pixel needs {} taps, got {}", inputs.len(), taps.len()),
            attempts: 0,
        });
    }
    Ok(inputs
        .iter()
        .zip(taps)
        .map(|(name, &tap)| (name.to_string(), tap))
        .collect())
}

/// The serial pixel path: one compiled pass per pixel. This is both the
/// fallback when a batch cannot lane-batch and the differential oracle the
/// fast path is tested against.
fn run_pixel_serial(app: App, taps: &[u64]) -> Result<JobOutput, ServeError> {
    let fail = |reason: String| ServeError::Failed {
        reason,
        attempts: 0,
    };
    let dag =
        kernel_dag(app).ok_or_else(|| fail(format!("`{}` has no pixel kernel", app.name())))?;
    let compiled = apim_compile::compile(&dag, &apim_compile::CompileOptions::default())
        .map_err(|e| fail(e.to_string()))?;
    let report = compiled
        .run(&bind_taps(&dag, taps)?)
        .map_err(|e| fail(e.to_string()))?;
    Ok(JobOutput::Pixel {
        value: report.value,
        cycles: report.cycles,
        lanes: 1,
    })
}

/// The lane-batched fast path over one coalesced batch: groups the batch's
/// pixel jobs by `(app, mode)` and answers each group that fits a word
/// (2..=64 pixels) with a single [`apim_compile::compile_batched`] pass —
/// one pixel per bitline lane, so the whole group costs one serial pixel's
/// cycles. Returns one pre-computed output slot per batch member; `None`
/// slots (non-pixel jobs, singleton groups, any compile or run failure)
/// fall back to the per-job serial path.
fn lane_batch_pixels(requests: &[&Request]) -> Vec<Option<JobOutput>> {
    // Bitline lanes in one packed word — compile_batched's upper bound.
    const MAX_LANES: usize = 64;
    let mut out: Vec<Option<JobOutput>> = vec![None; requests.len()];
    let mut groups: Vec<((App, PrecisionMode), Vec<usize>)> = Vec::new();
    for (index, request) in requests.iter().enumerate() {
        if let JobKind::Pixel { app, .. } = request.kind {
            let key = (app, request.mode);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(index),
                None => groups.push((key, vec![index])),
            }
        }
    }
    for ((app, _), members) in groups {
        if !(2..=MAX_LANES).contains(&members.len()) {
            continue;
        }
        let Some(dag) = kernel_dag(app) else {
            continue;
        };
        let Ok(bindings) = members
            .iter()
            .filter_map(|&i| match &requests[i].kind {
                JobKind::Pixel { taps, .. } => Some(bind_taps(&dag, taps)),
                _ => None,
            })
            .collect::<Result<Vec<_>, _>>()
        else {
            continue;
        };
        if bindings.len() != members.len() {
            continue;
        }
        let options = apim_compile::CompileOptions::default();
        let Ok(program) = apim_compile::compile_batched(&dag, &options, members.len()) else {
            continue;
        };
        let Ok(report) = program.run(&bindings) else {
            continue;
        };
        for (lane, &index) in members.iter().enumerate() {
            out[index] = Some(JobOutput::Pixel {
                value: report.values[lane],
                cycles: report.cycles,
                lanes: members.len(),
            });
        }
    }
    out
}

/// Wraps one lane-batched output as a [`Response`]. The fast path has no
/// retries: any failure already fell back to [`execute_job`].
fn respond_prebatched(
    shared: &Shared,
    id: u64,
    request: &Request,
    submitted: Instant,
    output: JobOutput,
) -> Response {
    let latency = submitted.elapsed();
    shared.metrics.latency.record(latency);
    Response {
        id,
        tenant: request.tenant,
        attempts: 1,
        latency,
        result: Ok(output),
    }
}
