//! Bounded intake queue with admission control, coalescing pop and drain
//! tracking.
//!
//! Admission is synchronous and never blocks: a full queue (or an
//! exhausted per-tenant quota) rejects immediately with a structured
//! error, so producers get backpressure instead of unbounded growth.
//! Workers pop *batches*: the oldest job plus up to `max_batch - 1`
//! queued jobs sharing its `(app, mode)` batch key, preserving FIFO order
//! within the key.

use crate::metrics::Metrics;
use crate::request::{Request, ServeError, TenantId};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::pool::ResponseSlot;

/// One queued unit of work: the request plus its delivery plumbing.
#[derive(Debug)]
pub(crate) struct Job {
    pub id: u64,
    pub request: Request,
    pub submitted: Instant,
    pub slot: Arc<ResponseSlot>,
}

#[derive(Debug)]
struct State {
    jobs: VecDeque<Job>,
    open: bool,
    inflight: usize,
    per_tenant: HashMap<TenantId, usize>,
}

/// The shared intake queue.
#[derive(Debug)]
pub(crate) struct Intake {
    state: Mutex<State>,
    not_empty: Condvar,
    idle: Condvar,
    capacity: usize,
    per_tenant_quota: Option<usize>,
    metrics: Arc<Metrics>,
}

impl Intake {
    pub fn new(capacity: usize, per_tenant_quota: Option<usize>, metrics: Arc<Metrics>) -> Self {
        Intake {
            state: Mutex::new(State {
                jobs: VecDeque::with_capacity(capacity.min(1024)),
                open: true,
                inflight: 0,
                per_tenant: HashMap::new(),
            }),
            not_empty: Condvar::new(),
            idle: Condvar::new(),
            capacity,
            per_tenant_quota,
            metrics,
        }
    }

    /// Admission control: accept the job or reject it synchronously.
    pub fn push(&self, job: Job) -> Result<(), ServeError> {
        let mut state = self.state.lock().expect("intake lock");
        if !state.open {
            return Err(ServeError::ShuttingDown);
        }
        if state.jobs.len() >= self.capacity {
            return Err(ServeError::Overloaded {
                depth: self.capacity,
            });
        }
        let tenant = job.request.tenant;
        let held = state.per_tenant.entry(tenant).or_insert(0);
        if let Some(quota) = self.per_tenant_quota {
            if *held >= quota {
                return Err(ServeError::QuotaExceeded { tenant });
            }
        }
        *held += 1;
        state.jobs.push_back(job);
        self.metrics.queue_depth.set(state.jobs.len() as i64);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until work is available, then pops the oldest job plus up to
    /// `max_batch - 1` queued jobs with the same batch key. Returns `None`
    /// once the queue is closed *and* empty (worker shutdown signal).
    pub fn pop_batch(&self, max_batch: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().expect("intake lock");
        loop {
            if let Some(first) = state.jobs.pop_front() {
                let key = first.request.batch_key();
                let mut batch = vec![first];
                let mut index = 0;
                while batch.len() < max_batch && index < state.jobs.len() {
                    if state.jobs[index].request.batch_key() == key {
                        batch.push(state.jobs.remove(index).expect("index in bounds"));
                    } else {
                        index += 1;
                    }
                }
                for job in &batch {
                    let held = state
                        .per_tenant
                        .get_mut(&job.request.tenant)
                        .expect("tenant accounted at push");
                    *held -= 1;
                }
                state.per_tenant.retain(|_, held| *held > 0);
                state.inflight += batch.len();
                self.metrics.queue_depth.set(state.jobs.len() as i64);
                return Some(batch);
            }
            if !state.open {
                return None;
            }
            state = self.not_empty.wait(state).expect("intake lock");
        }
    }

    /// Marks `n` popped jobs as responded; wakes drainers when the queue
    /// goes fully idle.
    pub fn done(&self, n: usize) {
        let mut state = self.state.lock().expect("intake lock");
        state.inflight -= n;
        if state.jobs.is_empty() && state.inflight == 0 {
            self.idle.notify_all();
        }
    }

    /// Blocks until every accepted job has been responded to.
    pub fn drain(&self) {
        let mut state = self.state.lock().expect("intake lock");
        while !(state.jobs.is_empty() && state.inflight == 0) {
            state = self.idle.wait(state).expect("intake lock");
        }
    }

    /// Stops accepting new work and wakes every blocked worker so they can
    /// finish the backlog and exit.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("intake lock");
        state.open = false;
        drop(state);
        self.not_empty.notify_all();
    }

    /// Jobs currently queued (excludes in-flight).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("intake lock").jobs.len()
    }
}
