//! Lock-free observability for the serving runtime.
//!
//! Every instrument is a plain atomic: counters and gauges are single
//! `AtomicU64`/`AtomicI64` cells, histograms are fixed arrays of atomic
//! buckets. Recording never takes a lock and never allocates, so the hot
//! path of a worker thread pays a handful of relaxed atomic adds per
//! request. [`Metrics::snapshot`] reads everything into an immutable
//! [`MetricsSnapshot`] whose `Display` impl is the text exporter.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, busy workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets an absolute level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: powers of two from 1 µs up to
/// ~2³⁸ µs (≈ 76 h), which comfortably brackets any request latency the
/// runtime can produce.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket latency histogram with power-of-two bucket edges.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` microseconds (bucket 0
/// counts 0 µs samples); quantiles report the upper edge of the bucket
/// containing the requested rank, so they are conservative by at most 2×.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Index of the bucket holding a `us`-microsecond sample.
    fn bucket_of(us: u64) -> usize {
        ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Upper edge, in µs, of bucket `i`.
    fn upper_edge(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound, in µs, on the `q`-quantile (`0.0 ..= 1.0`) of the
    /// recorded samples; `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.bucket_counts(), q)
    }

    /// Mean sample, in µs; `None` when empty.
    pub fn mean_us(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum_us.load(Ordering::Relaxed) as f64 / n as f64)
    }

    /// A point-in-time copy of the raw bucket counts. Index `i` counts
    /// samples whose bucket upper edge is `2^i` µs (index 0 counts 0 µs),
    /// so two dumps from different registries merge by elementwise sum.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum of every recorded sample, in µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }
}

/// Upper bound, in µs, on the `q`-quantile of a bucket-count dump (as
/// produced by [`Histogram::bucket_counts`], possibly summed across
/// several histograms); `None` when the buckets are empty.
pub fn quantile_from_buckets(counts: &[u64], q: f64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(Histogram::upper_edge(i));
        }
    }
    Some(Histogram::upper_edge(counts.len().saturating_sub(1)))
}

/// Mean, in µs, implied by a bucket dump and its sample sum.
fn mean_from_buckets(counts: &[u64], sum_us: u64) -> Option<f64> {
    let n: u64 = counts.iter().sum();
    (n > 0).then(|| sum_us as f64 / n as f64)
}

/// Per-tenant counters. The registry keeps [`TENANT_SLOTS`] of these;
/// tenant ids are folded into the slots modulo [`TENANT_SLOTS`], so small
/// deployments (ids `0..8`) get exact per-tenant figures and larger id
/// spaces degrade to striped aggregates rather than unbounded memory.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Requests admitted into the queue.
    pub accepted: Counter,
    /// Requests rejected at admission (overload or quota).
    pub rejected: Counter,
    /// Requests that finished with a successful outcome.
    pub completed: Counter,
}

/// Number of per-tenant metric stripes.
pub const TENANT_SLOTS: usize = 8;

/// The serving runtime's metrics registry. All instruments are lock-free;
/// share it as an `Arc<Metrics>` between the pool and observers.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests admitted into the queue.
    pub accepted: Counter,
    /// Requests rejected with `Overloaded` at admission.
    pub rejected: Counter,
    /// Requests answered with a successful outcome.
    pub completed: Counter,
    /// Requests answered with a structured error after retries.
    pub failed: Counter,
    /// Execution attempts beyond the first (retry/backoff loop).
    pub retries: Counter,
    /// Batches dispatched to workers.
    pub batches: Counter,
    /// Requests that shared a batch with at least one other request.
    pub coalesced: Counter,
    /// Jobs currently waiting in the intake queue.
    pub queue_depth: Gauge,
    /// Workers currently executing a batch.
    pub workers_busy: Gauge,
    /// Client connections currently open on the node's transport.
    pub connections_open: Gauge,
    /// Pipelined requests accepted but not yet answered on the wire.
    pub inflight_requests: Gauge,
    /// End-to-end request latency (submission → response).
    pub latency: Histogram,
    /// Per-batch service time on a worker.
    pub batch_service: Histogram,
    /// Striped per-tenant counters (see [`TenantCounters`]).
    pub per_tenant: [TenantCounters; TENANT_SLOTS],
}

impl Metrics {
    /// The per-tenant stripe for a tenant id.
    pub fn tenant(&self, id: u16) -> &TenantCounters {
        &self.per_tenant[usize::from(id) % TENANT_SLOTS]
    }

    /// Reads every instrument into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: self.accepted.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            retries: self.retries.get(),
            batches: self.batches.get(),
            coalesced: self.coalesced.get(),
            queue_depth: self.queue_depth.get(),
            workers_busy: self.workers_busy.get(),
            connections_open: self.connections_open.get(),
            inflight_requests: self.inflight_requests.get(),
            latency_p50_us: self.latency.quantile_us(0.50),
            latency_p95_us: self.latency.quantile_us(0.95),
            latency_p99_us: self.latency.quantile_us(0.99),
            latency_mean_us: self.latency.mean_us(),
            batch_service_p50_us: self.batch_service.quantile_us(0.50),
            latency_buckets: self.latency.bucket_counts(),
            latency_sum_us: self.latency.sum_us(),
            batch_service_buckets: self.batch_service.bucket_counts(),
            batch_service_sum_us: self.batch_service.sum_us(),
            tenants: self
                .per_tenant
                .iter()
                .map(|t| (t.accepted.get(), t.rejected.get(), t.completed.get()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every instrument in [`Metrics`]; its `Display`
/// impl is the text exporter (one `apim_serve_*` line per figure).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted.
    pub accepted: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Successful responses.
    pub completed: u64,
    /// Failed responses.
    pub failed: u64,
    /// Retry attempts.
    pub retries: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Requests that shared a batch.
    pub coalesced: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: i64,
    /// Busy workers at snapshot time.
    pub workers_busy: i64,
    /// Open transport connections at snapshot time.
    pub connections_open: i64,
    /// Pipelined in-flight requests at snapshot time.
    pub inflight_requests: i64,
    /// p50 end-to-end latency, µs.
    pub latency_p50_us: Option<u64>,
    /// p95 end-to-end latency, µs.
    pub latency_p95_us: Option<u64>,
    /// p99 end-to-end latency, µs.
    pub latency_p99_us: Option<u64>,
    /// Mean end-to-end latency, µs.
    pub latency_mean_us: Option<f64>,
    /// p50 batch service time, µs.
    pub batch_service_p50_us: Option<u64>,
    /// Raw end-to-end latency bucket counts (power-of-two edges); what
    /// [`MetricsSnapshot::merge`] sums so merged quantiles stay exact.
    pub latency_buckets: Vec<u64>,
    /// Sum of every latency sample, µs.
    pub latency_sum_us: u64,
    /// Raw batch service time bucket counts.
    pub batch_service_buckets: Vec<u64>,
    /// Sum of every batch service sample, µs.
    pub batch_service_sum_us: u64,
    /// `(accepted, rejected, completed)` per tenant stripe.
    pub tenants: Vec<(u64, u64, u64)>,
}

/// Version byte leading every [`MetricsSnapshot::encode`] payload.
/// Version 2 appended the connection/in-flight gauges.
pub const SNAPSHOT_CODEC_VERSION: u8 = 2;

/// Cap on decoded vector lengths: generous against any real snapshot, but
/// small enough that a hostile length prefix cannot force an allocation.
const MAX_DECODED_LEN: u64 = 4096;

/// Why a [`MetricsSnapshot::decode`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the encoding was complete.
    Truncated,
    /// The leading version byte is not one this build understands.
    UnsupportedVersion(u8),
    /// A length prefix or varint exceeds the decoder's hard bounds.
    LengthOverflow,
    /// Bytes remained after a complete snapshot was decoded.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "snapshot payload truncated"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot codec version {v}")
            }
            CodecError::LengthOverflow => write!(f, "snapshot length field out of bounds"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends `v` as an LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint, advancing `pos`.
fn take_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::LengthOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::LengthOverflow);
        }
    }
}

/// Zigzag fold of an `i64` into the varint-friendly unsigned space.
fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Elementwise `a[i] += b[i]`, growing `a` to cover `b`.
fn add_buckets(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (acc, &v) in a.iter_mut().zip(b) {
        *acc = acc.saturating_add(v);
    }
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one: counters, gauges, histogram
    /// buckets and per-tenant stripes sum; latency quantiles and means are
    /// recomputed from the merged buckets, so a fleet-wide p99 is exactly
    /// the p99 of the union of both nodes' samples (at bucket resolution).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.failed += other.failed;
        self.retries += other.retries;
        self.batches += other.batches;
        self.coalesced += other.coalesced;
        self.queue_depth += other.queue_depth;
        self.workers_busy += other.workers_busy;
        self.connections_open += other.connections_open;
        self.inflight_requests += other.inflight_requests;
        add_buckets(&mut self.latency_buckets, &other.latency_buckets);
        self.latency_sum_us = self.latency_sum_us.saturating_add(other.latency_sum_us);
        add_buckets(
            &mut self.batch_service_buckets,
            &other.batch_service_buckets,
        );
        self.batch_service_sum_us = self
            .batch_service_sum_us
            .saturating_add(other.batch_service_sum_us);
        if self.tenants.len() < other.tenants.len() {
            self.tenants.resize(other.tenants.len(), (0, 0, 0));
        }
        for (mine, theirs) in self.tenants.iter_mut().zip(&other.tenants) {
            mine.0 += theirs.0;
            mine.1 += theirs.1;
            mine.2 += theirs.2;
        }
        self.recompute_derived();
    }

    /// Re-derives the quantile and mean fields from the raw buckets.
    fn recompute_derived(&mut self) {
        self.latency_p50_us = quantile_from_buckets(&self.latency_buckets, 0.50);
        self.latency_p95_us = quantile_from_buckets(&self.latency_buckets, 0.95);
        self.latency_p99_us = quantile_from_buckets(&self.latency_buckets, 0.99);
        self.latency_mean_us = mean_from_buckets(&self.latency_buckets, self.latency_sum_us);
        self.batch_service_p50_us = quantile_from_buckets(&self.batch_service_buckets, 0.50);
    }

    /// Compact binary encoding: a version byte, then every raw figure as
    /// an LEB128 varint (gauges zigzag-folded). Derived fields (quantiles,
    /// means) are *not* encoded — [`MetricsSnapshot::decode`] recomputes
    /// them from the buckets, so a round trip is exact.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(SNAPSHOT_CODEC_VERSION);
        for v in [
            self.accepted,
            self.rejected,
            self.completed,
            self.failed,
            self.retries,
            self.batches,
            self.coalesced,
        ] {
            put_varint(&mut out, v);
        }
        put_varint(&mut out, zigzag(self.queue_depth));
        put_varint(&mut out, zigzag(self.workers_busy));
        put_varint(&mut out, zigzag(self.connections_open));
        put_varint(&mut out, zigzag(self.inflight_requests));
        for buckets in [&self.latency_buckets, &self.batch_service_buckets] {
            // Trailing empty buckets carry no information; drop them.
            let used = buckets.len() - buckets.iter().rev().take_while(|&&c| c == 0).count();
            put_varint(&mut out, used as u64);
            for &count in &buckets[..used] {
                put_varint(&mut out, count);
            }
        }
        put_varint(&mut out, self.latency_sum_us);
        put_varint(&mut out, self.batch_service_sum_us);
        put_varint(&mut out, self.tenants.len() as u64);
        for &(acc, rej, comp) in &self.tenants {
            put_varint(&mut out, acc);
            put_varint(&mut out, rej);
            put_varint(&mut out, comp);
        }
        out
    }

    /// Decodes an [`MetricsSnapshot::encode`] payload.
    ///
    /// # Errors
    ///
    /// Structured [`CodecError`]s for truncation, version mismatch,
    /// out-of-bounds lengths and trailing bytes; never panics.
    pub fn decode(bytes: &[u8]) -> Result<MetricsSnapshot, CodecError> {
        let (&version, rest) = bytes.split_first().ok_or(CodecError::Truncated)?;
        if version != SNAPSHOT_CODEC_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let mut pos = 0usize;
        let mut next = || take_varint(rest, &mut pos);
        let [accepted, rejected, completed, failed, retries, batches, coalesced] = [
            next()?,
            next()?,
            next()?,
            next()?,
            next()?,
            next()?,
            next()?,
        ];
        let queue_depth = unzigzag(take_varint(rest, &mut pos)?);
        let workers_busy = unzigzag(take_varint(rest, &mut pos)?);
        let connections_open = unzigzag(take_varint(rest, &mut pos)?);
        let inflight_requests = unzigzag(take_varint(rest, &mut pos)?);
        let mut take_buckets = |cap: u64| -> Result<Vec<u64>, CodecError> {
            let len = take_varint(rest, &mut pos)?;
            if len > cap {
                return Err(CodecError::LengthOverflow);
            }
            let mut buckets = Vec::with_capacity(len as usize);
            for _ in 0..len {
                buckets.push(take_varint(rest, &mut pos)?);
            }
            Ok(buckets)
        };
        let mut latency_buckets = take_buckets(HISTOGRAM_BUCKETS as u64)?;
        let mut batch_service_buckets = take_buckets(HISTOGRAM_BUCKETS as u64)?;
        latency_buckets.resize(HISTOGRAM_BUCKETS, 0);
        batch_service_buckets.resize(HISTOGRAM_BUCKETS, 0);
        let latency_sum_us = take_varint(rest, &mut pos)?;
        let batch_service_sum_us = take_varint(rest, &mut pos)?;
        let tenant_count = take_varint(rest, &mut pos)?;
        if tenant_count > MAX_DECODED_LEN {
            return Err(CodecError::LengthOverflow);
        }
        let mut tenants = Vec::with_capacity(tenant_count as usize);
        for _ in 0..tenant_count {
            tenants.push((
                take_varint(rest, &mut pos)?,
                take_varint(rest, &mut pos)?,
                take_varint(rest, &mut pos)?,
            ));
        }
        if pos != rest.len() {
            return Err(CodecError::TrailingBytes);
        }
        let mut snapshot = MetricsSnapshot {
            accepted,
            rejected,
            completed,
            failed,
            retries,
            batches,
            coalesced,
            queue_depth,
            workers_busy,
            connections_open,
            inflight_requests,
            latency_p50_us: None,
            latency_p95_us: None,
            latency_p99_us: None,
            latency_mean_us: None,
            batch_service_p50_us: None,
            latency_buckets,
            latency_sum_us,
            batch_service_buckets,
            batch_service_sum_us,
            tenants,
        };
        snapshot.recompute_derived();
        Ok(snapshot)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# apim-serve metrics snapshot")?;
        writeln!(f, "apim_serve_accepted_total {}", self.accepted)?;
        writeln!(f, "apim_serve_rejected_total {}", self.rejected)?;
        writeln!(f, "apim_serve_completed_total {}", self.completed)?;
        writeln!(f, "apim_serve_failed_total {}", self.failed)?;
        writeln!(f, "apim_serve_retries_total {}", self.retries)?;
        writeln!(f, "apim_serve_batches_total {}", self.batches)?;
        writeln!(f, "apim_serve_coalesced_total {}", self.coalesced)?;
        writeln!(f, "apim_serve_queue_depth {}", self.queue_depth)?;
        writeln!(f, "apim_serve_workers_busy {}", self.workers_busy)?;
        writeln!(f, "apim_serve_connections_open {}", self.connections_open)?;
        writeln!(f, "apim_serve_inflight_requests {}", self.inflight_requests)?;
        for (name, v) in [
            ("p50", self.latency_p50_us),
            ("p95", self.latency_p95_us),
            ("p99", self.latency_p99_us),
        ] {
            writeln!(
                f,
                "apim_serve_latency_{name}_us {}",
                v.map_or_else(|| "nan".into(), |v| v.to_string())
            )?;
        }
        writeln!(
            f,
            "apim_serve_latency_mean_us {}",
            self.latency_mean_us
                .map_or_else(|| "nan".into(), |v| format!("{v:.1}"))
        )?;
        for (slot, (acc, rej, comp)) in self.tenants.iter().enumerate() {
            if acc + rej + comp > 0 {
                writeln!(
                    f,
                    "apim_serve_tenant{{slot=\"{slot}\"}} accepted={acc} rejected={rej} completed={comp}"
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let m = Metrics::default();
        m.accepted.inc();
        m.accepted.add(4);
        m.queue_depth.inc();
        m.queue_depth.inc();
        m.queue_depth.dec();
        assert_eq!(m.accepted.get(), 5);
        assert_eq!(m.queue_depth.get(), 1);
    }

    #[test]
    fn histogram_buckets_are_power_of_two_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_of_a_uniform_ramp() {
        let h = Histogram::default();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        // Samples 1..=100 µs: the median rank (50) falls in bucket
        // [32, 64), the p99 rank (99) in [64, 128).
        assert_eq!(h.quantile_us(0.50), Some(64));
        assert_eq!(h.quantile_us(0.95), Some(128));
        assert_eq!(h.quantile_us(0.99), Some(128));
        assert_eq!(h.quantile_us(0.0), Some(2), "min rank clamps to 1 sample");
        assert_eq!(h.quantile_us(1.0), Some(128));
        let mean = h.mean_us().unwrap();
        assert!((mean - 50.5).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), None);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = Histogram::default();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(Duration::from_micros(x % 1_000_000));
        }
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile_us(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn merge_sums_counters_and_recomputes_quantiles() {
        let a = Metrics::default();
        let b = Metrics::default();
        a.accepted.add(10);
        b.accepted.add(5);
        a.tenant(1).completed.add(3);
        b.tenant(1).completed.add(4);
        b.tenant(9).rejected.add(2); // striped alias of slot 1
        for us in 1..=50u64 {
            a.latency.record(Duration::from_micros(us));
        }
        for us in 51..=100u64 {
            b.latency.record(Duration::from_micros(us));
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.accepted, 15);
        assert_eq!(merged.tenants[1], (0, 2, 7));
        // The merged histogram holds the full 1..=100 µs ramp, so the
        // quantiles must equal a single histogram fed the same samples.
        let whole = Histogram::default();
        for us in 1..=100u64 {
            whole.record(Duration::from_micros(us));
        }
        assert_eq!(merged.latency_p50_us, whole.quantile_us(0.50));
        assert_eq!(merged.latency_p99_us, whole.quantile_us(0.99));
        assert_eq!(merged.latency_mean_us, whole.mean_us());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let m = Metrics::default();
        m.accepted.add(3);
        m.latency.record(Duration::from_micros(10));
        let snap = m.snapshot();
        let mut merged = snap.clone();
        merged.merge(&Metrics::default().snapshot());
        assert_eq!(merged, snap);
    }

    #[test]
    fn codec_round_trips_exactly() {
        let m = Metrics::default();
        m.accepted.add(1000);
        m.rejected.add(17);
        m.completed.add(983);
        m.retries.add(5);
        m.queue_depth.set(-2); // exercises the zigzag path
        m.workers_busy.set(7);
        m.connections_open.set(12);
        m.inflight_requests.set(340);
        m.tenant(0).accepted.add(500);
        m.tenant(5).rejected.add(17);
        for us in [0u64, 1, 3, 900, 70_000, 5_000_000] {
            m.latency.record(Duration::from_micros(us));
            m.batch_service.record(Duration::from_micros(us / 2));
        }
        let snap = m.snapshot();
        let bytes = snap.encode();
        assert_eq!(MetricsSnapshot::decode(&bytes), Ok(snap.clone()));
        // Compact: a handful of live figures fits well under the text form.
        assert!(bytes.len() < snap.to_string().len(), "{}", bytes.len());
    }

    #[test]
    fn codec_round_trips_the_empty_snapshot() {
        let snap = Metrics::default().snapshot();
        assert_eq!(MetricsSnapshot::decode(&snap.encode()), Ok(snap));
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let good = {
            let m = Metrics::default();
            m.accepted.add(40);
            m.latency.record(Duration::from_micros(123));
            m.snapshot().encode()
        };
        assert_eq!(MetricsSnapshot::decode(&[]), Err(CodecError::Truncated));
        assert_eq!(
            MetricsSnapshot::decode(&[99]),
            Err(CodecError::UnsupportedVersion(99))
        );
        for cut in 1..good.len() {
            assert!(
                MetricsSnapshot::decode(&good[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            MetricsSnapshot::decode(&trailing),
            Err(CodecError::TrailingBytes)
        );
        // A hostile bucket count must be rejected before allocation.
        let mut oversized = vec![SNAPSHOT_CODEC_VERSION];
        oversized.extend(std::iter::repeat_n(0, 11));
        oversized.extend(std::iter::repeat_n(0xff, 10)); // varint ~ 2^70
        assert!(MetricsSnapshot::decode(&oversized).is_err());
    }

    #[test]
    fn snapshot_renders_every_line() {
        let m = Metrics::default();
        m.accepted.add(10);
        m.tenant(3).accepted.add(7);
        m.tenant(3 + TENANT_SLOTS as u16).accepted.add(1); // striped alias
        m.latency.record(Duration::from_micros(500));
        m.connections_open.set(4);
        m.inflight_requests.set(19);
        let text = m.snapshot().to_string();
        assert!(text.contains("apim_serve_accepted_total 10"));
        assert!(text.contains("apim_serve_connections_open 4"));
        assert!(text.contains("apim_serve_inflight_requests 19"));
        assert!(text.contains("apim_serve_latency_p50_us 512"));
        assert!(text.contains("slot=\"3\""));
        assert!(text.contains("accepted=8"), "aliased stripe sums: {text}");
    }
}
