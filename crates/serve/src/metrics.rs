//! Lock-free observability for the serving runtime.
//!
//! Every instrument is a plain atomic: counters and gauges are single
//! `AtomicU64`/`AtomicI64` cells, histograms are fixed arrays of atomic
//! buckets. Recording never takes a lock and never allocates, so the hot
//! path of a worker thread pays a handful of relaxed atomic adds per
//! request. [`Metrics::snapshot`] reads everything into an immutable
//! [`MetricsSnapshot`] whose `Display` impl is the text exporter.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, busy workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets an absolute level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: powers of two from 1 µs up to
/// ~2³⁸ µs (≈ 76 h), which comfortably brackets any request latency the
/// runtime can produce.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket latency histogram with power-of-two bucket edges.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` microseconds (bucket 0
/// counts 0 µs samples); quantiles report the upper edge of the bucket
/// containing the requested rank, so they are conservative by at most 2×.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Index of the bucket holding a `us`-microsecond sample.
    fn bucket_of(us: u64) -> usize {
        ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Upper edge, in µs, of bucket `i`.
    fn upper_edge(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound, in µs, on the `q`-quantile (`0.0 ..= 1.0`) of the
    /// recorded samples; `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::upper_edge(i));
            }
        }
        Some(Self::upper_edge(HISTOGRAM_BUCKETS - 1))
    }

    /// Mean sample, in µs; `None` when empty.
    pub fn mean_us(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum_us.load(Ordering::Relaxed) as f64 / n as f64)
    }
}

/// Per-tenant counters. The registry keeps [`TENANT_SLOTS`] of these;
/// tenant ids are folded into the slots modulo [`TENANT_SLOTS`], so small
/// deployments (ids `0..8`) get exact per-tenant figures and larger id
/// spaces degrade to striped aggregates rather than unbounded memory.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Requests admitted into the queue.
    pub accepted: Counter,
    /// Requests rejected at admission (overload or quota).
    pub rejected: Counter,
    /// Requests that finished with a successful outcome.
    pub completed: Counter,
}

/// Number of per-tenant metric stripes.
pub const TENANT_SLOTS: usize = 8;

/// The serving runtime's metrics registry. All instruments are lock-free;
/// share it as an `Arc<Metrics>` between the pool and observers.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests admitted into the queue.
    pub accepted: Counter,
    /// Requests rejected with `Overloaded` at admission.
    pub rejected: Counter,
    /// Requests answered with a successful outcome.
    pub completed: Counter,
    /// Requests answered with a structured error after retries.
    pub failed: Counter,
    /// Execution attempts beyond the first (retry/backoff loop).
    pub retries: Counter,
    /// Batches dispatched to workers.
    pub batches: Counter,
    /// Requests that shared a batch with at least one other request.
    pub coalesced: Counter,
    /// Jobs currently waiting in the intake queue.
    pub queue_depth: Gauge,
    /// Workers currently executing a batch.
    pub workers_busy: Gauge,
    /// End-to-end request latency (submission → response).
    pub latency: Histogram,
    /// Per-batch service time on a worker.
    pub batch_service: Histogram,
    /// Striped per-tenant counters (see [`TenantCounters`]).
    pub per_tenant: [TenantCounters; TENANT_SLOTS],
}

impl Metrics {
    /// The per-tenant stripe for a tenant id.
    pub fn tenant(&self, id: u16) -> &TenantCounters {
        &self.per_tenant[usize::from(id) % TENANT_SLOTS]
    }

    /// Reads every instrument into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: self.accepted.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            retries: self.retries.get(),
            batches: self.batches.get(),
            coalesced: self.coalesced.get(),
            queue_depth: self.queue_depth.get(),
            workers_busy: self.workers_busy.get(),
            latency_p50_us: self.latency.quantile_us(0.50),
            latency_p95_us: self.latency.quantile_us(0.95),
            latency_p99_us: self.latency.quantile_us(0.99),
            latency_mean_us: self.latency.mean_us(),
            batch_service_p50_us: self.batch_service.quantile_us(0.50),
            tenants: self
                .per_tenant
                .iter()
                .map(|t| (t.accepted.get(), t.rejected.get(), t.completed.get()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every instrument in [`Metrics`]; its `Display`
/// impl is the text exporter (one `apim_serve_*` line per figure).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted.
    pub accepted: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Successful responses.
    pub completed: u64,
    /// Failed responses.
    pub failed: u64,
    /// Retry attempts.
    pub retries: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Requests that shared a batch.
    pub coalesced: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: i64,
    /// Busy workers at snapshot time.
    pub workers_busy: i64,
    /// p50 end-to-end latency, µs.
    pub latency_p50_us: Option<u64>,
    /// p95 end-to-end latency, µs.
    pub latency_p95_us: Option<u64>,
    /// p99 end-to-end latency, µs.
    pub latency_p99_us: Option<u64>,
    /// Mean end-to-end latency, µs.
    pub latency_mean_us: Option<f64>,
    /// p50 batch service time, µs.
    pub batch_service_p50_us: Option<u64>,
    /// `(accepted, rejected, completed)` per tenant stripe.
    pub tenants: Vec<(u64, u64, u64)>,
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# apim-serve metrics snapshot")?;
        writeln!(f, "apim_serve_accepted_total {}", self.accepted)?;
        writeln!(f, "apim_serve_rejected_total {}", self.rejected)?;
        writeln!(f, "apim_serve_completed_total {}", self.completed)?;
        writeln!(f, "apim_serve_failed_total {}", self.failed)?;
        writeln!(f, "apim_serve_retries_total {}", self.retries)?;
        writeln!(f, "apim_serve_batches_total {}", self.batches)?;
        writeln!(f, "apim_serve_coalesced_total {}", self.coalesced)?;
        writeln!(f, "apim_serve_queue_depth {}", self.queue_depth)?;
        writeln!(f, "apim_serve_workers_busy {}", self.workers_busy)?;
        for (name, v) in [
            ("p50", self.latency_p50_us),
            ("p95", self.latency_p95_us),
            ("p99", self.latency_p99_us),
        ] {
            writeln!(
                f,
                "apim_serve_latency_{name}_us {}",
                v.map_or_else(|| "nan".into(), |v| v.to_string())
            )?;
        }
        writeln!(
            f,
            "apim_serve_latency_mean_us {}",
            self.latency_mean_us
                .map_or_else(|| "nan".into(), |v| format!("{v:.1}"))
        )?;
        for (slot, (acc, rej, comp)) in self.tenants.iter().enumerate() {
            if acc + rej + comp > 0 {
                writeln!(
                    f,
                    "apim_serve_tenant{{slot=\"{slot}\"}} accepted={acc} rejected={rej} completed={comp}"
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let m = Metrics::default();
        m.accepted.inc();
        m.accepted.add(4);
        m.queue_depth.inc();
        m.queue_depth.inc();
        m.queue_depth.dec();
        assert_eq!(m.accepted.get(), 5);
        assert_eq!(m.queue_depth.get(), 1);
    }

    #[test]
    fn histogram_buckets_are_power_of_two_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_of_a_uniform_ramp() {
        let h = Histogram::default();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        // Samples 1..=100 µs: the median rank (50) falls in bucket
        // [32, 64), the p99 rank (99) in [64, 128).
        assert_eq!(h.quantile_us(0.50), Some(64));
        assert_eq!(h.quantile_us(0.95), Some(128));
        assert_eq!(h.quantile_us(0.99), Some(128));
        assert_eq!(h.quantile_us(0.0), Some(2), "min rank clamps to 1 sample");
        assert_eq!(h.quantile_us(1.0), Some(128));
        let mean = h.mean_us().unwrap();
        assert!((mean - 50.5).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), None);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = Histogram::default();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(Duration::from_micros(x % 1_000_000));
        }
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile_us(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn snapshot_renders_every_line() {
        let m = Metrics::default();
        m.accepted.add(10);
        m.tenant(3).accepted.add(7);
        m.tenant(3 + TENANT_SLOTS as u16).accepted.add(1); // striped alias
        m.latency.record(Duration::from_micros(500));
        let text = m.snapshot().to_string();
        assert!(text.contains("apim_serve_accepted_total 10"));
        assert!(text.contains("apim_serve_latency_p50_us 512"));
        assert!(text.contains("slot=\"3\""));
        assert!(text.contains("accepted=8"), "aliased stripe sums: {text}");
    }
}
