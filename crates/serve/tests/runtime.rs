//! Multi-thread integration tests of the serving runtime: admission
//! control under pressure, drain/shutdown completeness, panic isolation,
//! retry/backoff, deadlines and loadgen determinism.

use apim::App;
use apim_serve::{loadgen, FaultPlan, JobKind, Pool, PoolConfig, Request, ServeError, TenantId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A moderately expensive request (~ms of kernel work) for queue-pressure
/// tests.
fn run_request(app: App) -> Request {
    Request::new(JobKind::Run {
        app,
        dataset_bytes: 64 << 20,
    })
}

fn small_pool(workers: usize, queue_depth: usize) -> Pool {
    Pool::new(PoolConfig {
        workers,
        queue_depth,
        max_batch: 4,
        ..PoolConfig::default()
    })
    .expect("valid pool")
}

#[test]
fn queue_fills_to_overloaded_and_drain_loses_nothing() {
    let pool = Arc::new(small_pool(2, 4));
    let max_depth_seen = Arc::new(AtomicUsize::new(0));
    // Four producers race 25 submissions each against two slow workers.
    let mut accepted_handles = Vec::new();
    let mut rejected = 0usize;
    std::thread::scope(|scope| {
        let mut producers = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let max_depth_seen = Arc::clone(&max_depth_seen);
            producers.push(scope.spawn(move || {
                let mut handles = Vec::new();
                let mut rejections = 0usize;
                for _ in 0..25 {
                    max_depth_seen.fetch_max(pool.queue_depth(), Ordering::Relaxed);
                    match pool.submit(run_request(App::Fft)) {
                        Ok(handle) => handles.push(handle),
                        Err(e) => {
                            assert!(
                                matches!(e, ServeError::Overloaded { depth: 4 }),
                                "unexpected rejection {e:?}"
                            );
                            rejections += 1;
                        }
                    }
                }
                (handles, rejections)
            }));
        }
        for producer in producers {
            let (handles, rejections) = producer.join().unwrap();
            accepted_handles.extend(handles);
            rejected += rejections;
        }
    });
    assert!(rejected > 0, "4 producers vs depth-4 queue must overload");
    assert!(
        max_depth_seen.load(Ordering::Relaxed) <= 4,
        "queue depth stayed bounded"
    );
    pool.drain();
    // Every accepted request is answered, successfully, exactly once.
    let accepted = accepted_handles.len();
    for handle in accepted_handles {
        let response = handle.try_wait().expect("drained pool answered everything");
        assert!(response.result.is_ok(), "{:?}", response.result);
    }
    let snapshot = pool.metrics().snapshot();
    assert_eq!(snapshot.accepted, accepted as u64);
    assert_eq!(snapshot.completed, accepted as u64);
    assert_eq!(snapshot.rejected, rejected as u64);
    assert_eq!(snapshot.failed, 0);
    assert_eq!(snapshot.queue_depth, 0);
}

#[test]
fn shutdown_answers_the_entire_backlog() {
    let pool = small_pool(2, 64);
    let handles: Vec<_> = (0..32)
        .map(|_| pool.submit(run_request(App::QuasiRandom)).expect("room"))
        .collect();
    pool.shutdown();
    for handle in handles {
        let response = handle.try_wait().expect("shutdown completed the backlog");
        assert!(response.result.is_ok());
    }
}

#[test]
fn panicking_worker_neither_deadlocks_nor_loses_requests() {
    let pool = Pool::new(PoolConfig {
        workers: 3,
        queue_depth: 64,
        max_retries: 3,
        retry_backoff: Duration::from_micros(100),
        fault: FaultPlan::PanicEvery(3),
        ..PoolConfig::default()
    })
    .expect("valid pool");
    let handles: Vec<_> = (0..30)
        .map(|_| pool.submit(run_request(App::QuasiRandom)).expect("room"))
        .collect();
    let mut completed = 0u64;
    let mut panicked = 0u64;
    for handle in handles {
        match handle.wait().result {
            Ok(_) => completed += 1,
            Err(ServeError::WorkerPanicked) => panicked += 1,
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert_eq!(completed + panicked, 30, "every request answered");
    assert!(completed > 0, "retries recover most injected panics");
    let snapshot = pool.metrics().snapshot();
    assert_eq!(snapshot.completed, completed);
    assert_eq!(snapshot.failed, panicked);
    assert!(snapshot.retries > 0, "panics triggered the retry path");
    pool.shutdown();
}

#[test]
fn injected_faults_are_retried_with_backoff() {
    let pool = Pool::new(PoolConfig {
        workers: 1,
        queue_depth: 16,
        max_retries: 4,
        retry_backoff: Duration::from_micros(50),
        fault: FaultPlan::FailEvery(2),
        ..PoolConfig::default()
    })
    .expect("valid pool");
    let handles: Vec<_> = (0..10)
        .map(|i| {
            pool.submit(Request::new(JobKind::Multiply { a: i, b: i + 1 }))
                .expect("room")
        })
        .collect();
    for handle in handles {
        let response = handle.wait();
        // Every 2nd attempt fails, so every request eventually succeeds
        // within one retry.
        assert!(response.result.is_ok(), "{:?}", response.result);
        assert!(response.attempts <= 2);
    }
    assert!(pool.metrics().snapshot().retries > 0);
    pool.shutdown();
}

#[test]
fn expired_deadline_is_a_structured_error() {
    let pool = small_pool(1, 16);
    // Stall the single worker, then submit a request that expires in the
    // queue behind it.
    let stall = pool.submit(run_request(App::Fft)).expect("room");
    let doomed = pool
        .submit(Request::new(JobKind::Multiply { a: 1, b: 2 }).deadline(Duration::from_nanos(1)))
        .expect("room");
    assert!(matches!(
        doomed.wait().result,
        Err(ServeError::DeadlineExceeded)
    ));
    assert!(stall.wait().result.is_ok());
    pool.shutdown();
}

#[test]
fn tenant_quota_rejects_the_greedy_tenant_only() {
    let pool = Pool::new(PoolConfig {
        workers: 1,
        queue_depth: 16,
        per_tenant_quota: Some(2),
        ..PoolConfig::default()
    })
    .expect("valid pool");
    // Stall the worker so submissions stay queued.
    let stall = pool.submit(run_request(App::Fft)).expect("room");
    let greedy = TenantId(1);
    let mut results = Vec::new();
    for _ in 0..4 {
        results.push(pool.submit(Request::new(JobKind::Multiply { a: 1, b: 2 }).tenant(greedy)));
    }
    let quota_rejections = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::QuotaExceeded { tenant }) if *tenant == greedy))
        .count();
    assert!(quota_rejections > 0, "tenant 1 exceeded its 2-slot quota");
    // A different tenant still gets in.
    let other = pool
        .submit(Request::new(JobKind::Multiply { a: 3, b: 4 }).tenant(TenantId(2)))
        .expect("other tenants unaffected");
    pool.drain();
    assert!(other.wait().result.is_ok());
    assert!(stall.wait().result.is_ok());
    pool.shutdown();
}

#[test]
fn batches_coalesce_same_key_requests() {
    let pool = Pool::new(PoolConfig {
        workers: 1,
        queue_depth: 64,
        max_batch: 8,
        ..PoolConfig::default()
    })
    .expect("valid pool");
    // Stall the worker, then enqueue 8 identical-key requests: they should
    // ride in far fewer than 8 batches.
    let stall = pool.submit(run_request(App::Fft)).expect("room");
    let handles: Vec<_> = (0..8)
        .map(|_| pool.submit(run_request(App::QuasiRandom)).expect("room"))
        .collect();
    for handle in handles {
        assert!(handle.wait().result.is_ok());
    }
    assert!(stall.wait().result.is_ok());
    let snapshot = pool.metrics().snapshot();
    assert!(
        snapshot.coalesced >= 2,
        "same-key requests shared a batch: {snapshot:?}"
    );
    assert!(
        snapshot.batches < 9,
        "8 same-key requests + 1 stall took {} batches",
        snapshot.batches
    );
    pool.shutdown();
}

#[test]
fn transcendental_compile_requests_serve_end_to_end() {
    // Request lines carrying sin/sqrt programs go through admission
    // parsing, worker-side compilation (CORDIC / restoring-isqrt
    // expansion) and gate-level execution — the full compile→verify→serve
    // path for the transcendental kernels. Unbound inputs default to
    // their declaration index + 1, well inside both domains.
    let pool = small_pool(2, 8);
    let lines = [
        "@1 compile width 10; in x; out sin(x)",
        "@2 compile width 12; in x; out sqrt(x) + 1",
        "@3 compile width 10; math lut 2; in x; out cos(x)",
    ];
    let handles: Vec<_> = lines
        .iter()
        .map(|line| {
            let request = Request::parse_line(line).expect("admission parse");
            pool.submit(request).expect("room")
        })
        .collect();
    pool.drain();
    for handle in handles {
        let response = handle.try_wait().expect("drained pool answered");
        let output = response.result.expect("compiled program served");
        let summary = output.summary();
        assert!(summary.contains("compiled"), "{summary}");
        assert!(summary.contains("cycles"), "{summary}");
    }
    pool.shutdown();
}

#[test]
fn zero_workers_is_a_structured_error() {
    let err = Pool::new(PoolConfig {
        workers: 0,
        ..PoolConfig::default()
    })
    .unwrap_err();
    assert!(err.to_string().contains("zero"), "{err}");
}

#[test]
fn loadgen_is_deterministic_across_seeds_and_worker_counts() {
    let run = |workers: usize| {
        loadgen::run(&loadgen::LoadgenConfig {
            requests: 40,
            seed: 11,
            pool: PoolConfig {
                workers,
                queue_depth: 64, // ≥ requests: nothing rejected
                ..PoolConfig::default()
            },
        })
        .expect("loadgen runs")
    };
    let a = run(2);
    let b = run(2);
    let c = run(4);
    assert_eq!(a.accepted, 40);
    assert_eq!(a.failed, 0);
    assert_eq!(a.checksum, b.checksum, "same seed, same workers");
    assert_eq!(
        a.checksum, c.checksum,
        "results do not depend on scheduling"
    );
    assert_eq!(a.completed, c.completed);

    let other_seed = loadgen::run(&loadgen::LoadgenConfig {
        requests: 40,
        seed: 12,
        pool: PoolConfig {
            workers: 2,
            queue_depth: 64,
            ..PoolConfig::default()
        },
    })
    .expect("loadgen runs");
    assert_ne!(a.checksum, other_seed.checksum, "seed changes the mix");
}

/// The acceptance-criteria perf gate: ≥ 4 workers achieve ≥ 2× the
/// throughput of 1 worker on the same seeded mix. Ignored by default
/// (timing-sensitive); CI runs it in release via the serve-smoke step.
#[test]
#[ignore = "timing-sensitive; run explicitly (CI serve-smoke, --release)"]
fn perf_4_workers_at_least_2x_1_worker() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping scaling gate: {cores} core(s) available, need >= 4");
        return;
    }
    let run = |workers: usize| {
        loadgen::run(&loadgen::LoadgenConfig {
            requests: 200,
            seed: 7,
            pool: PoolConfig {
                workers,
                queue_depth: 1024,
                ..PoolConfig::default()
            },
        })
        .expect("loadgen runs")
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.completed, parallel.completed, "same accepted work");
    assert!(
        parallel.throughput_rps >= 2.0 * serial.throughput_rps,
        "wanted ≥2x: 1 worker {:.1} req/s, 4 workers {:.1} req/s",
        serial.throughput_rps,
        parallel.throughput_rps
    );
}

/// Varied sharpen pixel requests: small positive taps with the center
/// dominating, so the exact Q12 kernel reduces to `5c − (n+w+e+s)`.
fn sharpen_pixels(count: usize) -> Vec<Request> {
    (0..count as u64)
        .map(|i| {
            Request::new(JobKind::Pixel {
                app: App::Sharpen,
                taps: vec![100 + i, 3 + i, 5 + i, 7 + i, 11 + i],
            })
        })
        .collect()
}

/// The lane-batched coalescer satellite gate: the same pixel workload run
/// through the fast path (one `compile_batched` pass per popped batch) and
/// the serial oracle (one compiled pass per pixel) yields bit-identical
/// values and digests, the fast path actually lane-batches, and the whole
/// batch finishes faster than the serial pool.
#[test]
fn lane_batched_pixels_match_serial_digests_and_cut_latency() {
    use apim_serve::{loadgen::output_digest, JobOutput};
    use std::time::Instant;

    let mut requests = sharpen_pixels(24);
    for i in 0..12u64 {
        requests.push(Request::new(JobKind::Pixel {
            app: App::Sobel,
            taps: vec![1 + i, 40 + i, 2 + i, 50 + i, 3 + i, 60 + i],
        }));
    }
    let pool = |lane_batch| {
        Pool::new(PoolConfig {
            workers: 1,
            max_batch: 64,
            lane_batch,
            ..PoolConfig::default()
        })
        .expect("valid pool")
    };
    let fast_pool = pool(true);
    let slow_pool = pool(false);
    let started = Instant::now();
    let fast = fast_pool.run_all(requests.clone()).expect("fast run_all");
    let fast_elapsed = started.elapsed();
    let started = Instant::now();
    let slow = slow_pool.run_all(requests.clone()).expect("slow run_all");
    let slow_elapsed = started.elapsed();

    assert_eq!(fast.len(), requests.len());
    for (index, (f, s)) in fast.iter().zip(&slow).enumerate() {
        let (fast_out, slow_out) = match (&f.result, &s.result) {
            (Ok(f), Ok(s)) => (f, s),
            other => panic!("pixel {index} failed: {other:?}"),
        };
        assert_eq!(
            output_digest(fast_out),
            output_digest(slow_out),
            "pixel {index} digests diverge"
        );
        match (fast_out, slow_out) {
            (
                JobOutput::Pixel {
                    value: fv,
                    lanes: fl,
                    ..
                },
                JobOutput::Pixel {
                    value: sv,
                    lanes: sl,
                    ..
                },
            ) => {
                assert_eq!(fv, sv, "pixel {index} values diverge");
                // The coalescer groups by (app, mode): 24 sharpen lanes,
                // then 12 sobel lanes; the oracle runs one lane at a time.
                assert_eq!(*fl, if index < 24 { 24 } else { 12 }, "pixel {index}");
                assert_eq!(*sl, 1, "pixel {index}");
            }
            other => panic!("pixel {index}: unexpected outputs {other:?}"),
        }
    }
    // Spot-check the oracle itself against the closed-form kernel.
    match &slow[0].result {
        Ok(JobOutput::Pixel { value, .. }) => {
            assert_eq!(*value, 5 * 100 - (3 + 5 + 7 + 11));
        }
        other => panic!("unexpected oracle output {other:?}"),
    }
    // One compiled pass per batch vs one per pixel: the fast pool must win
    // outright, 36 compile+verify cycles against 2.
    assert!(
        fast_elapsed < slow_elapsed,
        "lane batching did not cut latency: fast {fast_elapsed:?}, slow {slow_elapsed:?}"
    );
}

/// The submit path coalesces pixels too: a full queue popped as one batch
/// answers every pixel correctly (lane-batched when the pop catches the
/// whole group, serially otherwise — either way, identical values).
#[test]
fn submitted_pixel_batches_answer_every_lane() {
    use apim_serve::JobOutput;

    let pool = Pool::new(PoolConfig {
        workers: 1,
        queue_depth: 64,
        max_batch: 16,
        ..PoolConfig::default()
    })
    .expect("valid pool");
    let handles: Vec<_> = sharpen_pixels(16)
        .into_iter()
        .map(|request| pool.submit(request).expect("queue has room"))
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let response = handle.wait();
        match response.result {
            Ok(JobOutput::Pixel { value, lanes, .. }) => {
                let i = i as u64;
                assert_eq!(value, 5 * (100 + i) - (3 + i + 5 + i + 7 + i + 11 + i));
                assert!((1..=16).contains(&lanes), "lanes {lanes}");
            }
            other => panic!("pixel {i} failed: {other:?}"),
        }
    }
    pool.shutdown();
}
