//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of proptest it uses: the `proptest!` macro
//! with `var in strategy` and `var: Type` parameters, range / tuple /
//! `collection::vec` strategies, `any::<T>()`, `prop_assert!` /
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Semantics are simplified relative to upstream: cases are drawn from a
//! deterministic per-test RNG (seeded from the test name, so runs are
//! reproducible), there is no shrinking, and a failed assertion panics
//! immediately like a plain `assert!`.

#![deny(missing_docs)]

/// Test-runner configuration and the deterministic RNG behind each test.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 32 keeps gate-level crossbar
            // simulations inside the tests' time budget while still
            // exercising a spread of operands.
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic SplitMix64 stream used to generate test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name so each test gets a
        /// distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next raw 128-bit output.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = self.end.wrapping_sub(self.start) as $u as u128;
                    let off = (rng.next_u128() % span) as $u;
                    self.start.wrapping_add(off as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = hi.wrapping_sub(lo) as $u as u128;
                    if span == <$u>::MAX as u128 {
                        return rng.next_u128() as $u as $t;
                    }
                    let off = (rng.next_u128() % (span + 1)) as $u;
                    lo.wrapping_add(off as $t)
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    (self.start..=<$t>::MAX).sample(rng)
                }
            }
        )*};
    }

    impl_int_ranges!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128,
        usize => usize, i8 => u8, i16 => u16, i32 => u32, i64 => u64,
        i128 => u128, isize => usize
    );

    macro_rules! impl_float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let frac = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + frac * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    (*self.start()..(*self.end() + <$t>::EPSILON)).sample(rng)
                }
            }
        )*};
    }

    impl_float_ranges!(f32, f64);

    macro_rules! impl_tuples {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuples!((A, B)(A, B, C)(A, B, C, D));
}

/// `any::<T>()` and the trait backing bare `var: Type` parameters.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.lo..=self.size.hi).sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests. Each `#[test] fn` in the block runs
/// `ProptestConfig::cases` times with fresh random bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident ( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $crate::__proptest_bind! { __rng, $body, $($params)* }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block, ) => { $body };
    ($rng:ident, $body:block, $var:ident in $strat:expr $(,)?) => {{
        let $var = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $body
    }};
    ($rng:ident, $body:block, $var:ident in $strat:expr, $($rest:tt)+) => {{
        let $var = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $body, $($rest)+ }
    }};
    ($rng:ident, $body:block, $var:ident : $ty:ty $(,)?) => {{
        let $var = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $body
    }};
    ($rng:ident, $body:block, $var:ident : $ty:ty, $($rest:tt)+) => {{
        let $var = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng, $body, $($rest)+ }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 0u64..256, b in 1u32.., c in -6i16..=6, f in 0.0f64..1.0) {
            prop_assert!(a < 256);
            prop_assert!(b >= 1);
            prop_assert!((-6..=6).contains(&c));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn bare_types_and_tuples_bind(x: u32, pair in (0u64..8, 0u64..8), flag: bool) {
            let _ = (x, flag);
            prop_assert!(pair.0 < 8 && pair.1 < 8);
        }

        #[test]
        fn wide_u128_ranges_sample(v in 0u128..1 << 100) {
            prop_assert!(v < 1 << 100);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u8..=255, 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_form_parses(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    fn fixed_size_vec_is_exact() {
        let mut rng = TestRng::from_name("fixed");
        let v = Strategy::sample(&crate::collection::vec(0u8..=255, 16), &mut rng);
        assert_eq!(v.len(), 16);
    }
}
