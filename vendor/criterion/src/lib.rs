//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of criterion it uses: `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of statistical sampling this stub times a small fixed number of
//! iterations and prints a mean per-iteration figure. When invoked by
//! `cargo test` (which passes `--test` to `harness = false` bench targets)
//! each benchmark body runs exactly once, as a smoke test.

#![deny(missing_docs)]

use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.nanos_per_iter = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let iters = if test_mode() {
        1
    } else {
        samples.max(1) as u64
    };
    let mut bencher = Bencher {
        iters,
        nanos_per_iter: 0.0,
    };
    f(&mut bencher);
    if !test_mode() {
        println!(
            "bench {id}: {:.1} ns/iter ({iters} iters)",
            bencher.nanos_per_iter
        );
    }
}

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("inner", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }
}
