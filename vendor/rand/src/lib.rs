//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of `rand` 0.8 it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges. The generator is a SplitMix64
//! stream — deterministic for a given seed, statistically fine for test-data
//! synthesis, and explicitly *not* cryptographic (neither is the use here).

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random-number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the subset of `rand::Rng` used here.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// A range type from which [`Rng::gen_range`] can sample a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

fn sample_span<R: Rng>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
    wide % span
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let frac = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + frac * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Pseudo-random generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator backed by SplitMix64.
    ///
    /// Unlike the upstream ChaCha-based `StdRng`, this is not a CSPRNG; the
    /// workspace only uses it to synthesise reproducible test inputs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(120..=255);
            assert!(w >= 120);
            let s: i16 = rng.gen_range(-6..=6);
            assert!((-6..=6).contains(&s));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
