pub use apim;
