//! Workspace-level property tests through the public facade.

use apim::prelude::*;
use apim::App;
use proptest::prelude::*;

proptest! {
    #[test]
    fn facade_multiply_exact_equals_native(a: u32, b: u32) {
        let apim = Apim::default();
        let report = apim.multiply(u64::from(a), u64::from(b), PrecisionMode::Exact);
        prop_assert_eq!(report.product, u128::from(a) * u128::from(b));
    }

    #[test]
    fn facade_multiply_relaxed_bounds_error(a in 1u32.., b in 1u32.., m in 0u8..=32) {
        let apim = Apim::default();
        let report = apim.multiply(
            u64::from(a),
            u64::from(b),
            PrecisionMode::LastStage { relax_bits: m },
        );
        let exact = u128::from(a) * u128::from(b);
        prop_assert!(report.product.abs_diff(exact) < 1u128 << m || report.product == exact);
    }

    #[test]
    fn deeper_relaxation_never_costs_more(m1 in 0u8..32, delta in 1u8..=8) {
        let m2 = m1.saturating_add(delta).min(64);
        let apim = Apim::default();
        let c1 = apim.multiply(0xDEAD_BEEF, 0x1234_5677, PrecisionMode::LastStage { relax_bits: m1 });
        let c2 = apim.multiply(0xDEAD_BEEF, 0x1234_5677, PrecisionMode::LastStage { relax_bits: m2 });
        prop_assert!(c2.cost.cycles <= c1.cost.cycles);
        prop_assert!(c2.cost.energy.as_joules() <= c1.cost.energy.as_joules());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn app_costs_scale_linearly_with_dataset(seed in 0u64..1000) {
        let apim = Apim::default();
        let app = App::all()[(seed % 6) as usize];
        let small = apim.run_with_mode(app, 64 << 20, PrecisionMode::Exact).unwrap();
        let large = apim.run_with_mode(app, 512 << 20, PrecisionMode::Exact).unwrap();
        let ratio = large.apim.time / small.apim.time;
        prop_assert!((ratio - 8.0).abs() < 0.5, "time ratio {}", ratio);
    }

    #[test]
    fn comparisons_are_internally_consistent(mb in 32u64..=1024, app_idx in 0usize..6) {
        let apim = Apim::default();
        let app = App::all()[app_idx];
        let run = apim.run_with_mode(app, mb << 20, PrecisionMode::Exact).unwrap();
        let c = &run.comparison;
        let recomputed = run.gpu.time / run.apim.time;
        prop_assert!((c.speedup - recomputed).abs() < 1e-9 * recomputed.abs());
        let edp = c.speedup * c.energy_improvement;
        prop_assert!((c.edp_improvement - edp).abs() < 1e-6 * edp);
    }
}
