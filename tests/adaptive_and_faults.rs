//! Integration tests for the adaptive QoS controller against real kernel
//! quality, and for the fault-injection extension.

use apim::prelude::*;
use apim::App;
use apim_crossbar::Fault;
use apim_logic::multiplier::CrossbarMultiplier;
use apim_workloads::{run_app, RunConfig};

/// The controller must settle on a *boundary-optimal* level: the chosen
/// mode is acceptable while one more 4-bit step of relaxation is not
/// (unless it already accepted the maximum).
#[test]
fn adaptive_settles_on_the_qos_boundary() {
    for app in App::all() {
        let acceptable = |m: u32| {
            run_app(
                app,
                &RunConfig {
                    mode: PrecisionMode::LastStage {
                        relax_bits: m as u8,
                    },
                    ..RunConfig::default()
                },
            )
            .quality
            .acceptable
        };
        let outcome = AdaptiveController::paper().tune(|mode| {
            run_app(
                app,
                &RunConfig {
                    mode,
                    ..RunConfig::default()
                },
            )
            .quality
            .acceptable
        });
        let chosen = outcome.mode.relaxed_product_bits();
        assert!(acceptable(chosen), "{app}: chosen level must be acceptable");
        if chosen < 32 {
            assert!(
                !acceptable(chosen + 4),
                "{app}: one more step must break QoS (chosen {chosen})"
            );
        }
    }
}

#[test]
fn adaptive_trial_count_matches_trajectory() {
    for app in [App::Sobel, App::Fft] {
        let outcome = AdaptiveController::paper().tune(|mode| {
            run_app(
                app,
                &RunConfig {
                    mode,
                    ..RunConfig::default()
                },
            )
            .quality
            .acceptable
        });
        let expected_trials = (32 - outcome.mode.relaxed_product_bits()) / 4 + 1;
        assert_eq!(outcome.trials, expected_trials, "{app}");
    }
}

#[test]
fn stuck_at_fault_corrupts_products_deterministically() {
    let params = apim::DeviceParams::default();
    let mut mul = CrossbarMultiplier::new(8, &params).unwrap();
    let clean = mul
        .multiply(200, 170, PrecisionMode::Exact)
        .unwrap()
        .product;
    assert_eq!(clean, 200 * 170);

    // Stick a partial-product cell high: products using that bitline
    // corrupt, and repeatably so.
    let pp_block = mul.crossbar().block(2).unwrap();
    mul.crossbar_mut()
        .inject_fault(pp_block, 0, 3, Some(Fault::StuckAtOne))
        .unwrap();
    let faulty_a = mul
        .multiply(200, 170, PrecisionMode::Exact)
        .unwrap()
        .product;
    let faulty_b = mul
        .multiply(200, 170, PrecisionMode::Exact)
        .unwrap()
        .product;
    assert_eq!(faulty_a, faulty_b, "fault effects are deterministic");
    assert_ne!(faulty_a, clean, "the stuck bit must corrupt this product");

    // Clearing the fault restores correctness.
    mul.crossbar_mut()
        .inject_fault(pp_block, 0, 3, None)
        .unwrap();
    assert_eq!(
        mul.multiply(200, 170, PrecisionMode::Exact)
            .unwrap()
            .product,
        clean
    );
}

#[test]
fn stuck_at_zero_is_caught_by_the_init_discipline() {
    // A MAGIC output cell stuck at 0 can never be initialized to the ON
    // state; the crossbar's strict initialization check turns what would
    // be silent corruption into a detectable execution error — a free
    // fault-detection property of the init-then-evaluate discipline.
    let params = apim::DeviceParams::default();
    let mut mul = CrossbarMultiplier::new(8, &params).unwrap();
    let p0 = mul.crossbar().block(1).unwrap();
    let not_row = mul.crossbar().rows() - 1;
    mul.crossbar_mut()
        .inject_fault(p0, not_row, 0, Some(Fault::StuckAtZero))
        .unwrap();
    let err = mul
        .multiply(0b1010_1010, 0b11, PrecisionMode::Exact)
        .unwrap_err();
    assert!(
        matches!(
            err,
            apim_crossbar::CrossbarError::UninitializedOutput { .. }
        ),
        "got {err}"
    );
    // Clearing the fault restores operation.
    mul.crossbar_mut()
        .inject_fault(p0, not_row, 0, None)
        .unwrap();
    let run = mul
        .multiply(0b1010_1010, 0b11, PrecisionMode::Exact)
        .unwrap();
    assert_eq!(run.product, 0b1010_1010u128 * 0b11);
}

#[test]
fn endurance_counters_accumulate_with_use() {
    let params = apim::DeviceParams::default();
    let mut mul = CrossbarMultiplier::new(8, &params).unwrap();
    let mut last = 0;
    for i in 0..4 {
        mul.multiply(123, 231, PrecisionMode::Exact).unwrap();
        let now = mul.crossbar().max_cell_writes();
        assert!(now > last, "iteration {i}: wear must accumulate");
        last = now;
    }
}
