//! Cross-layer consistency: the repo's central invariant chain checked
//! through public APIs only — gate-level crossbar simulation == pure
//! functional semantics == native integer math (exact mode), with cycle
//! counts equal to the analytic cost model.

use apim::{DeviceParams, PrecisionMode};
use apim_logic::error_analysis::SplitMix64;
use apim_logic::multiplier::CrossbarMultiplier;
use apim_logic::{functional, CostModel};

#[test]
fn sixteen_bit_multiplier_chain_holds_across_modes() {
    let params = DeviceParams::default();
    let mut mul = CrossbarMultiplier::new(16, &params).unwrap();
    let model = CostModel::new(&params);
    let mut rng = SplitMix64::new(0xC0FFEE);
    for _ in 0..10 {
        let a = rng.next_bits(16);
        let b = rng.next_bits(16);
        for mode in [
            PrecisionMode::Exact,
            PrecisionMode::FirstStage { masked_bits: 5 },
            PrecisionMode::LastStage { relax_bits: 10 },
            PrecisionMode::LastStage { relax_bits: 32 },
        ] {
            let run = mul.multiply(a, b, mode).unwrap();
            assert_eq!(
                run.product,
                functional::multiply(a, b, 16, mode),
                "{a}x{b} {mode}: gate-level vs functional"
            );
            if mode == PrecisionMode::Exact {
                assert_eq!(run.product, a as u128 * b as u128, "{a}x{b}: vs native");
            }
            assert_eq!(
                run.stats.cycles,
                model.multiply(16, b, mode).cycles,
                "{a}x{b} {mode}: cycles vs analytic model"
            );
        }
    }
}

#[test]
fn thirty_two_bit_multiplier_spot_check() {
    let params = DeviceParams::default();
    let mut mul = CrossbarMultiplier::new(32, &params).unwrap();
    let model = CostModel::new(&params);
    let (a, b) = (0xDEAD_BEEFu64, 0x7654_3210u64);
    let run = mul.multiply(a, b, PrecisionMode::Exact).unwrap();
    assert_eq!(run.product, a as u128 * b as u128);
    assert_eq!(
        run.stats.cycles,
        model.multiply(32, b, PrecisionMode::Exact).cycles
    );
    let energy_rel = (run.stats.energy.as_joules()
        - model
            .multiply(32, b, PrecisionMode::Exact)
            .energy
            .as_joules())
    .abs()
        / run.stats.energy.as_joules();
    assert!(energy_rel < 1e-9, "energy mismatch {energy_rel}");
}

#[test]
fn workload_arith_matches_functional_semantics() {
    use apim_workloads::{ApimArith, Arith};
    let mode = PrecisionMode::LastStage { relax_bits: 20 };
    let mut arith = ApimArith::new(mode);
    for (a, b) in [(123_456i32, -987_654i32), (-4096, -8192), (77, 0)] {
        assert_eq!(
            arith.mul(a, b),
            functional::multiply_signed(i64::from(a), i64::from(b), 32, mode) as i64
        );
    }
}

#[test]
fn cost_model_is_device_parameter_sensitive() {
    let slow = CostModel::new(&DeviceParams {
        cycle_ns: 3.3,
        ..Default::default()
    });
    let fast = CostModel::new(&DeviceParams::default());
    let cost = fast.multiply_expected(32, PrecisionMode::Exact);
    let cost_slow = slow.multiply_expected(32, PrecisionMode::Exact);
    // Same cycles, different wall-clock.
    assert_eq!(cost.cycles, cost_slow.cycles);
    let ratio = slow.latency(cost_slow) / fast.latency(cost);
    assert!((ratio - 3.0).abs() < 1e-9);
}
