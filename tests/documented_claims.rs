//! Regression guards for the numbers documented in `EXPERIMENTS.md` and
//! the README results table — if a model change moves them materially,
//! these tests fail and the documents must be re-measured.

use apim::campaign::Campaign;
use apim::{App, PrecisionMode};

/// The documented Table 1 exact-mode EDP improvements at 1 GB.
const DOCUMENTED_EDP_EXACT: [(App, f64); 6] = [
    (App::Sobel, 129.0),
    (App::Robert, 177.0),
    (App::Fft, 200.0),
    (App::DwtHaar1d, 88.0),
    (App::Sharpen, 107.0),
    (App::QuasiRandom, 68.0),
];

#[test]
fn table1_exact_column_matches_experiments_md() {
    let results = Campaign::new().run().unwrap();
    for (app, documented) in DOCUMENTED_EDP_EXACT {
        let row = results
            .rows()
            .iter()
            .find(|r| r.app == app)
            .expect("app in campaign");
        let measured = row.comparison.edp_improvement;
        let rel = (measured - documented).abs() / documented;
        assert!(
            rel < 0.15,
            "{app}: measured {measured:.0}x drifted from documented {documented:.0}x"
        );
    }
}

#[test]
fn headline_sobel_point_matches_readme() {
    // README: "26.9× energy, 4.81× speedup (Sobel)" at 1 GB.
    let results = Campaign::new().apps([App::Sobel]).run().unwrap();
    let run = &results.rows()[0];
    assert!(
        (run.comparison.energy_improvement - 26.9).abs() < 4.0,
        "energy {:.1}",
        run.comparison.energy_improvement
    );
    assert!(
        (run.comparison.speedup - 4.81).abs() < 0.7,
        "speedup {:.2}",
        run.comparison.speedup
    );
}

#[test]
fn documented_32bit_column_band_holds() {
    // EXPERIMENTS.md: 32-bit column spans ~240–810×.
    let results = Campaign::new()
        .modes([PrecisionMode::LastStage { relax_bits: 32 }])
        .run()
        .unwrap();
    let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
    for r in results.rows() {
        lo = lo.min(r.comparison.edp_improvement);
        hi = hi.max(r.comparison.edp_improvement);
    }
    assert!((200.0..320.0).contains(&lo), "min {lo:.0}");
    assert!((650.0..950.0).contains(&hi), "max {hi:.0}");
}

#[test]
fn adaptive_outcomes_match_experiments_md() {
    // EXPERIMENTS.md: apps settle at 24–28 relax bits in 2–3 trials.
    let apim = apim::Apim::default();
    for app in App::all() {
        let outcome = apim.tune(app);
        let m = outcome.mode.relaxed_product_bits();
        assert!(
            (20..=32).contains(&m),
            "{app}: settled at {m} bits (documented 24–28)"
        );
        assert!(outcome.trials <= 4, "{app}: {} trials", outcome.trials);
    }
}
