//! End-to-end integration: the public facade exercised the way a
//! downstream user would.

use apim::prelude::*;
use apim::{ApimError, App};

#[test]
fn every_app_runs_exactly_and_losslessly() {
    let apim = Apim::default();
    for app in App::all() {
        let run = apim
            .run_with_mode(app, 256 << 20, PrecisionMode::Exact)
            .expect("fits capacity");
        assert_eq!(run.quality.qol_percent, 0.0, "{app}");
        assert!(run.quality.acceptable, "{app}");
        assert!(run.apim.time.as_secs() > 0.0, "{app}");
        assert!(run.apim.energy.as_joules() > 0.0, "{app}");
        assert!(run.gpu.time.as_secs() > 0.0, "{app}");
    }
}

#[test]
fn moderate_approximation_keeps_qos_and_gains() {
    let apim = Apim::default();
    for app in App::all() {
        let exact = apim
            .run_with_mode(app, 1 << 30, PrecisionMode::Exact)
            .unwrap();
        let relaxed = apim
            .run_with_mode(app, 1 << 30, PrecisionMode::LastStage { relax_bits: 8 })
            .unwrap();
        assert!(relaxed.quality.acceptable, "{app} must hold QoS at 8 bits");
        assert!(
            relaxed.apim.edp().as_joule_seconds() < exact.apim.edp().as_joule_seconds(),
            "{app}: relaxation must reduce EDP"
        );
        assert!(
            relaxed.comparison.edp_improvement > exact.comparison.edp_improvement,
            "{app}: GPU-normalized EDP improvement must grow"
        );
    }
}

#[test]
fn first_stage_mode_is_supported_end_to_end() {
    let apim = Apim::default();
    let run = apim
        .run_with_mode(
            App::Sharpen,
            128 << 20,
            PrecisionMode::FirstStage { masked_bits: 4 },
        )
        .unwrap();
    assert!(run.apim.time.as_secs() > 0.0);
    // Masking multiplier LSBs reduces partial products and therefore cost.
    let exact = apim
        .run_with_mode(App::Sharpen, 128 << 20, PrecisionMode::Exact)
        .unwrap();
    assert!(run.apim.time.as_secs() < exact.apim.time.as_secs());
}

#[test]
fn capacity_is_enforced() {
    let apim = Apim::new(
        ApimConfig::builder()
            .capacity_bytes(64 << 20)
            .build()
            .unwrap(),
    )
    .unwrap();
    assert!(apim
        .run_with_mode(App::Fft, 32 << 20, PrecisionMode::Exact)
        .is_ok());
    let err = apim
        .run_with_mode(App::Fft, 128 << 20, PrecisionMode::Exact)
        .unwrap_err();
    assert!(matches!(err, ApimError::Arch(_)));
    assert!(err.to_string().contains("exceeds"));
}

#[test]
fn custom_device_parameters_flow_through() {
    // A slower cycle time must slow everything down proportionally.
    let params = apim::DeviceParams {
        cycle_ns: 2.2,
        ..Default::default()
    };
    let slow = Apim::new(ApimConfig::builder().params(params).build().unwrap()).unwrap();
    let fast = Apim::default();
    let app = App::Robert;
    let t_slow = slow
        .run_with_mode(app, 256 << 20, PrecisionMode::Exact)
        .unwrap()
        .apim
        .time;
    let t_fast = fast
        .run_with_mode(app, 256 << 20, PrecisionMode::Exact)
        .unwrap()
        .apim
        .time;
    let ratio = t_slow / t_fast;
    assert!((ratio - 2.0).abs() < 1e-6, "cycle-time scaling: {ratio}");
}

#[test]
fn reports_render_for_humans() {
    let apim = Apim::default();
    let run = apim
        .run_with_mode(
            App::QuasiRandom,
            512 << 20,
            PrecisionMode::LastStage { relax_bits: 16 },
        )
        .unwrap();
    let text = run.to_string();
    assert!(text.contains("QuasiR"));
    assert!(text.contains("speedup"));
}
