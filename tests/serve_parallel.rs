//! Cross-crate test: the parallel campaign fast-path on the `apim-serve`
//! worker pool must be a drop-in replacement for the serial sweep —
//! identical rows, identical order, only the wall clock changes.

use apim::campaign::Campaign;
use apim::{App, PrecisionMode};
use apim_serve::{Pool, PoolConfig};

fn pool(workers: usize) -> Pool {
    Pool::new(PoolConfig {
        workers,
        ..PoolConfig::default()
    })
    .expect("valid pool")
}

fn campaign() -> Campaign {
    Campaign::new()
        .apps([App::Fft, App::QuasiRandom, App::DwtHaar1d])
        .dataset_mb([64, 256])
        .modes([
            PrecisionMode::Exact,
            PrecisionMode::LastStage { relax_bits: 8 },
        ])
}

#[test]
fn parallel_campaign_rows_are_identical_to_serial() {
    let serial = campaign().run().expect("serial sweep");
    let parallel = campaign().run_parallel(&pool(4)).expect("parallel sweep");
    assert_eq!(serial.rows().len(), 12);
    assert_eq!(serial.rows().len(), parallel.rows().len(), "same row count");
    for (s, p) in serial.rows().iter().zip(parallel.rows()) {
        // Bit-exact equality of every field, via the exhaustive Debug
        // rendering (RunReport holds floats, which must match exactly:
        // the parallel path runs the very same deterministic simulator).
        assert_eq!(format!("{s:?}"), format!("{p:?}"));
    }
    // And the derived artifacts agree too.
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn parallel_campaign_propagates_oversized_datasets() {
    let err = Campaign::new()
        .apps([App::Fft])
        .dataset_mb([1 << 20])
        .run_parallel(&pool(2))
        .unwrap_err();
    assert!(err.to_string().contains("exceeds"), "{err}");
}

#[test]
fn parallel_campaign_works_on_a_single_worker() {
    let serial = campaign().run().expect("serial sweep");
    let parallel = campaign().run_parallel(&pool(1)).expect("parallel sweep");
    assert_eq!(serial.to_csv(), parallel.to_csv());
}
