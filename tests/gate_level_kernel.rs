//! Flagship end-to-end test: a complete (tiny) convolution kernel executed
//! **entirely on simulated cells** — every multiply, every accumulate —
//! and checked against the functional semantics, with its cycle bill
//! matching the analytic model exactly.
//!
//! This is the strongest form of the repo's central invariant: not one
//! operation, but a whole kernel, gate level.

use apim::{DeviceParams, PrecisionMode};
use apim_logic::mac::{mac_trunc_functional, CrossbarMac};
use apim_logic::CostModel;

/// 3-tap causal convolution weights (non-dyadic, so approximation bites).
const TAPS: [u64; 3] = [3, 7, 5];

/// The signal (8-bit samples).
const SIGNAL: [u64; 10] = [12, 200, 7, 99, 250, 1, 63, 128, 33, 180];

fn conv_terms(i: usize) -> Vec<(u64, u64)> {
    TAPS.iter()
        .enumerate()
        .filter_map(|(k, &w)| {
            // Causal: output i uses samples i, i-1, i-2.
            i.checked_sub(k).map(|idx| (SIGNAL[idx], w))
        })
        .collect()
}

#[test]
fn whole_convolution_runs_gate_level() {
    for mode in [
        PrecisionMode::Exact,
        PrecisionMode::LastStage { relax_bits: 4 },
        PrecisionMode::LastStage { relax_bits: 8 },
    ] {
        let mut mac = CrossbarMac::new(8, 3, &DeviceParams::default()).unwrap();
        let model = CostModel::new(&DeviceParams::default());
        let mut total_cycles = 0u64;
        let mut outputs = Vec::new();
        for i in 0..SIGNAL.len() {
            let terms = conv_terms(i);
            let run = mac.mac(&terms, mode).unwrap();
            // Gate level == functional, per output.
            assert_eq!(
                run.value,
                mac_trunc_functional(&terms, 8, mode),
                "output {i} under {mode}"
            );
            // Cycle bill == analytic model, per output.
            let multipliers: Vec<u64> = terms.iter().map(|&(_, b)| b).collect();
            assert_eq!(
                run.stats.cycles,
                model.mac_group_value(8, &multipliers, mode).cycles,
                "output {i} cycles under {mode}"
            );
            total_cycles += run.stats.cycles.get();
            outputs.push(run.value);
        }
        // In exact mode the whole kernel equals the native convolution.
        if mode == PrecisionMode::Exact {
            let native: Vec<u64> = (0..SIGNAL.len())
                .map(|i| {
                    conv_terms(i)
                        .iter()
                        .fold(0u64, |acc, &(a, b)| acc.wrapping_add(a * b))
                        & 0xFF
                })
                .collect();
            assert_eq!(outputs, native, "gate-level kernel == native kernel");
        }
        assert!(total_cycles > 0);
    }
}

#[test]
fn relaxation_cuts_the_whole_kernel_cost() {
    let run_kernel = |mode: PrecisionMode| -> (u64, f64) {
        let mut mac = CrossbarMac::new(8, 3, &DeviceParams::default()).unwrap();
        let mut cycles = 0;
        let mut energy = 0.0;
        for i in 0..SIGNAL.len() {
            let run = mac.mac(&conv_terms(i), mode).unwrap();
            cycles += run.stats.cycles.get();
            energy += run.stats.energy.as_joules();
        }
        (cycles, energy)
    };
    let (exact_cycles, exact_energy) = run_kernel(PrecisionMode::Exact);
    let (relaxed_cycles, relaxed_energy) = run_kernel(PrecisionMode::LastStage { relax_bits: 8 });
    assert!(relaxed_cycles < exact_cycles);
    assert!(relaxed_energy < exact_energy);
    let edp_gain = (exact_cycles as f64 * exact_energy) / (relaxed_cycles as f64 * relaxed_energy);
    assert!(edp_gain > 1.5, "whole-kernel EDP gain {edp_gain:.2}");
}

#[test]
fn relaxed_kernel_output_stays_close() {
    let mut mac = CrossbarMac::new(8, 3, &DeviceParams::default()).unwrap();
    let mut max_err = 0u64;
    for i in 0..SIGNAL.len() {
        let terms = conv_terms(i);
        let exact = mac.mac(&terms, PrecisionMode::Exact).unwrap().value;
        let relaxed = mac
            .mac(&terms, PrecisionMode::LastStage { relax_bits: 4 })
            .unwrap()
            .value;
        max_err = max_err.max(exact.abs_diff(relaxed));
    }
    assert!(max_err < 16, "4 relax bits bound the error: {max_err}");
}
