//! Smoke tests of the figure/table regeneration harness — every exhibit of
//! the paper must generate and carry its headline claim.
//!
//! (The harness's own unit tests check the claims in detail; these
//! integration tests pin the cross-crate wiring.)

use apim_bench::{fig4, fig5, fig6, headline, table1};

#[test]
fn figure4_generates_with_the_accuracy_gap() {
    let data = fig4::generate();
    assert_eq!(data.first_stage.len(), 17);
    assert_eq!(data.last_stage.len(), 17);
    assert!(fig4::accuracy_advantage(&data) > 1e3);
    assert!(fig4::render(&data).contains("Figure 4"));
}

#[test]
fn figure5_generates_with_the_crossover() {
    let series = fig5::generate();
    assert_eq!(series.len(), 4);
    for s in &series {
        assert_eq!(s.points.len(), 6);
        assert!(s.points[5].speedup > s.points[0].speedup);
    }
    assert!(fig5::render(&series).contains("Figure 5"));
}

#[test]
fn figure6_generates_with_apim_ahead() {
    let rows = fig6::generate();
    assert_eq!(rows.len(), 8);
    for r in &rows {
        assert!(r.apim_exact_cycles <= r.pc_adder_cycles);
        assert!(r.apim_exact_cycles < r.magic_cycles);
    }
    assert!(fig6::render(&rows).contains("Figure 6"));
}

#[test]
fn table1_generates_six_by_six() {
    let rows = table1::generate();
    assert_eq!(rows.len(), 6);
    for row in &rows {
        assert_eq!(row.cells.len(), 6);
        assert!(row.cells[5].edp_improvement > row.cells[0].edp_improvement);
    }
    assert!(table1::render(&rows).contains("Table 1"));
}

#[test]
fn headline_generates_within_paper_bands() {
    let h = headline::generate();
    assert!(h.exact_energy_improvement > 18.0);
    assert!(h.exact_speedup > 3.5);
    assert!(h.approx_edp_improvement > h.exact_speedup * h.exact_energy_improvement);
    assert_eq!(h.adaptive.len(), 6);
    assert!(headline::render(&h).contains("adaptive"));
}
