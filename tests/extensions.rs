//! Integration tests for the extension features: PGM I/O feeding real
//! kernels, batch multiplication, the in-memory comparator, column-mode
//! MAGIC and the explicit trace schedule.

use apim::prelude::*;
use apim_arch::{Op, Trace};
use apim_crossbar::{BlockedCrossbar, CrossbarConfig, RowAllocator};
use apim_logic::adder_serial::SerialScratch;
use apim_logic::subtractor::greater_equal;
use apim_workloads::image::synthetic_image;
use apim_workloads::pgm::{from_pgm, to_pgm};
use apim_workloads::sobel::sobel;
use apim_workloads::{ExactArith, Image};

#[test]
fn pgm_files_flow_through_the_whole_pipeline() {
    // Scene -> PGM bytes -> parsed image -> Sobel -> PGM bytes again.
    let scene = synthetic_image(32, 24, 77);
    let bytes = to_pgm(&scene);
    let loaded = from_pgm(&bytes).expect("round trip");
    assert_eq!(loaded, scene);
    let edges = sobel(&loaded, &mut ExactArith::new());
    let edge_bytes = to_pgm(&edges);
    let edges_again = from_pgm(&edge_bytes).expect("edge image parses");
    assert_eq!(edges_again.width(), 32);
    assert_eq!(edges_again.height(), 24);
}

#[test]
fn pgm_parser_rejects_garbage_without_panicking() {
    for bad in [
        &b"not a pgm at all"[..],
        &b"P5"[..],
        &b"P5\n-3 4\n255\n"[..],
        &b"P5\n4 4\n999999\nxxxxxxxxxxxxxxxx"[..],
    ] {
        assert!(from_pgm(bad).is_err());
    }
}

#[test]
fn batch_multiply_matches_singles_and_schedules() {
    let apim = Apim::default();
    let pairs: Vec<(u64, u64)> = (1..=40).map(|i| (i * 1_001, i * 2_003)).collect();
    let (reports, cost) = apim.multiply_batch(&pairs, PrecisionMode::LastStage { relax_bits: 8 });
    for (r, &(a, b)) in reports.iter().zip(&pairs) {
        let single = apim.multiply(a, b, PrecisionMode::LastStage { relax_bits: 8 });
        assert_eq!(r.product, single.product);
    }
    // 40 independent multiplies on 2048 units: latency = slowest single.
    let slowest = reports.iter().map(|r| r.cost.cycles).max().unwrap();
    assert_eq!(cost.cycles, slowest);
}

#[test]
fn explicit_schedule_agrees_with_run_trace() {
    let apim = Apim::default();
    let mut trace = Trace::new();
    for ones in [1u32, 4, 9, 16, 32, 2, 7] {
        trace.push(Op::Mul {
            bits: 32,
            multiplier_ones: Some(ones),
            mode: PrecisionMode::Exact,
        });
    }
    trace.push_many(Op::Add { bits: 32 }, 5);
    let cost = apim.executor().run_trace(&trace);
    let schedule = apim.executor().schedule_trace(&trace);
    assert_eq!(cost.cycles, schedule.makespan());
    assert_eq!(schedule.placements().len(), trace.len());
    assert!(schedule.utilization() > 0.0);
}

#[test]
fn gate_level_comparator_drives_a_max_reduction() {
    // A tiny in-memory argmax: compare pairs with the carry-out trick.
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
    let block = xbar.block(1).unwrap();
    let values = [23u64, 200, 57, 199, 3];
    let mut best = values[0];
    for &v in &values[1..] {
        let mut alloc = RowAllocator::new(xbar.rows());
        let rows = alloc.alloc_many(4).unwrap();
        let scratch = SerialScratch::alloc(&mut alloc).unwrap();
        let bits = |x: u64| (0..8).map(|i| (x >> i) & 1 == 1).collect::<Vec<_>>();
        xbar.preload_word(block, rows[0], 0, &bits(v)).unwrap();
        xbar.preload_word(block, rows[1], 0, &bits(best)).unwrap();
        let ge = greater_equal(
            &mut xbar,
            block,
            rows[0],
            rows[1],
            rows[2],
            rows[3],
            0..8,
            &scratch,
        )
        .unwrap();
        if ge {
            best = v;
        }
    }
    assert_eq!(best, 200);
}

#[test]
fn column_mode_magic_computes_a_transposed_not() {
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
    let block = xbar.block(0).unwrap();
    // A word stored vertically: bit i at row i, column 0.
    let word = 0b1011_0010u8;
    for i in 0..8 {
        xbar.preload_bit(block, i, 0, (word >> i) & 1 == 1).unwrap();
    }
    xbar.init_cols(block, &[1], 0..8).unwrap();
    xbar.nor_cols(block, &[0], 1, 0..8).unwrap();
    let got = (0..8).fold(0u8, |acc, i| {
        acc | (u8::from(xbar.peek_bit(block, i, 1).unwrap()) << i)
    });
    assert_eq!(got, !word);
    assert_eq!(xbar.stats().cycles.get(), 1, "column NOR is one cycle");
}

#[test]
fn wear_leveled_multiplier_is_a_drop_in_replacement() {
    use apim_logic::multiplier::CrossbarMultiplier;
    let mut plain = CrossbarMultiplier::new(8, &apim::DeviceParams::default()).unwrap();
    let mut leveled =
        CrossbarMultiplier::new_with_wear_leveling(8, &apim::DeviceParams::default(), 3).unwrap();
    for (a, b) in [(255u64, 255u64), (173, 89), (6, 240), (99, 99)] {
        for mode in [
            PrecisionMode::Exact,
            PrecisionMode::LastStage { relax_bits: 6 },
        ] {
            let x = plain.multiply(a, b, mode).unwrap();
            let y = leveled.multiply(a, b, mode).unwrap();
            assert_eq!(x.product, y.product, "{a}*{b} {mode}");
            assert_eq!(x.stats.cycles, y.stats.cycles, "{a}*{b} {mode}");
        }
    }
}

#[test]
fn image_type_supports_direct_construction() {
    // Q12 samples straight in (the kernel-output path).
    let img = Image::new(2, 2, vec![0, 4096, 8192, 1_044_480]);
    assert_eq!(img.to_u8(), vec![0, 1, 2, 255]);
}
