//! A tour of the gate-level layer: MAGIC NOR on simulated cells, the
//! 12N+1 serial adder, the 13-cycle carry-save stage, a full multiplier
//! run, and a stuck-at fault corrupting a product.
//!
//! ```text
//! cargo run --example gate_level_lab --release
//! ```

use apim::{DeviceParams, PrecisionMode};
use apim_crossbar::{BlockedCrossbar, CrossbarConfig, CrossbarError, Fault, RowRef};
use apim_logic::multiplier::CrossbarMultiplier;

fn main() -> Result<(), CrossbarError> {
    // --- Raw MAGIC on a blocked crossbar -------------------------------
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let data = xbar.block(0)?;
    let proc = xbar.block(1)?;
    xbar.preload_word(
        data,
        0,
        0,
        &[true, false, true, true, false, false, true, false],
    )?;
    // One column-parallel NOT through the interconnect, shifted 3 bitlines:
    xbar.init_rows(proc, &[0], 3..11)?;
    xbar.nor_rows_shifted(&[RowRef::new(data, 0)], RowRef::new(proc, 0), 0..8, 3)?;
    println!("MAGIC NOT of one byte, shifted +3 across the interconnect:");
    println!("  {}", xbar.stats());

    // --- A full multiplication, watched at cycle granularity -----------
    let mut mul = CrossbarMultiplier::new(16, &DeviceParams::default())?;
    let run = mul.multiply(0xBEEF, 0x1234, PrecisionMode::Exact)?;
    println!("\n16x16 exact multiply on the crossbar:");
    println!(
        "  product = {:#x} (native {:#x})",
        run.product,
        0xBEEFu64 * 0x1234
    );
    println!("  {}", run.stats);

    let run = mul.multiply(0xBEEF, 0x1234, PrecisionMode::LastStage { relax_bits: 12 })?;
    println!("\nsame multiply with 12 relaxed product bits:");
    println!("  product = {:#x}", run.product);
    println!("  {}", run.stats);

    // --- Fault injection ------------------------------------------------
    // Stick a cell in the partial-product block at logic 1 and watch the
    // product corrupt (the failure-injection extension of this repo).
    let clean = mul.multiply(200, 170, PrecisionMode::Exact)?.product;
    let pp_block = mul.crossbar().block(2)?;
    mul.crossbar_mut()
        .inject_fault(pp_block, 0, 5, Some(Fault::StuckAtOne))?;
    let faulty = mul.multiply(200, 170, PrecisionMode::Exact)?.product;
    println!("\nstuck-at-1 fault in the partial-product array:");
    println!("  clean product  = {clean}");
    println!(
        "  faulty product = {faulty}  (delta {})",
        faulty.abs_diff(clean)
    );

    println!(
        "\nendurance: hottest cell absorbed {} writes so far",
        mul.crossbar().max_cell_writes()
    );
    Ok(())
}
