//! Exact kernel costing via operation tracing: record every controller
//! operation a kernel actually issues (with its real multiplier density)
//! and cost the trace — no per-byte estimates involved.
//!
//! ```text
//! cargo run --example kernel_tracing --release
//! ```

use apim::prelude::*;
use apim::tracing::TracingArith;
use apim::ApimError;
use apim_workloads::image::synthetic_image;
use apim_workloads::robert::robert;
use apim_workloads::sobel::{sobel, sobel_l2};
use apim_workloads::Arith as _;

fn main() -> Result<(), ApimError> {
    let apim = Apim::new(ApimConfig::default())?;
    let frame = synthetic_image(48, 48, 11);

    println!("trace-exact kernel costs on a 48x48 frame (per-op recording)\n");
    println!(
        "{:>16} {:>10} {:>8} {:>8} {:>12} {:>12} {:>10}",
        "kernel", "mode", "muls", "adds", "energy", "latency", "avg power"
    );

    for m in [0u8, 16, 32] {
        let mode = if m == 0 {
            PrecisionMode::Exact
        } else {
            PrecisionMode::LastStage { relax_bits: m }
        };
        for (name, which) in [("sobel-L1", 0), ("sobel-L2", 1), ("robert", 2)] {
            let mut arith = TracingArith::new(mode);
            match which {
                0 => {
                    sobel(&frame, &mut arith);
                }
                1 => {
                    sobel_l2(&frame, &mut arith);
                }
                _ => {
                    robert(&frame, &mut arith);
                }
            }
            let counts = arith.counts();
            let cost = apim.executor().run_trace(arith.trace());
            println!(
                "{:>16} {:>10} {:>8} {:>8} {:>12} {:>12} {:>8.2} W",
                name,
                format!("m={m}"),
                counts.muls,
                counts.adds,
                cost.energy.to_string(),
                cost.time.to_string(),
                cost.average_power_watts()
            );
        }
    }

    println!(
        "\nThe L2-magnitude Sobel pays ~3x the multiplications of the L1 variant for\n\
         its Newton-Raphson square root (the paper's 'sqrt approximated by add and\n\
         multiply'), and relaxing the final stage cuts every kernel's cost."
    );
    Ok(())
}
