//! Device health tooling: gate-level self-test, read-margin analysis,
//! fault detection and endurance reporting — the operational side of
//! owning a PIM memory module.
//!
//! ```text
//! cargo run --example device_health --release
//! ```

use apim::prelude::*;
use apim::{ApimError, DeviceParams};
use apim_crossbar::Fault;
use apim_device::sense::SenseAnalysis;
use apim_logic::multiplier::CrossbarMultiplier;

fn main() -> Result<(), ApimError> {
    let apim = Apim::new(ApimConfig::default())?;

    // --- Sense-amplifier margins (why the device can be read at all) ---
    let sense = SenseAnalysis::new(&DeviceParams::default());
    let margins = sense.margins();
    println!("read margins of the 10 kOhm / 10 MOhm device:");
    println!("  single-bit margin : {:.2} %", 100.0 * margins.single_bit);
    println!("  MAJ margin        : {:.2} %", 100.0 * margins.majority);
    println!(
        "  BER @5% noise     : single {:.1e}, MAJ {:.1e}",
        sense.single_bit_error_rate(0.05),
        sense.majority_error_rate(0.05)
    );

    // --- Gate-level self-test on a healthy device ---
    let report = apim.self_test(24, 0xC0FFEE)?;
    println!(
        "\nself-test: {}/{} multiplications correct -> {}",
        report.samples - report.mismatches,
        report.samples,
        if report.passed() { "PASS" } else { "FAIL" }
    );

    // --- Fault detection in action ---
    let mut mul = CrossbarMultiplier::new(16, &DeviceParams::default())?;
    let pp_block = mul.crossbar().block(2)?;
    mul.crossbar_mut()
        .inject_fault(pp_block, 0, 7, Some(Fault::StuckAtOne))?;
    let clean = 0xBEEFu128 * 0x1234;
    let faulty = mul.multiply(0xBEEF, 0x1234, PrecisionMode::Exact)?.product;
    println!(
        "\nstuck-at-1 in the partial-product array corrupts silently:\n  {} vs expected {} (delta {})",
        faulty,
        clean,
        faulty.abs_diff(clean)
    );
    let not_row = mul.crossbar().rows() - 1;
    let p0 = mul.crossbar().block(1)?;
    mul.crossbar_mut().inject_fault(pp_block, 0, 7, None)?;
    mul.crossbar_mut()
        .inject_fault(p0, not_row, 0, Some(Fault::StuckAtZero))?;
    let verdict = mul.multiply(0xBEEF, 0x1234, PrecisionMode::Exact);
    println!(
        "stuck-at-0 on a MAGIC output cell is *detected* by the init discipline:\n  {}",
        verdict.err().map(|e| e.to_string()).unwrap_or_default()
    );

    // --- Endurance: fixed vs wear-leveled scratch rows ---
    let mut fixed = CrossbarMultiplier::new(16, &DeviceParams::default())?;
    let mut leveled = CrossbarMultiplier::new_with_wear_leveling(16, &DeviceParams::default(), 4)?;
    for i in 0..32u64 {
        fixed.multiply(40_000 + i, 51_111, PrecisionMode::Exact)?;
        leveled.multiply(40_000 + i, 51_111, PrecisionMode::Exact)?;
    }
    println!("\nendurance after 32 multiplications (hottest cell writes):");
    println!(
        "  fixed layout     : {}",
        fixed.crossbar().max_cell_writes()
    );
    println!(
        "  4-slot leveling  : {}",
        leveled.crossbar().max_cell_writes()
    );
    println!(
        "\nwear report (leveled device):\n{}",
        leveled.crossbar().wear_report()
    );
    Ok(())
}
