//! The full in-memory ALU on simulated cells: add, subtract, compare,
//! multiply, divide and vector operations — with the cycle bill for each,
//! so the cost hierarchy the paper designs around is visible at a glance.
//!
//! ```text
//! cargo run --example alu_playground --release
//! ```

use apim::{DeviceParams, PrecisionMode};
use apim_crossbar::{BlockedCrossbar, CrossbarConfig, CrossbarError, RowAllocator};
use apim_logic::adder_serial::SerialScratch;
use apim_logic::divider::divide;
use apim_logic::mac::CrossbarMac;
use apim_logic::multiplier::CrossbarMultiplier;
use apim_logic::subtractor::{greater_equal, subtract};
use apim_logic::vector::VectorUnit;

fn main() -> Result<(), CrossbarError> {
    let params = DeviceParams::default();
    println!("the APIM ALU, gate level (8/16-bit operands)\n");
    println!("{:<34} {:>14} {:>10}", "operation", "result", "cycles");

    // Addition rides inside subtract/multiply; show subtraction first.
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let blk = xbar.block(1)?;
    let before = xbar.stats().cycles;
    let diff = subtract(&mut xbar, blk, 200, 58, 8)?;
    println!(
        "{:<34} {:>14} {:>10}",
        "subtract  200 - 58 (8b)",
        diff,
        (xbar.stats().cycles - before).get()
    );

    let mut alloc = RowAllocator::new(xbar.rows());
    let rows = alloc.alloc_many(4)?;
    let scratch = SerialScratch::alloc(&mut alloc)?;
    let bits = |v: u64| (0..8).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
    xbar.preload_word(blk, rows[0], 0, &bits(123))?;
    xbar.preload_word(blk, rows[1], 0, &bits(45))?;
    let before = xbar.stats().cycles;
    let ge = greater_equal(
        &mut xbar,
        blk,
        rows[0],
        rows[1],
        rows[2],
        rows[3],
        0..8,
        &scratch,
    )?;
    println!(
        "{:<34} {:>14} {:>10}",
        "compare   123 >= 45",
        ge,
        (xbar.stats().cycles - before).get()
    );

    let mut mul = CrossbarMultiplier::new(16, &params)?;
    let run = mul.multiply(0xBEEF, 0x1234, PrecisionMode::Exact)?;
    println!(
        "{:<34} {:>14} {:>10}",
        "multiply  0xBEEF * 0x1234 (16b)",
        run.product,
        run.stats.cycles.get()
    );
    let run = mul.multiply(0xBEEF, 0x1234, PrecisionMode::LastStage { relax_bits: 16 })?;
    println!(
        "{:<34} {:>14} {:>10}",
        "multiply  (16 relax bits)",
        run.product,
        run.stats.cycles.get()
    );

    let mut mac = CrossbarMac::new(8, 4, &params)?;
    let run = mac.mac(
        &[(12, 34), (56, 78), (90, 12), (34, 56)],
        PrecisionMode::Exact,
    )?;
    println!(
        "{:<34} {:>14} {:>10}",
        "fused MAC (4 terms, mod 256)",
        run.value,
        run.stats.cycles.get()
    );

    let mut vu = VectorUnit::new(8, 8, &params)?;
    let run = vu.add(&[
        (1, 2),
        (3, 4),
        (5, 6),
        (7, 8),
        (9, 10),
        (11, 12),
        (13, 14),
        (15, 16),
    ])?;
    println!(
        "{:<34} {:>14?} {:>10}",
        "vector add (8 lanes)",
        run.values.iter().sum::<u64>(),
        run.stats.cycles.get()
    );

    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let blk = xbar.block(1)?;
    let run = divide(&mut xbar, blk, 200, 7, 8)?;
    println!(
        "{:<34} {:>14} {:>10}",
        "divide    200 / 7 (8b)",
        format!("{} r{}", run.quotient, run.remainder),
        run.cycles.get()
    );

    println!(
        "\nThe hierarchy the paper designs around: compares and subtracts cost one\n\
         ripple; multiplies cost a tree plus one ripple (and relax bits cut that);\n\
         fused MACs amortize the ripple across terms; vector ops amortize it across\n\
         lanes; division pays a ripple *per quotient bit* — which is why the\n\
         evaluation kernels avoid it."
    );
    Ok(())
}
