//! Quickstart: multiply numbers inside memory, exactly and approximately,
//! then run a whole application against the GPU baseline.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use apim::prelude::*;
use apim::ApimError;

fn main() -> Result<(), ApimError> {
    // An APIM device in the paper's default configuration (32-bit in-memory
    // arithmetic, 2048 concurrently active processing-block pairs).
    let apim = Apim::new(ApimConfig::default())?;

    // --- One multiplication, three precision levels -------------------
    let (a, b) = (1_000_003u64, 2_000_029u64);
    println!("in-memory multiplication of {a} x {b}:");
    for mode in [
        PrecisionMode::Exact,
        PrecisionMode::LastStage { relax_bits: 16 },
        PrecisionMode::LastStage { relax_bits: 32 },
    ] {
        let report = apim.multiply(a, b, mode);
        let exact = a as u128 * b as u128;
        let rel_err = report.product.abs_diff(exact) as f64 / exact as f64;
        println!(
            "  {:<28} product {:>20}  ({:>9} cycles, {}, rel err {:.2e})",
            mode.to_string(),
            report.product,
            report.cost.cycles.get(),
            report.cost.energy,
            rel_err
        );
    }

    // --- A whole application over a resident 512 MB dataset -----------
    let run = apim.run_with_mode(
        App::Sobel,
        512 << 20,
        PrecisionMode::LastStage { relax_bits: 8 },
    )?;
    println!("\nSobel over 512 MB (8 relax bits):");
    println!("  APIM: {}", run.apim);
    println!("  GPU : {} | {}", run.gpu.time, run.gpu.energy);
    println!("  {}", run.comparison);
    println!(
        "  quality: PSNR {:.1} dB, QoL {:.2}% -> {}",
        run.quality.psnr_db.unwrap_or(f64::INFINITY),
        run.quality.qol_percent,
        if run.quality.acceptable {
            "acceptable"
        } else {
            "rejected"
        }
    );
    Ok(())
}
