//! An IoT edge-vision pipeline: the motivating scenario of the paper's
//! introduction. A camera node runs Sobel edge detection in its own
//! memory, trading precision for battery life under a PSNR budget.
//!
//! ```text
//! cargo run --example edge_pipeline --release
//! ```

use apim::prelude::*;
use apim::ApimError;
use apim_workloads::image::synthetic_image;
use apim_workloads::quality::image_quality;
use apim_workloads::sobel::sobel;
use apim_workloads::{ApimArith, Arith, ExactArith};

fn main() -> Result<(), ApimError> {
    let apim = Apim::new(ApimConfig::default())?;

    // The "camera frame" — a synthetic scene standing in for Caltech-101.
    let frame = synthetic_image(96, 96, 42);
    let golden = sobel(&frame, &mut ExactArith::new());

    println!("edge node: Sobel on a 96x96 frame at decreasing precision\n");
    println!(
        "{:>10} {:>10} {:>9} {:>14} {:>12} {:>10}",
        "relax bits", "PSNR (dB)", "QoL (%)", "energy/frame", "frame time", "verdict"
    );

    for m in [0u8, 8, 16, 24, 32] {
        let mode = PrecisionMode::LastStage { relax_bits: m };
        // Bit-exact approximate execution of the same kernel...
        let mut arith = ApimArith::new(mode);
        let output = sobel(&frame, &mut arith);
        let quality = image_quality(&golden.to_u8(), &output.to_u8());
        // ...and the modeled cost of running it in the node's memory.
        let counts = arith.counts();
        let dataset = (frame.width() * frame.height() * 4) as u64;
        let mut profile = AppProfile::sobel();
        profile.ops_per_byte = counts.total() as f64 / dataset as f64;
        profile.mul_fraction = counts.mul_fraction();
        let cost = apim
            .executor()
            .run_profile_with_mode(&profile, dataset, mode)?;
        println!(
            "{:>10} {:>10.1} {:>9.2} {:>14} {:>12} {:>10}",
            m,
            quality.psnr_db.unwrap_or(f64::INFINITY).min(99.9),
            quality.qol_percent,
            cost.energy.to_string(),
            cost.time.to_string(),
            if quality.acceptable {
                "ship it"
            } else {
                "too lossy"
            }
        );
    }

    println!(
        "\nThe node keeps relaxing precision until the 30 dB PSNR budget would break —\n\
         exactly the runtime tuning knob the paper's abstract promises."
    );
    Ok(())
}
