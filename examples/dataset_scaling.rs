//! The data-movement argument of §4.2: sweep dataset sizes and watch the
//! GPU lose to in-memory computation once the working set outgrows its
//! caches.
//!
//! ```text
//! cargo run --example dataset_scaling --release
//! ```

use apim::prelude::*;
use apim::ApimError;

fn main() -> Result<(), ApimError> {
    let apim = Apim::new(ApimConfig::default())?;

    println!("FFT, exact mode: APIM vs GPU across dataset sizes\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "size", "APIM time", "GPU time", "APIM energy", "GPU energy", "speedup", "energy x"
    );
    for mb in [1u64, 8, 32, 64, 128, 192, 256, 384, 512, 768, 1024] {
        let run = apim.run_with_mode(App::Fft, mb << 20, PrecisionMode::Exact)?;
        println!(
            "{:>7}M {:>12} {:>12} {:>12} {:>12} {:>8.2}x {:>8.1}x",
            mb,
            run.apim.time.to_string(),
            run.gpu.time.to_string(),
            run.apim.energy.to_string(),
            run.gpu.energy.to_string(),
            run.comparison.speedup,
            run.comparison.energy_improvement
        );
    }

    println!(
        "\nBelow the GPU's effective reuse capacity the workload is compute-bound and\n\
         the GPU wins; past it, every byte pays the DRAM round-trip and APIM's\n\
         in-place execution takes over — the crossover sits near 200 MB, as in §4.2."
    );
    Ok(())
}
