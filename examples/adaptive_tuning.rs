//! The §4.1 adaptive QoS loop, end to end: start every application at the
//! maximum approximation (32 relax bits) and step accuracy up 4 bits at a
//! time until its quality criterion holds.
//!
//! ```text
//! cargo run --example adaptive_tuning --release
//! ```

use apim::prelude::*;
use apim::ApimError;
use apim_workloads::{run_app, RunConfig};

fn main() -> Result<(), ApimError> {
    let apim = Apim::new(ApimConfig::default())?;

    println!("adaptive precision tuning (QoS: 30 dB PSNR / <10% relative error)\n");
    for app in App::all() {
        // Show the trajectory the controller walks.
        print!("{:<10} trajectory:", app.name());
        let outcome = AdaptiveController::paper().tune(|mode| {
            let quality = run_app(
                app,
                &RunConfig {
                    mode,
                    ..RunConfig::default()
                },
            )
            .quality;
            print!(
                " {}b({})",
                mode.relaxed_product_bits(),
                if quality.acceptable { "ok" } else { "x" }
            );
            quality.acceptable
        });
        let run = apim.run_with_mode(app, 1 << 30, outcome.mode)?;
        println!(
            "\n{:<10} settled on {:<26} -> {} at 1 GB\n",
            "",
            outcome.mode.to_string(),
            run.comparison
        );
    }
    Ok(())
}
